"""The sweep service's job-state machine and its restart-safe store.

A *job* is one accepted submission: a validated spec payload plus the
content digests of every cell it expands to.  Its lifecycle is a small
explicit state machine::

    queued ──► leased ──► published ──► done
      │          │  ▲          │
      │          │  └──────────┼─── (lease expired: back to the queue
      │          ▼             ▼     via leased → queued)
      └───────► failed ◄───────┘

Every transition is table-driven (:data:`TRANSITIONS`); anything off
the table raises :class:`IllegalTransition`, so a bug in the server
loop surfaces as an exception instead of a silently corrupted queue.
The property tests in ``tests/service/test_jobs.py`` drive random
interleavings against exactly this table.

Job identifiers are **content-addressed**: the SHA-256 of the job's
cell-digest vector (:func:`job_id_for`).  Two clients submitting the
same sweep — or one client retrying a timed-out POST — therefore land
on the *same* job, which is what makes submission idempotent and
duplicate compute structurally impossible at the job level.

Records persist as one JSON file per job under the cache root
(``<cache>/service/jobs/``), written with the same
write-temp-then-``os.replace`` discipline as cache payloads, so a
server restarted against the same cache directory recovers every job
it had accepted (see :meth:`repro.service.server.SweepService.recover`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..exec.cache import canonical_json

#: The five job states, in lifecycle order.
JobState = str

QUEUED: JobState = "queued"
LEASED: JobState = "leased"
PUBLISHED: JobState = "published"
DONE: JobState = "done"
FAILED: JobState = "failed"

JOB_STATES: Tuple[JobState, ...] = (QUEUED, LEASED, PUBLISHED, DONE, FAILED)

#: The complete legal transition table.  ``LEASED -> QUEUED`` is the
#: lease-expiry path: a worker died mid-job and another one (or the
#: server's recovery scan) put the job back in the queue.
TRANSITIONS: Dict[JobState, Tuple[JobState, ...]] = {
    QUEUED: (LEASED, FAILED),
    LEASED: (PUBLISHED, QUEUED, FAILED),
    PUBLISHED: (DONE, FAILED),
    DONE: (),
    FAILED: (),
}

#: States a job never leaves.
TERMINAL_STATES: Tuple[JobState, ...] = (DONE, FAILED)


class IllegalTransition(RuntimeError):
    """A job was asked to move along an edge not in :data:`TRANSITIONS`."""

    def __init__(self, job_id: str, current: JobState, target: JobState):
        self.job_id = job_id
        self.current = current
        self.target = target
        super().__init__(
            f"job {job_id}: illegal transition {current!r} -> {target!r}; "
            f"legal from {current!r}: {list(TRANSITIONS[current])}"
        )


def job_id_for(digests: Sequence[str]) -> str:
    """The content-addressed job identifier of a cell-digest vector.

    Cell order is part of the identity (results are returned in cell
    order), and the digests already encode package + schema versions,
    so equal job ids imply byte-identical result payloads.
    """
    payload = canonical_json({"job": list(digests)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class JobRecord:
    """One job's full, serialisable state.

    ``history`` records every transition as ``[state, timestamp]``
    pairs — the audit trail the ops endpoints and the restart-recovery
    scan read.
    """

    job_id: str
    client: str
    payload: Dict[str, object]
    spec_name: str
    digests: Tuple[str, ...]
    state: JobState = QUEUED
    submitted_at: float = 0.0
    updated_at: float = 0.0
    worker: Optional[str] = None
    error: Optional[str] = None
    history: List[Tuple[JobState, float]] = field(default_factory=list)

    def transition(
        self,
        target: JobState,
        now: float,
        worker: Optional[str] = None,
        error: Optional[str] = None,
    ) -> "JobRecord":
        """Move to ``target`` (mutating), enforcing the transition table."""
        if target not in TRANSITIONS:
            raise IllegalTransition(self.job_id, self.state, target)
        if target not in TRANSITIONS[self.state]:
            raise IllegalTransition(self.job_id, self.state, target)
        self.state = target
        self.updated_at = now
        self.history.append((target, now))
        if worker is not None:
            self.worker = worker
        if target == QUEUED:  # requeued after lease expiry: unowned again
            self.worker = None
        if error is not None:
            self.error = error
        return self

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe; the wire and on-disk format)."""
        return {
            "job_id": self.job_id,
            "client": self.client,
            "payload": self.payload,
            "spec_name": self.spec_name,
            "digests": list(self.digests),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "worker": self.worker,
            "error": self.error,
            "history": [[state, at] for state, at in self.history],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        state = data["state"]
        if state not in TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}")
        return cls(
            job_id=data["job_id"],
            client=data["client"],
            payload=data["payload"],
            spec_name=data["spec_name"],
            digests=tuple(data["digests"]),
            state=state,
            submitted_at=data["submitted_at"],
            updated_at=data["updated_at"],
            worker=data.get("worker"),
            error=data.get("error"),
            history=[(entry[0], entry[1]) for entry in data.get("history", [])],
        )


def _wall_clock() -> float:
    """Job timestamps are wall-clock: they survive restarts and appear
    in client-facing listings, so a monotonic (boot-relative) clock
    would be meaningless."""
    return time.time()  # replint: disable=R001 (job audit timestamps are wall-clock by design; simulation RNG is untouched)


class JobStore:
    """The in-memory job table with write-through on-disk persistence.

    One server process owns the store; every mutation happens under one
    lock and is persisted before the lock is released, so the on-disk
    view under ``<root>/jobs/`` is never ahead of nor more than one
    crash behind the in-memory one.  Reloading the directory rebuilds
    the table exactly (:meth:`load_existing`).
    """

    def __init__(
        self,
        root: Union[str, Path],
        clock: Callable[[], float] = _wall_clock,
    ):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.clock = clock
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def path_for(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _persist(self, record: JobRecord) -> None:
        path = self.path_for(record.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{record.job_id[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(canonical_json(record.to_dict()))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load_existing(self) -> List[JobRecord]:
        """Load every readable record from disk into the table.

        Corrupt or truncated files (a crash mid-write leaves none,
        thanks to the temp-then-replace discipline, but a torn disk
        might) are skipped: the job id is content-addressed, so a
        client resubmitting simply recreates the job.
        """
        loaded: List[JobRecord] = []
        with self._lock:
            for path in sorted(self.jobs_dir.glob("*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    record = JobRecord.from_dict(data)
                except (OSError, TypeError, KeyError, ValueError):
                    continue
                self._records[record.job_id] = record
                loaded.append(record)
        return loaded

    # ------------------------------------------------------------------
    # Table operations
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def create(
        self,
        client: str,
        payload: Dict[str, object],
        spec_name: str,
        digests: Sequence[str],
    ) -> Tuple[JobRecord, bool]:
        """Create (or re-find) the job for a digest vector.

        Returns ``(record, created)``.  An existing non-failed job is
        returned as-is — submission is idempotent.  A FAILED job is
        replaced with a fresh QUEUED record: resubmitting is the
        client-visible retry path.
        """
        job_id = job_id_for(digests)
        with self._lock:
            existing = self._records.get(job_id)
            if existing is not None and existing.state != FAILED:
                return existing, False
            now = self.clock()
            record = JobRecord(
                job_id=job_id,
                client=client,
                payload=payload,
                spec_name=spec_name,
                digests=tuple(digests),
                submitted_at=now,
                updated_at=now,
                history=[(QUEUED, now)],
            )
            self._records[job_id] = record
            self._persist(record)
            return record, True

    def transition(
        self,
        job_id: str,
        target: JobState,
        worker: Optional[str] = None,
        error: Optional[str] = None,
    ) -> JobRecord:
        """Validated state change, persisted before returning."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise KeyError(f"unknown job {job_id!r}")
            record.transition(target, self.clock(), worker=worker, error=error)
            self._persist(record)
            return record

    def records(self) -> List[JobRecord]:
        """Snapshot of every record, submission order (FIFO queue view)."""
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda record: (record.submitted_at, record.job_id),
            )

    def counts(self) -> Dict[JobState, int]:
        """Jobs per state (every state present, zero included)."""
        totals = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                totals[record.state] += 1
        return totals
