"""The sweep service: HTTP front end, worker fleet, ops surface.

``repro-experiments serve`` runs one :class:`SweepService` behind a
:class:`http.server.ThreadingHTTPServer` — standard library only.  The
service is deliberately layered so the tests can grip each seam:

* :class:`SweepService` is HTTP-agnostic: submissions, the job table,
  the standing worker fleet and the metrics all live here and are
  driven directly by the unit tests.
* :func:`make_server` wraps a service in the HTTP layer (ephemeral
  ports via ``port=0``); :func:`serve` is the CLI entry point.

Execution reuses the distributed substrate wholesale: each worker
thread drains a job's cells through a ``SweepExecutor`` on the
``distributed`` backend, so cell-level leasing, crash recovery and
publish-before-release semantics are exactly those of
:mod:`repro.exec.distributed` — the service adds only a *job*-level
lease (same :class:`~repro.exec.distributed.LeaseDirectory` mechanism,
separate directory) so one worker owns a job's progress reporting
while any number of workers may legally help with its cells.

Observability is structured JSON events: every state change emits one
JSON line on the event stream, and ``/metrics`` + ``/queue`` serve the
same shapes over HTTP (schema asserted by
``scripts/check_service_metrics.py`` in the ``service-smoke`` CI lane).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Deque, Dict, IO, List, Optional, Tuple

from ..exec.cache import ResultCache, canonical_json, config_digest
from ..exec.distributed import (
    DEFAULT_LEASE_TTL,
    DEFAULT_POLL_INTERVAL,
    LeaseDirectory,
    default_worker_id,
)
from ..exec.executor import SweepExecutor
from ..scenarios.wire import SpecValidationError, spec_from_payload
from . import jobs as J
from .jobs import JobRecord, JobStore
from .quotas import ClientQuotas

#: Default per-client quota: burst capacity and steady-state refill.
DEFAULT_QUOTA_CAPACITY = 16.0
DEFAULT_QUOTA_REFILL = 4.0

#: Sliding window for the sustained requests/s figure, seconds.
REQUEST_WINDOW_SECONDS = 60.0


def _now() -> float:
    """Service wall clock, in one place.

    Lease ages, job timestamps and event stamps are operator-facing and
    must survive restarts, so they are wall-clock by design; simulation
    randomness never touches this function.
    """
    return time.time()  # replint: disable=R001 (ops timestamps are wall-clock by design; simulation RNG derives only from config.seed)


class ServiceEvents:
    """Structured JSON-event emitter: one JSON object per line.

    The stream is injectable (tests capture an ``io.StringIO``; the CLI
    uses stderr so result payloads on stdout stay clean).  Every event
    carries ``event`` (its type) and ``ts`` (wall-clock seconds).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream
        self._lock = threading.Lock()

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        payload: Dict[str, object] = {"event": event, "ts": _now()}
        payload.update(fields)
        if self.stream is not None:
            line = canonical_json(payload)
            with self._lock:
                self.stream.write(line + "\n")
                self.stream.flush()
        return payload


@dataclass
class ServiceMetrics:
    """Thread-safe counters behind ``/metrics``."""

    requests_total: int = 0
    requests_throttled: int = 0
    jobs_submitted: int = 0
    jobs_duplicate: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_stolen: int = 0
    cells_simulated: int = 0
    cells_from_cache: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _request_times: Deque[float] = field(default_factory=deque)

    def record_request(self) -> None:
        now = time.monotonic()
        with self._lock:
            self.requests_total += 1
            self._request_times.append(now)
            horizon = now - REQUEST_WINDOW_SECONDS
            while self._request_times and self._request_times[0] < horizon:
                self._request_times.popleft()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def requests_per_second(self) -> float:
        """Sustained request rate over the sliding window."""
        now = time.monotonic()
        with self._lock:
            horizon = now - REQUEST_WINDOW_SECONDS
            while self._request_times and self._request_times[0] < horizon:
                self._request_times.popleft()
            if not self._request_times:
                return 0.0
            span = max(now - self._request_times[0], 1e-6)
            return len(self._request_times) / span

    def cache_hit_ratio(self) -> float:
        with self._lock:
            cells = self.cells_simulated + self.cells_from_cache
            if cells == 0:
                return 0.0
            return self.cells_from_cache / cells


class SweepService:
    """Submissions, the job table, the worker fleet and the ops surface.

    Parameters
    ----------
    cache:
        The shared result cache.  Job records live under its
        :attr:`~repro.exec.cache.ResultCache.service_root`; cell leases
        under its ``lease_root`` exactly as in batch mode, so batch
        workers (``repro-experiments worker``) can help drain a
        service's cells and vice versa.
    workers:
        Standing worker threads draining jobs.
    lease_ttl:
        Seconds without a heartbeat before a job (or cell) lease is
        stealable.
    quota_capacity / quota_refill:
        Per-client token bucket: burst size and tokens/second.
    events:
        Optional text stream receiving one JSON event per line.
    """

    def __init__(
        self,
        cache: ResultCache,
        workers: int = 1,
        lease_ttl: Optional[float] = None,
        poll_interval: Optional[float] = None,
        quota_capacity: float = DEFAULT_QUOTA_CAPACITY,
        quota_refill: float = DEFAULT_QUOTA_REFILL,
        events: Optional[IO[str]] = None,
        worker_id: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache = cache
        self.worker_count = workers
        self.lease_ttl = DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl
        self.poll_interval = (
            DEFAULT_POLL_INTERVAL if poll_interval is None else poll_interval
        )
        self.worker_id = worker_id or default_worker_id()
        self.store = JobStore(cache.service_root)
        self.job_lease_root = cache.service_root / "job-leases"
        self.quotas = ClientQuotas(quota_capacity, quota_refill)
        self.events = ServiceEvents(events)
        self.metrics = ServiceMetrics()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._work_ready = threading.Condition()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild the job table from disk after a restart.

        * ``leased`` jobs whose job lease is gone or expired lost their
          worker: they go back to the queue (the legal
          ``leased -> queued`` edge).  A *healthy* lease means another
          server process over the same cache still owns the job — leave
          it alone; the steal path takes over if its heartbeat stops.
        * ``published`` jobs finished compute but missed the final
          bookkeeping tick: finish it — unless the cache lost their
          results, in which case the honest answer is ``failed`` (the
          content-addressed job id makes resubmission recreate them).
        * ``queued`` / ``done`` / ``failed`` need nothing.
        """
        recovered = 0
        job_leases = LeaseDirectory(
            self.job_lease_root, worker_id=self.worker_id, ttl=self.lease_ttl
        )
        for record in self.store.load_existing():
            if record.state == J.LEASED:
                info = job_leases.read(record.job_id)
                if info is not None and not info.expired():
                    continue  # live owner elsewhere; not ours to requeue
                self.store.transition(record.job_id, J.QUEUED)
                self.events.emit(
                    "job_recovered", job_id=record.job_id, requeued=True
                )
                recovered += 1
            elif record.state == J.PUBLISHED:
                if self._all_cached(record):
                    self.store.transition(record.job_id, J.DONE)
                    self.events.emit(
                        "job_recovered", job_id=record.job_id, finished=True
                    )
                else:
                    self.store.transition(
                        record.job_id,
                        J.FAILED,
                        error="results missing from cache after restart; "
                        "resubmit the job",
                    )
                recovered += 1
        return recovered

    def start(self) -> None:
        """Recover persisted jobs and start the standing worker fleet."""
        self.recover()
        for index in range(self.worker_count):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"{self.worker_id}-w{index}",),
                name=f"sweep-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self.events.emit(
            "service_started",
            workers=self.worker_count,
            cache=str(self.cache.root),
        )

    def stop(self) -> None:
        self._stop.set()
        with self._work_ready:
            self._work_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(self, client: str, payload: Dict[str, object]) -> Tuple[JobRecord, bool]:
        """Validate a payload and create (or re-find) its job.

        Raises :class:`~repro.scenarios.wire.SpecValidationError` on a
        malformed payload.  Returns ``(record, created)``; an identical
        in-flight or finished submission is returned rather than
        duplicated (content-addressed job ids).
        """
        spec = spec_from_payload(payload)
        digests = [config_digest(cell.config) for cell in spec.cells()]
        record, created = self.store.create(
            client=client, payload=payload, spec_name=spec.name, digests=digests
        )
        if not created:
            self.metrics.bump("jobs_duplicate")
            self.events.emit(
                "job_duplicate",
                job_id=record.job_id,
                client=client,
                state=record.state,
            )
            return record, created
        self.metrics.bump("jobs_submitted")
        self.events.emit(
            "job_submitted",
            job_id=record.job_id,
            client=client,
            spec=spec.name,
            cells=len(digests),
        )
        if self._all_cached(record):
            # Hot-cache fast path: every cell already has a published
            # result, so the job walks its whole lifecycle inline and
            # the client's next poll (or this response) sees ``done``.
            try:
                self.store.transition(record.job_id, J.LEASED, worker="cache")
                self.store.transition(record.job_id, J.PUBLISHED)
                record = self.store.transition(record.job_id, J.DONE)
            except J.IllegalTransition:
                # A standing worker grabbed the job between creation and
                # this fast path; let it finish — same result bytes.
                return self.store.get(record.job_id) or record, created
            self.metrics.bump("cells_from_cache", len(record.digests))
            self.metrics.bump("jobs_completed")
            self.events.emit(
                "job_completed",
                job_id=record.job_id,
                cache_hit=True,
                cells=len(record.digests),
            )
        else:
            with self._work_ready:
                self._work_ready.notify_all()
        return record, created

    def _all_cached(self, record: JobRecord) -> bool:
        return all(self.cache.contains_digest(d) for d in record.digests)

    # ------------------------------------------------------------------
    # Worker fleet
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: str) -> None:
        leases = LeaseDirectory(
            self.job_lease_root, worker_id=worker_id, ttl=self.lease_ttl
        )
        while not self._stop.is_set():
            claimed = self._claim_next(leases)
            if claimed is None:
                with self._work_ready:
                    self._work_ready.wait(timeout=self.poll_interval)
                continue
            record, stolen = claimed
            try:
                self._run_job(record, worker_id, leases, stolen)
            finally:
                leases.release(record.job_id)

    def _claim_next(
        self, leases: LeaseDirectory
    ) -> Optional[Tuple[JobRecord, bool]]:
        """Claim the oldest runnable job, if any.

        Jobs are scanned in submission order.  A ``queued`` job is
        claimed directly; a ``leased`` job whose job lease is stealable
        (expired heartbeat — its worker died) is stolen via the same
        ``try_acquire`` path and requeued through the legal
        ``leased -> queued -> leased`` edges.
        """
        for record in self.store.records():
            if record.state not in (J.QUEUED, J.LEASED):
                continue
            if record.state == J.LEASED:
                info = leases.read(record.job_id)
                if info is not None and not info.expired():
                    continue  # healthy owner elsewhere
            if not leases.try_acquire(record.job_id):
                continue  # lost the race (or owner is healthy)
            try:
                stolen = False
                current = self.store.get(record.job_id)
                if current is None or current.terminal:
                    leases.release(record.job_id)
                    continue
                if current.state == J.LEASED:
                    # The owner died mid-job: take it over.
                    self.store.transition(record.job_id, J.QUEUED)
                    stolen = True
                self.store.transition(
                    record.job_id, J.LEASED, worker=leases.worker_id
                )
                return self.store.get(record.job_id), stolen
            except J.IllegalTransition:
                # Benign race: another thread moved the job first.
                leases.release(record.job_id)
                continue
        return None

    def _run_job(
        self,
        record: JobRecord,
        worker_id: str,
        leases: LeaseDirectory,
        stolen: bool,
    ) -> None:
        if stolen:
            self.metrics.bump("jobs_stolen")
            self.events.emit(
                "job_stolen", job_id=record.job_id, worker=worker_id
            )
        self.events.emit(
            "job_leased",
            job_id=record.job_id,
            worker=worker_id,
            cells=len(record.digests),
        )
        try:
            with leases.heartbeating(
                record.job_id, interval=self.lease_ttl / 4
            ):
                spec = spec_from_payload(record.payload)
                executor = SweepExecutor(
                    cache=self.cache,
                    backend="distributed",
                    worker_id=worker_id,
                    lease_ttl=self.lease_ttl,
                    poll_interval=self.poll_interval,
                )
                sweep = executor.run(spec)
        except Exception as error:  # noqa: BLE001 — jobs fail, servers don't
            self.metrics.bump("jobs_failed")
            try:
                self.store.transition(
                    record.job_id, J.FAILED, error=f"{type(error).__name__}: {error}"
                )
            except J.IllegalTransition:
                pass  # already moved (e.g. recovery marked it)
            self.events.emit(
                "job_failed", job_id=record.job_id, error=str(error)
            )
            return
        self.metrics.bump("cells_simulated", sweep.stats.simulated)
        self.metrics.bump("cells_from_cache", sweep.stats.cache_hits)
        try:
            self.store.transition(record.job_id, J.PUBLISHED)
            self.store.transition(record.job_id, J.DONE)
        except J.IllegalTransition:
            # A concurrent steal finished the job first; its results are
            # identical (content-addressed), so there is nothing to undo.
            return
        self.metrics.bump("jobs_completed")
        self.events.emit(
            "job_completed",
            job_id=record.job_id,
            worker=worker_id,
            cache_hit=sweep.stats.simulated == 0,
            simulated=sweep.stats.simulated,
            cells=len(record.digests),
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def job_payload(self, record: JobRecord) -> Dict[str, object]:
        """The wire form of one job's status."""
        return {
            "event": "job_status",
            "ts": _now(),
            "job": record.to_dict(),
        }

    def result_bytes(self, record: JobRecord) -> bytes:
        """The finished job's results: canonical JSON, cell order.

        This is byte-for-byte ``canonical_json([result.to_dict() ...])``
        of a serial ``SweepExecutor`` run of the same spec — the cache
        stores exactly those dicts, and cell order is the digest order.
        """
        payloads = [self.cache.load(digest) for digest in record.digests]
        if any(payload is None for payload in payloads):
            raise LookupError(
                f"job {record.job_id}: results missing from cache"
            )
        return canonical_json(payloads).encode("utf-8")

    def metrics_payload(self) -> Dict[str, object]:
        """The ``/metrics`` document (one structured JSON event)."""
        counts = self.store.counts()
        now = _now()
        job_leases = LeaseDirectory(
            self.job_lease_root, worker_id=self.worker_id, ttl=self.lease_ttl
        ).scan()
        cell_leases = LeaseDirectory(
            self.cache.lease_root, worker_id=self.worker_id, ttl=self.lease_ttl
        ).scan()
        metrics = self.metrics
        return {
            "event": "service_metrics",
            "ts": now,
            "queue": counts,
            "queue_depth": counts[J.QUEUED] + counts[J.LEASED],
            "jobs": {
                "submitted": metrics.jobs_submitted,
                "duplicate": metrics.jobs_duplicate,
                "completed": metrics.jobs_completed,
                "failed": metrics.jobs_failed,
                "stolen": metrics.jobs_stolen,
            },
            "requests": {
                "total": metrics.requests_total,
                "throttled": metrics.requests_throttled,
                "per_second": round(metrics.requests_per_second(), 3),
                "window_seconds": REQUEST_WINDOW_SECONDS,
            },
            "cells": {
                "simulated": metrics.cells_simulated,
                "from_cache": metrics.cells_from_cache,
                "cache_hit_ratio": round(metrics.cache_hit_ratio(), 4),
            },
            "cache": {
                "entries": self.cache.entry_count(),
                "size_bytes": self.cache.size_bytes(),
            },
            "leases": {
                "jobs": self._lease_listing(job_leases, now),
                "cells": self._lease_listing(cell_leases, now),
            },
            "quotas": self.quotas.snapshot(),
        }

    @staticmethod
    def _lease_listing(leases, now: float) -> List[Dict[str, object]]:
        return [
            {
                "digest": digest,
                "worker": info.worker_id,
                "age_seconds": round(max(0.0, now - info.acquired_at), 3),
                "heartbeat_age_seconds": round(
                    max(0.0, now - info.heartbeat_at), 3
                ),
                "ttl": info.ttl,
                "expired": info.expired(now),
            }
            for digest, info in sorted(leases.items())
        ]

    def queue_payload(self) -> Dict[str, object]:
        """The ``/queue`` document: every job, submission order."""
        now = _now()
        listing = [
            {
                "job_id": record.job_id,
                "state": record.state,
                "client": record.client,
                "spec": record.spec_name,
                "cells": len(record.digests),
                "worker": record.worker,
                "age_seconds": round(max(0.0, now - record.submitted_at), 3),
                "error": record.error,
            }
            for record in self.store.records()
        ]
        counts = self.store.counts()
        return {
            "event": "service_queue",
            "ts": now,
            "depth": counts[J.QUEUED] + counts[J.LEASED],
            "jobs": listing,
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    service: SweepService


class _Handler(BaseHTTPRequestHandler):
    """Routes: POST /jobs, GET /jobs/<id>[/result], /metrics, /queue."""

    protocol_version = "HTTP/1.1"
    server: _ServiceHTTPServer

    # The default handler logs every request to stderr in Apache format;
    # the service speaks structured JSON events instead.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> SweepService:
        return self.server.service

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = canonical_json(payload).encode("utf-8")
        self._send_body(status, body, extra_headers)

    def _send_body(
        self,
        status: int,
        body: bytes,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self.service.metrics.record_request()
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        client = self._client_id()
        allowed, retry_after = self.service.quotas.try_take(client)
        if not allowed:
            self.service.metrics.bump("requests_throttled")
            self.service.events.emit(
                "request_throttled", client=client, retry_after=retry_after
            )
            self._send_json(
                429,
                {
                    "error": "quota exceeded",
                    "client": client,
                    "retry_after": retry_after,
                },
                {"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": f"malformed JSON body: {error}"})
            return
        try:
            record, created = self.service.submit(client, payload)
        except SpecValidationError as error:
            self._send_json(400, {"error": str(error)})
            return
        status = 201 if created else 200
        self._send_json(status, self.service.job_payload(record))

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self.service.metrics.record_request()
        path = self.path.rstrip("/")
        if path == "/metrics":
            self._send_json(200, self.service.metrics_payload())
            return
        if path == "/queue":
            self._send_json(200, self.service.queue_payload())
            return
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "jobs" or len(parts) not in (2, 3):
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        record = self.service.store.get(parts[1])
        if record is None:
            self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
            return
        if len(parts) == 2:
            self._send_json(200, self.service.job_payload(record))
            return
        if parts[2] != "result":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        if record.state == J.FAILED:
            self._send_json(
                500, {"error": record.error or "job failed", "job_id": record.job_id}
            )
            return
        if record.state != J.DONE:
            # Not ready: 202 with the status document; clients poll.
            self._send_json(202, self.service.job_payload(record))
            return
        try:
            self._send_body(200, self.service.result_bytes(record))
        except LookupError as error:
            self._send_json(500, {"error": str(error)})


def make_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> _ServiceHTTPServer:
    """Bind the HTTP layer over a service (``port=0`` = ephemeral)."""
    server = _ServiceHTTPServer((host, port), _Handler)
    server.service = service
    return server


def serve(
    cache_dir: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    lease_ttl: Optional[float] = None,
    quota_capacity: float = DEFAULT_QUOTA_CAPACITY,
    quota_refill: float = DEFAULT_QUOTA_REFILL,
    events: Optional[IO[str]] = None,
) -> int:
    """The ``repro-experiments serve`` entry point: run until interrupted."""
    service = SweepService(
        ResultCache(cache_dir),
        workers=workers,
        lease_ttl=lease_ttl,
        quota_capacity=quota_capacity,
        quota_refill=quota_refill,
        events=events if events is not None else sys.stderr,
    )
    service.start()
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"[serve] sweep service on http://{bound_host}:{bound_port} "
        f"({workers} worker(s), cache {cache_dir}) — "
        "POST /jobs, GET /jobs/<id>[/result], /metrics, /queue"
    )
    sys.stdout.flush()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("[serve] interrupted; draining workers")
    finally:
        server.server_close()
        service.stop()
    return 0
