"""A standard-library HTTP client for the sweep service.

``repro-experiments submit`` is a thin CLI over this class, and the
service tests drive the server through it, so the client is exercised
end to end on every CI run.  It speaks plain ``http.client`` — the
service stays dependency-free on both sides of the wire.

The one piece of cleverness is connect retry: ``repro-experiments
serve &`` in a quickstart (or a CI lane) races the client against the
server's bind, so the first connection attempt retries with a short
backoff for up to ``connect_retry_seconds`` before giving up.  After
the first successful request the retry window drops to zero — a
*dropped* connection then fails fast instead of masking a crashed
server.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

#: Default service URL (the `serve` command's default bind).
DEFAULT_URL = "http://127.0.0.1:8765"


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class QuotaExceededError(ServiceError):
    """HTTP 429: the per-client token bucket ran dry."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(429, message)
        self.retry_after = retry_after


class JobFailedError(ServiceError):
    """The submitted job reached the ``failed`` state."""


class ServiceClient:
    """Submit sweeps, poll jobs, fetch results and scrape metrics."""

    def __init__(
        self,
        url: str = DEFAULT_URL,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
        connect_retry_seconds: float = 5.0,
    ):
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(
                f"the sweep service speaks plain http, got {url!r}"
            )
        if not parts.hostname:
            raise ValueError(f"no host in service url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.client_id = client_id
        self.timeout = timeout
        self.connect_retry_seconds = connect_retry_seconds
        self._connected_once = False

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        retry_budget = 0.0 if self._connected_once else self.connect_retry_seconds
        started = time.monotonic()
        while True:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
                self._connected_once = True
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload,
                )
            except (ConnectionRefusedError, ConnectionResetError, OSError):
                if time.monotonic() - started >= retry_budget:
                    raise
                time.sleep(0.05)
            finally:
                connection.close()

    def _json(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Dict[str, object]:
        status, headers, payload = self._request(method, path, body)
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(
                status, f"non-JSON response: {payload[:200]!r}"
            ) from None
        if status == 429:
            retry_after = float(
                headers.get("retry-after", document.get("retry_after", 0.1))
            )
            raise QuotaExceededError(
                str(document.get("error", "quota exceeded")), retry_after
            )
        if status >= 400:
            raise ServiceError(status, str(document.get("error", document)))
        return document

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """POST a submission; returns the job document (may be ``done``
        immediately on a hot cache).  Raises :class:`QuotaExceededError`
        on 429 and :class:`ServiceError` on validation failures."""
        body = json.dumps(payload).encode("utf-8")
        document = self._json("POST", "/jobs", body)
        return document["job"]

    def status(self, job_id: str) -> Dict[str, object]:
        """GET one job's current record."""
        return self._json("GET", f"/jobs/{job_id}")["job"]

    def raw_result(self, job_id: str) -> bytes:
        """The finished job's result payload, verbatim wire bytes.

        The body is the canonical JSON of the result list — the bytes
        the roundtrip test compares against a serial executor run.
        Raises :class:`JobFailedError` for failed jobs and
        :class:`ServiceError` (with ``status == 202``) when not ready.
        """
        status, _, payload = self._request("GET", f"/jobs/{job_id}/result")
        if status == 200:
            return payload
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {}
        message = str(document.get("error", document))
        if status == 500 and "error" in document:
            raise JobFailedError(status, message)
        raise ServiceError(status, message or "result not ready")

    def result(self, job_id: str) -> List[Dict[str, object]]:
        """The finished job's results, decoded (cell order)."""
        return json.loads(self.raw_result(job_id).decode("utf-8"))

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the job is terminal; returns the final record.

        Raises :class:`JobFailedError` if the job failed and
        :class:`TimeoutError` if it is still running at the deadline.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] == "done":
                return record
            if record["state"] == "failed":
                raise JobFailedError(
                    500, record.get("error") or "job failed"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} after {timeout}s"
                )
            time.sleep(poll_interval)

    def submit_and_wait(
        self,
        payload: Dict[str, object],
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Submit (respecting 429 backoff) and wait for completion."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                record = self.submit(payload)
                break
            except QuotaExceededError as error:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(max(error.retry_after, 0.01), 1.0))
        if record["state"] == "done":
            return record
        remaining = max(deadline - time.monotonic(), poll_interval)
        return self.wait(
            record["job_id"], timeout=remaining, poll_interval=poll_interval
        )

    # ------------------------------------------------------------------
    # Ops API
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` structured JSON event."""
        return self._json("GET", "/metrics")

    def queue(self) -> Dict[str, object]:
        """The ``/queue`` structured JSON event."""
        return self._json("GET", "/queue")
