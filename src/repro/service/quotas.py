"""Per-client token-bucket quotas backing the service's 429 responses.

Each client identity (the ``X-Client-Id`` header, falling back to the
remote address) owns one :class:`TokenBucket`: ``capacity`` tokens,
refilled continuously at ``refill_per_second``.  A submission costs one
token; an empty bucket yields HTTP 429 with a ``Retry-After`` derived
from :meth:`TokenBucket.retry_after`, so well-behaved clients back off
for exactly as long as necessary.

The clock is injectable (and defaults to :func:`time.monotonic`, which
never jumps backwards) so the property tests in
``tests/service/test_quotas.py`` can drive arbitrary interleavings of
takes and refills and assert the budget invariant: the balance never
leaves ``[0, capacity]`` and a take never succeeds on an empty bucket.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Tuple


class TokenBucket:
    """A continuously-refilling token bucket (thread-safe)."""

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if refill_per_second <= 0:
            raise ValueError(
                f"refill_per_second must be positive, got {refill_per_second!r}"
            )
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_second
            )
        # A clock that stands still (or an injected one driven backwards)
        # simply refills nothing; the balance is never debited by time.
        self._stamp = max(self._stamp, now)

    def try_take(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the balance covers them; never blocks."""
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens!r}")
        with self._lock:
            self._refill(self.clock())
            if self._tokens + 1e-9 < tokens:
                return False
            self._tokens = max(0.0, self._tokens - tokens)
            return True

    def balance(self) -> float:
        """The current token balance (refreshed)."""
        with self._lock:
            self._refill(self.clock())
            return self._tokens

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be affordable (0 if already)."""
        with self._lock:
            self._refill(self.clock())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self.refill_per_second


class ClientQuotas:
    """The per-client bucket table (thread-safe, lazily populated)."""

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket_for(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.capacity, self.refill_per_second, clock=self.clock
                )
                self._buckets[client] = bucket
            return bucket

    def try_take(self, client: str, tokens: float = 1.0) -> Tuple[bool, float]:
        """Debit ``client``; returns ``(allowed, retry_after_seconds)``."""
        bucket = self.bucket_for(client)
        if bucket.try_take(tokens):
            return True, 0.0
        return False, bucket.retry_after(tokens)

    def snapshot(self) -> List[Dict[str, object]]:
        """Per-client balances for the ops surface (sorted by client)."""
        with self._lock:
            clients = sorted(self._buckets)
            return [
                {
                    "client": client,
                    "tokens": round(self._buckets[client].balance(), 3),
                    "capacity": self.capacity,
                }
                for client in clients
            ]
