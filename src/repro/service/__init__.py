"""Simulation-as-a-service on the distributed substrate.

The coordinator-less execution backend (:mod:`repro.exec.distributed`)
already provides location-transparent cells, atomic lease files and a
content-addressed result cache; this package adds the missing step to a
persistent service: a long-lived HTTP/JSON job API
(``repro-experiments serve``) where concurrent clients submit
:class:`~repro.scenarios.Scenario` sweep specs, a standing worker fleet
drains the cells, and results stream back from the cache — instant on
digest hit.

Layout
------
:mod:`repro.service.jobs`
    The job-state machine (queued → leased → published → done/failed)
    and its restart-safe on-disk store under the cache root.
:mod:`repro.service.quotas`
    Per-client token buckets backing 429 backpressure.
:mod:`repro.service.server`
    The ``ThreadingHTTPServer`` front end, the worker fleet, and the
    structured JSON-event metrics surface (``/metrics``, ``/queue``).
:mod:`repro.service.client`
    A stdlib HTTP client (``repro-experiments submit`` is built on it).

Everything is standard library only — the service adds no dependency
the batch tool does not already carry.
"""

from .client import QuotaExceededError, ServiceClient, ServiceError
from .jobs import (
    JOB_STATES,
    IllegalTransition,
    JobRecord,
    JobState,
    JobStore,
    job_id_for,
)
from .quotas import ClientQuotas, TokenBucket
from .server import SweepService, serve

__all__ = [
    "JOB_STATES",
    "ClientQuotas",
    "IllegalTransition",
    "JobRecord",
    "JobState",
    "JobStore",
    "QuotaExceededError",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "TokenBucket",
    "job_id_for",
    "serve",
]
