"""The paper's tables (T1-T4) and the section 2.2.4 cost analysis (C1).

These artifacts are deterministic — no simulation involved — so the
"reproduction" is an executable statement of the published values, and
the tests pin them exactly.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import dict_report, format_table
from ..churn.profiles import PAPER_PROFILES, profile_table
from ..core.categories import DEFAULT_SCHEME
from ..net.bandwidth import CostModel, paper_cost_table
from ..sim.config import PAPER_OBSERVERS
from ..sim.observers import observer_table


def t1_system_parameters() -> Dict[str, object]:
    """T1 — section 2.2.4: archive size and code parameters."""
    return {
        "Archive Size": "128 MB",
        "k (initial blocks)": 128,
        "m (added blocks)": 128,
    }


def t2_profiles() -> Dict[str, Dict]:
    """T2 — section 4.1.1: the four churn profiles."""
    return profile_table(PAPER_PROFILES)


def t3_categories() -> Dict[str, str]:
    """T3 — section 4.2.1: the four age categories."""
    return DEFAULT_SCHEME.table()


def t4_observers() -> Dict[str, str]:
    """T4 — section 4.2.2: the five observer ages."""
    return observer_table(PAPER_OBSERVERS)


def c1_cost_analysis() -> Dict[str, object]:
    """C1 — section 2.2.4: the repair-cost arithmetic on the paper's DSL."""
    return paper_cost_table()


def c1_feasibility_rows() -> List[List[object]]:
    """The worked feasibility example: repairs/day budget per archive count.

    The paper: "if we want to limit the cost to one repair per day, with
    32 archives (4 GB of data), the repair rate should be less than one
    per month approximatively."
    """
    model = CostModel()
    rows = []
    for archives in (1, 8, 32, 64):
        per_archive_per_day = model.feasible_repair_rate(
            archives=archives, regenerated_blocks=128,
            budget_fraction=1.0 / model.max_repairs_per_day(128),
        )
        rows.append(
            [
                archives,
                archives * 128,  # MB backed up
                round(per_archive_per_day, 4),
                round(1.0 / per_archive_per_day, 1),  # days between repairs
            ]
        )
    return rows


def render_all(markdown: bool = False) -> str:
    """All tables as one text block (what ``repro-experiments tables`` prints)."""
    sections = [
        dict_report("T1 — system parameters (section 2.2.4)",
                    t1_system_parameters(), markdown=markdown),
    ]
    profile_rows = [
        [name, row["proportion"], row["life_expectancy"], row["availability"]]
        for name, row in t2_profiles().items()
    ]
    sections.append(
        "T2 — peer profiles (section 4.1.1)\n"
        + format_table(
            ["profile", "proportion", "life expectancy", "availability"],
            profile_rows,
            markdown=markdown,
        )
    )
    sections.append(
        "T3 — age categories (section 4.2.1)\n"
        + format_table(
            ["category", "age bracket"],
            [[k, v] for k, v in t3_categories().items()],
            markdown=markdown,
        )
    )
    sections.append(
        "T4 — observers (section 4.2.2)\n"
        + format_table(
            ["observer", "age"],
            [[k, v] for k, v in t4_observers().items()],
            markdown=markdown,
        )
    )
    cost = c1_cost_analysis()
    sections.append(
        dict_report("C1 — repair-cost analysis (section 2.2.4)", cost,
                    markdown=markdown)
    )
    sections.append(
        "C1 — feasibility (one repair/day of link budget)\n"
        + format_table(
            ["archives", "MB backed up", "repairs/archive/day", "days between repairs"],
            c1_feasibility_rows(),
            markdown=markdown,
        )
    )
    return "\n\n".join(sections)
