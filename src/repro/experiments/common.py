"""Shared experiment machinery: scales, configs and threshold mappings.

The paper's evaluation runs 25 000 peers for 50 000 one-hour rounds with
a (k=128, n=256) code — far beyond a pure-Python hot loop.  Experiments
therefore run at a chosen :class:`ExperimentScale` that shrinks *both*
the size axis (population, code width, quota) and the time axis
(lifetimes, age cap L, category brackets, observer ages, session
lengths) by consistent factors, preserving every dimensionless ratio the
paper's qualitative claims rest on:

* code rate ``k/n`` and quota ratio ``quota/n``;
* repair-threshold slack fraction ``(k' - k) / (n - k)``;
* lifetime-to-cap and category-to-lifetime ratios (the time axis is
  scaled uniformly, availability duty cycles untouched).

``FULL`` is the paper's exact parameterisation and is runnable (slowly)
through the same entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..churn.profiles import PAPER_PROFILES, Profile
from ..core.acceptance import DEFAULT_AGE_CAP
from ..core.categories import DEFAULT_SCHEME, CategoryScheme
from ..core.policy import scaled_threshold
from ..sim.config import PAPER_OBSERVERS, ObserverSpec, SimulationConfig
from ..sim.observers import scaled_observers

#: The thresholds the paper sweeps in figures 1 and 2 (k'=132..180).
PAPER_THRESHOLDS: Tuple[int, ...] = (132, 136, 140, 144, 148, 152, 156, 164, 172, 180)

#: The threshold the paper focuses on (figures 3 and 4).
PAPER_FOCUS_THRESHOLD = 148


def scaled_profiles(time_scale: float) -> Tuple[Profile, ...]:
    """The paper's profile mix with lifetimes/sessions scaled in time.

    Proportions and availabilities are untouched; life-expectancy ranges
    and mean session lengths shrink by ``time_scale`` (floored at one
    round) so the stability ordering between profiles is preserved.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if time_scale == 1.0:
        return PAPER_PROFILES
    profiles = []
    for profile in PAPER_PROFILES:
        expectancy = profile.life_expectancy
        if expectancy is not None:
            low, high = expectancy
            low = max(int(low * time_scale), 1)
            high = max(int(high * time_scale), low + 1)
            expectancy = (low, high)
        profiles.append(
            Profile(
                name=profile.name,
                proportion=profile.proportion,
                life_expectancy=expectancy,
                availability=profile.availability,
                mean_online_session=max(
                    profile.mean_online_session * time_scale, 1.0
                ),
            )
        )
    return tuple(profiles)


@dataclass(frozen=True)
class ExperimentScale:
    """One consistent shrink factor for the whole evaluation."""

    name: str
    population: int
    rounds: int
    data_blocks: int
    parity_blocks: int
    time_scale: float
    seeds: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.population <= 0 or self.rounds <= 0:
            raise ValueError("population and rounds must be positive")
        if self.time_scale <= 0 or self.time_scale > 1:
            raise ValueError("time_scale must lie in (0, 1]")
        if not self.seeds:
            raise ValueError("at least one seed is required")

    @property
    def total_blocks(self) -> int:
        """``n`` at this scale."""
        return self.data_blocks + self.parity_blocks

    @property
    def age_cap(self) -> int:
        """The acceptation cap L, time-scaled (min 2 rounds)."""
        return max(int(DEFAULT_AGE_CAP * self.time_scale), 2)

    def threshold(self, paper_threshold: int) -> int:
        """Map a paper threshold onto this scale's code parameters."""
        return scaled_threshold(
            paper_threshold,
            target_k=self.data_blocks,
            target_n=self.total_blocks,
        )

    def thresholds(
        self, paper_thresholds: Sequence[int] = PAPER_THRESHOLDS
    ) -> Tuple[int, ...]:
        """Distinct mapped thresholds for the figure 1/2 sweep."""
        seen = []
        for paper_threshold in paper_thresholds:
            mapped = self.threshold(paper_threshold)
            if mapped not in seen:
                seen.append(mapped)
        return tuple(seen)

    def categories(self) -> CategoryScheme:
        """The age-category scheme, time-scaled."""
        if self.time_scale == 1.0:
            return DEFAULT_SCHEME
        return DEFAULT_SCHEME.scaled(self.time_scale)

    def observers(self) -> Tuple[ObserverSpec, ...]:
        """The five paper observers, time-scaled."""
        if self.time_scale == 1.0:
            return PAPER_OBSERVERS
        return scaled_observers(self.time_scale)

    def config(
        self,
        paper_threshold: int = PAPER_FOCUS_THRESHOLD,
        with_observers: bool = False,
        seed: Optional[int] = None,
        **overrides,
    ) -> SimulationConfig:
        """A full :class:`SimulationConfig` at this scale."""
        quota = overrides.pop("quota", int(self.total_blocks * 1.5))
        return SimulationConfig(
            population=self.population,
            rounds=self.rounds,
            data_blocks=self.data_blocks,
            parity_blocks=self.parity_blocks,
            repair_threshold=self.threshold(paper_threshold),
            quota=quota,
            age_cap=self.age_cap,
            profiles=scaled_profiles(self.time_scale),
            categories=self.categories(),
            observers=self.observers() if with_observers else (),
            seed=self.seeds[0] if seed is None else seed,
            **overrides,
        )


#: Smoke scale: seconds per run; used by the test-suite and as the
#: pytest-benchmark payload.  The code width stays at n = 32: narrower
#: codes make per-archive churn events so rare that the age
#: stratification drowns in placement luck (see DESIGN.md section 5).
QUICK = ExperimentScale(
    name="quick",
    population=250,
    rounds=5000,
    data_blocks=16,
    parity_blocks=16,
    time_scale=0.15,
    seeds=(0, 1),
)

#: Default scale for recorded experiments: minutes per figure.
DEFAULT = ExperimentScale(
    name="default",
    population=800,
    rounds=14_000,
    data_blocks=16,
    parity_blocks=16,
    time_scale=0.5,
    seeds=(0, 1),
)

#: The paper's own parameters (hours of pure-Python runtime).
FULL = ExperimentScale(
    name="full",
    population=25_000,
    rounds=50_000,
    data_blocks=128,
    parity_blocks=128,
    time_scale=1.0,
    seeds=(0,),
)

_SCALES = {scale.name: scale for scale in (QUICK, DEFAULT, FULL)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a scale preset."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {sorted(_SCALES)}"
        ) from None
