"""Ablation A4 — reactive threshold repair vs proactive replication.

Related work [10] (Duminuco et al.) replaces threshold-triggered repair
with continuous regeneration at the measured churn rate.  This ablation
runs both maintenance styles on the same workload: the reactive paper
protocol, and the paper protocol plus proactive top-ups at the
analytically estimated churn rate (and at a safety-margined rate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..baselines.proactive import estimate_churn
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale


@dataclass
class AblationProactiveResult:
    """Outcome per proactive safety factor (0 = purely reactive)."""

    scale_name: str
    estimated_rate: float
    by_factor: Dict[float, List[SimulationResult]]

    def rows(self) -> List[List[object]]:
        """Report rows: factor, rate, repairs, losses."""
        rows = []
        for factor in sorted(self.by_factor):
            results = self.by_factor[factor]
            count = len(results)
            rows.append(
                [
                    factor,
                    round(self.estimated_rate * factor, 6),
                    round(sum(r.metrics.total_repairs for r in results) / count, 1),
                    round(sum(r.metrics.total_losses for r in results) / count, 2),
                ]
            )
        return rows

    def render(self, markdown: bool = False) -> str:
        """Reactive-vs-proactive table."""
        table = format_table(
            ["safety factor", "proactive rate", "reactive repairs", "losses"],
            self.rows(),
            markdown=markdown,
        )
        return (
            f"A4 — proactive-replication ablation (scale={self.scale_name}, "
            f"estimated churn rate={self.estimated_rate:.6f} blocks/round)\n{table}"
        )


def ablation_proactive_spec(
    scale: ExperimentScale = DEFAULT,
    safety_factors: Sequence[float] = (0.0, 1.0, 2.0),
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The reactive-vs-proactive comparison as a declarative spec."""
    if not safety_factors:
        raise ValueError("at least one safety factor is required")
    for factor in safety_factors:
        if factor < 0:
            raise ValueError("safety factors cannot be negative")
    seeds = tuple(seeds) or scale.seeds
    base = scale.config(paper_threshold=PAPER_FOCUS_THRESHOLD)
    estimate = estimate_churn(base.profiles, base.total_blocks)
    rate = estimate.block_loss_rate_per_archive

    def build(params):
        return replace(base, proactive_rate=rate * params["safety_factor"])

    def reduce(sweep) -> AblationProactiveResult:
        return AblationProactiveResult(
            scale_name=scale.name,
            estimated_rate=rate,
            by_factor=sweep.by_axis("safety_factor"),
        )

    return ExperimentSpec(
        name="ablation-proactive",
        build=build,
        grid={"safety_factor": tuple(safety_factors)},
        seeds=seeds,
        reduce=reduce,
    )


def run_ablation_proactive(
    scale: ExperimentScale = DEFAULT,
    safety_factors: Sequence[float] = (0.0, 1.0, 2.0),
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> AblationProactiveResult:
    """Run reactive-only vs reactive+proactive maintenance."""
    return run_experiment(
        ablation_proactive_spec(scale, safety_factors, seeds), executor
    )
