"""Ablation A5 — static vs adaptive repair thresholds.

Implements the paper's future work (section 6): let each peer adapt its
repair threshold to its context — raise it after a blocked repair (it
waited too long), lower it when recruitment starves (it repairs more
eagerly than the network can absorb).

The comparison runs the same workload with the static paper threshold
and with the adaptive controller seeded at that threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale


@dataclass
class AblationAdaptiveResult:
    """Static-vs-adaptive outcome at one scale."""

    scale_name: str
    by_mode: Dict[str, List[SimulationResult]]  # "static" | "adaptive"

    def rows(self) -> List[List[object]]:
        """Report rows: mode, repairs, losses, blocked, starved."""
        rows = []
        for mode in ("static", "adaptive"):
            results = self.by_mode[mode]
            count = len(results)
            blocked = [
                sum(c.blocked for c in r.metrics.by_category.values())
                for r in results
            ]
            rows.append(
                [
                    mode,
                    round(sum(r.metrics.total_repairs for r in results) / count, 1),
                    round(sum(r.metrics.total_losses for r in results) / count, 2),
                    round(sum(blocked) / count, 1),
                    round(sum(r.metrics.starved_repairs for r in results) / count, 1),
                ]
            )
        return rows

    def render(self, markdown: bool = False) -> str:
        """Static-vs-adaptive table."""
        table = format_table(
            ["mode", "repairs", "losses", "blocked", "starved"],
            self.rows(),
            markdown=markdown,
        )
        return f"A5 — adaptive-threshold ablation (scale={self.scale_name})\n{table}"


def ablation_adaptive_spec(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The static-vs-adaptive comparison as a declarative spec."""
    seeds = tuple(seeds) or scale.seeds
    base = scale.config(paper_threshold=paper_threshold)

    def build(params):
        return replace(
            base, adaptive_thresholds=(params["mode"] == "adaptive")
        )

    def reduce(sweep) -> AblationAdaptiveResult:
        return AblationAdaptiveResult(
            scale_name=scale.name, by_mode=sweep.by_axis("mode")
        )

    return ExperimentSpec(
        name="ablation-adaptive",
        build=build,
        grid={"mode": ("static", "adaptive")},
        seeds=seeds,
        reduce=reduce,
    )


def run_ablation_adaptive(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> AblationAdaptiveResult:
    """Run both maintenance modes on the same workload."""
    return run_experiment(
        ablation_adaptive_spec(scale, paper_threshold, seeds), executor
    )


def check_shape(
    result: AblationAdaptiveResult, loss_tolerance: float = 0.0
) -> List[str]:
    """The adaptive controller must not lose more archives than static.

    (Its whole purpose is to buy safety after blocked repairs; repairs
    may go up or down depending on which signal dominates.)

    ``loss_tolerance`` allows a small absolute excess: at miniature
    scales (a couple of hundred peers over a few thousand rounds) losses
    are single-digit rare events, so a strict mean comparison measures
    seed luck rather than the controller — the tier-1 test suite passes
    a tolerance there while the quick/default experiment scales keep the
    strict check.
    """
    problems: List[str] = []
    rows = {row[0]: row for row in result.rows()}
    if rows["adaptive"][2] > rows["static"][2] + loss_tolerance + 1e-9:
        problems.append(
            f"adaptive mode lost more archives ({rows['adaptive'][2]}) than "
            f"static ({rows['static'][2]})"
        )
    return problems
