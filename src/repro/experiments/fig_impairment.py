"""Impairment sweep — the protocol stack across the netem loss x delay matrix.

The abstract engine cannot express a lossy or high-latency link; the
protocol backend with :mod:`repro.net.impairment` can.  This experiment
runs the paper workload at protocol fidelity under each profile of the
netem-mirroring matrix (clean, 10% loss, 10 ms delay, 30% loss +
50 ms ± 5 ms) and reports what impairment costs: durability (losses,
blocked repairs) and repair latency (transfer and queueing time per
completed transfer), next to the retry machinery's own counters
(drops, retries, timeouts, gave-ups).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.plots import ascii_chart
from ..analysis.report import format_table
from ..analysis.series import to_days
from ..churn.profiles import ROUNDS_PER_DAY
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

#: The netem-mirroring matrix, swept in severity order.
IMPAIRMENTS = (
    "clean",
    "delay10ms",
    "loss10",
    "loss30_delay50ms_jitter5ms",
)


@dataclass
class ImpairmentResult:
    """Per-impairment-profile replications of the paper workload."""

    scale_name: str
    threshold: int
    by_impairment: Dict[str, List[SimulationResult]]
    categories: List[str]

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Headline means per impairment profile."""
        table: Dict[str, Dict[str, float]] = {}
        for impairment, results in self.by_impairment.items():
            count = len(results)

            def mean(pick) -> float:
                return sum(pick(r) for r in results) / count

            completed = mean(
                lambda r: r.metrics.protocol.get("transfers_completed", 0)
            )
            latency = mean(
                lambda r: r.metrics.protocol.get("transfer_seconds", 0.0)
                + r.metrics.protocol.get("queue_delay_seconds", 0.0)
            )
            table[impairment] = {
                "repairs": mean(lambda r: r.metrics.total_repairs),
                "losses": mean(lambda r: r.metrics.total_losses),
                "blocked": mean(
                    lambda r: sum(
                        c.blocked for c in r.metrics.by_category.values()
                    )
                ),
                "drops": mean(lambda r: r.metrics.protocol.get("drops", 0)),
                "retries": mean(
                    lambda r: r.metrics.protocol.get("retries", 0)
                ),
                "gave_up": mean(
                    lambda r: r.metrics.protocol.get("gave_up", 0)
                ),
                # Mean hours of link time (transfer + queueing) per
                # completed transfer: the repair-latency headline.
                "latency_h": (
                    latency / completed / 3600.0 if completed else 0.0
                ),
            }
        return table

    def loss_series(self) -> Dict[str, List[tuple]]:
        """Newcomer cumulative losses per peer, in days, per profile."""
        series: Dict[str, List[tuple]] = {}
        for impairment, results in self.by_impairment.items():
            series[impairment] = to_days(
                results[0].metrics.losses_per_peer_series("Newcomers"),
                ROUNDS_PER_DAY,
            )
        return series

    def to_csv(self) -> str:
        """CSV text: round, then Newcomer losses-per-peer per profile."""
        from ..sim.trace import series_to_csv

        impairments = sorted(self.by_impairment)
        columns = {
            impairment: dict(
                self.by_impairment[impairment][0]
                .metrics.losses_per_peer_series("Newcomers")
            )
            for impairment in impairments
        }
        rounds = sorted({r for column in columns.values() for r in column})
        rows = [
            [r] + [columns[name].get(r, 0.0) for name in impairments]
            for r in rounds
        ]
        return series_to_csv(["round"] + impairments, rows)

    def render(self, markdown: bool = False) -> str:
        """Headline table and the per-profile loss chart."""
        totals = self.totals()
        ordered = [name for name in IMPAIRMENTS if name in totals]
        ordered += [name for name in sorted(totals) if name not in ordered]
        headline = format_table(
            ["impairment", "repairs", "losses", "blocked", "drops",
             "retries", "gave_up", "latency_h"],
            [
                [
                    name,
                    round(totals[name]["repairs"], 1),
                    round(totals[name]["losses"], 2),
                    round(totals[name]["blocked"], 1),
                    round(totals[name]["drops"], 1),
                    round(totals[name]["retries"], 1),
                    round(totals[name]["gave_up"], 1),
                    round(totals[name]["latency_h"], 2),
                ]
                for name in ordered
            ],
            markdown=markdown,
        )
        chart = ascii_chart(
            self.loss_series(),
            log_y=False,
            title=(
                "Impairment sweep — Newcomer cumulative losses per peer "
                f"(scale={self.scale_name}, threshold={self.threshold})"
            ),
            x_label="days",
            y_label="lost",
        )
        return "\n\n".join([headline, chart])


def fig_impairment_spec(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The loss x delay matrix at protocol fidelity, as one spec.

    Every cell shares the churn trajectory (same seed, same driver), so
    differences between rows are attributable to the link alone.  One
    seed by default — protocol cells pay real per-message costs and the
    matrix is four of them.
    """
    seeds = tuple(seeds) or (scale.seeds[0],)
    base = replace(
        scale.config(paper_threshold=paper_threshold), fidelity="protocol"
    )

    def build(params):
        return replace(base, impairment_profile=params["impairment"])

    def reduce(sweep) -> ImpairmentResult:
        return ImpairmentResult(
            scale_name=scale.name,
            threshold=base.repair_threshold,
            by_impairment=sweep.by_axis("impairment"),
            categories=base.categories.names(),
        )

    return ExperimentSpec(
        name="fig-impairment",
        build=build,
        grid={"impairment": IMPAIRMENTS},
        seeds=seeds,
        reduce=reduce,
    )


def run_fig_impairment(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> ImpairmentResult:
    """Run the matrix at the focus threshold."""
    return run_experiment(
        fig_impairment_spec(scale, paper_threshold, seeds), executor
    )


def check_shape(result: ImpairmentResult) -> List[str]:
    """The matrix ran, the clean row is clean, the lossy rows lost."""
    problems: List[str] = []
    totals = result.totals()
    for name in IMPAIRMENTS:
        if name not in totals:
            problems.append(f"impairment {name!r} produced no results")
            continue
        if totals[name]["repairs"] <= 0:
            problems.append(f"{name}: the maintenance loop never repaired")
    if "clean" in totals and totals["clean"]["drops"] > 0:
        problems.append("clean: the perfect link dropped exchanges")
    for name in ("loss10", "loss30_delay50ms_jitter5ms"):
        if name in totals and totals[name]["drops"] <= 0:
            problems.append(f"{name}: a lossy link dropped nothing")
    return problems
