"""Figure 2 — average data-loss rate vs repair threshold, per category.

Paper reading: "if the repair threshold is too small, a peer may lose
too quickly its partners, and will be unable to regenerate original
blocks to fulfill the repair" — losses concentrate at thresholds close
to k, and on the youngest peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.aggregate import Aggregate, axis_rates
from ..analysis.plots import ascii_chart
from ..analysis.report import sweep_report
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from .common import DEFAULT, PAPER_THRESHOLDS, ExperimentScale


@dataclass
class Figure2Result:
    """Everything figure 2 shows, at one experiment scale."""

    scale_name: str
    thresholds: List[int]
    rates: Dict[int, Dict[str, Aggregate]]
    categories: List[str]

    def series(self) -> Dict[str, List[tuple]]:
        """Per-category ``(threshold, mean loss rate)`` series."""
        return {
            category: [
                (threshold, self.rates[threshold][category].mean)
                for threshold in self.thresholds
            ]
            for category in self.categories
        }

    def to_csv(self) -> str:
        """CSV text: threshold, then one mean-loss-rate column per category."""
        from ..sim.trace import series_to_csv

        header = ["threshold"] + self.categories
        rows = [
            [t] + [round(self.rates[t][c].mean, 6) for c in self.categories]
            for t in self.thresholds
        ]
        return series_to_csv(header, rows)

    def render(self, markdown: bool = False) -> str:
        """Table plus ASCII chart."""
        table = sweep_report(self.rates, self.categories, markdown=markdown)
        chart = ascii_chart(
            self.series(),
            log_y=False,
            title=(
                "Figure 2 — archives lost per round per 1000 peers "
                f"(scale={self.scale_name})"
            ),
            x_label="threshold",
            y_label="losses",
        )
        return f"{table}\n\n{chart}"


def figure2_spec(
    scale: ExperimentScale = DEFAULT,
    paper_thresholds: Sequence[int] = PAPER_THRESHOLDS,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The figure 2 sweep as a declarative spec.

    Cell-for-cell identical to :func:`figure1_spec`'s sweep (only the
    reducer differs), so with a shared result cache figures 1 and 2
    cost one set of simulations between them.
    """
    seeds = tuple(seeds) or scale.seeds
    base = scale.config()
    thresholds = scale.thresholds(paper_thresholds)

    def reduce(sweep) -> Figure2Result:
        return Figure2Result(
            scale_name=scale.name,
            thresholds=list(thresholds),
            rates=axis_rates(sweep, "threshold", "losses"),
            categories=base.categories.names(),
        )

    return ExperimentSpec(
        name="fig2",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": thresholds},
        seeds=seeds,
        reduce=reduce,
    )


def run_figure2(
    scale: ExperimentScale = DEFAULT,
    paper_thresholds: Sequence[int] = PAPER_THRESHOLDS,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> Figure2Result:
    """Execute the sweep and aggregate loss rates."""
    return run_experiment(
        figure2_spec(scale, paper_thresholds, seeds), executor
    )


def check_shape(result: Figure2Result) -> List[str]:
    """Validate figure 2's qualitative claims; returns violations.

    1. Newcomers suffer at least as much loss as Elder peers everywhere.
    2. The loss rate at the lowest threshold is >= the loss rate at the
       figure's compromise region (the paper picks 148 because losses
       have flattened there).
    """
    problems: List[str] = []
    for threshold in result.thresholds:
        rates = result.rates[threshold]
        newcomers = rates.get("Newcomers")
        elders = rates.get("Elder peers")
        if newcomers and elders and newcomers.mean < elders.mean:
            problems.append(
                f"threshold {threshold}: Elders lose more than Newcomers"
            )
    if len(result.thresholds) >= 3:
        lowest = sum(
            result.rates[result.thresholds[0]][c].mean for c in result.categories
        )
        middle_threshold = result.thresholds[len(result.thresholds) // 2]
        middle = sum(
            result.rates[middle_threshold][c].mean for c in result.categories
        )
        if lowest < middle:
            problems.append(
                "losses at the lowest threshold are below the mid-sweep "
                f"losses ({lowest:.5f} < {middle:.5f})"
            )
    return problems
