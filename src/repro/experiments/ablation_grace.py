"""Ablation A3 — grace period before replacing an invisible partner.

The paper's conclusion: "We also plan to investigate more on the impact
of temporary disconnections, in particular by delaying the repair to
allow peers to come back in the system."  This ablation implements that
future work: a repair only abandons a partner once it has been invisible
for ``grace_rounds``; shorter graces replace aggressively (wasted
uploads when the partner returns), longer graces tolerate downtime but
ride closer to the loss boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..churn.profiles import ROUNDS_PER_DAY
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

#: Grace periods in rounds: none (paper's model), one day, three days.
DEFAULT_GRACES = (0, ROUNDS_PER_DAY, 3 * ROUNDS_PER_DAY)


@dataclass
class AblationGraceResult:
    """Sweep outcome: one entry per grace period."""

    scale_name: str
    by_grace: Dict[int, List[SimulationResult]]

    def rows(self) -> List[List[object]]:
        """Report rows: grace, repairs, regenerated blocks, losses."""
        rows = []
        for grace in sorted(self.by_grace):
            results = self.by_grace[grace]
            count = len(results)
            regenerated = [
                sum(c.regenerated_blocks for c in r.metrics.by_category.values())
                for r in results
            ]
            rows.append(
                [
                    grace,
                    round(sum(r.metrics.total_repairs for r in results) / count, 1),
                    round(sum(regenerated) / count, 1),
                    round(sum(r.metrics.total_losses for r in results) / count, 2),
                ]
            )
        return rows

    def render(self, markdown: bool = False) -> str:
        """Grace-sweep table."""
        table = format_table(
            ["grace (rounds)", "repairs", "blocks regenerated", "losses"],
            self.rows(),
            markdown=markdown,
        )
        return f"A3 — grace-period ablation (scale={self.scale_name})\n{table}"


def ablation_grace_spec(
    scale: ExperimentScale = DEFAULT,
    graces: Sequence[int] = DEFAULT_GRACES,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The grace-period sweep as a declarative spec.

    The axis carries the *paper-time* grace values; the builder maps
    them onto the scale's time axis, so reports stay keyed by the
    values the caller asked for.
    """
    if not graces:
        raise ValueError("at least one grace period is required")
    seeds = tuple(seeds) or scale.seeds
    base = scale.config(paper_threshold=PAPER_FOCUS_THRESHOLD)

    def build(params):
        grace = params["grace"]
        scaled_grace = max(int(grace * scale.time_scale), 0) if grace else 0
        return replace(base, grace_rounds=scaled_grace)

    def reduce(sweep) -> AblationGraceResult:
        return AblationGraceResult(
            scale_name=scale.name, by_grace=sweep.by_axis("grace")
        )

    return ExperimentSpec(
        name="ablation-grace",
        build=build,
        grid={"grace": tuple(graces)},
        seeds=seeds,
        reduce=reduce,
    )


def run_ablation_grace(
    scale: ExperimentScale = DEFAULT,
    graces: Sequence[int] = DEFAULT_GRACES,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> AblationGraceResult:
    """Run the grace sweep at the focus threshold."""
    return run_experiment(ablation_grace_spec(scale, graces, seeds), executor)
