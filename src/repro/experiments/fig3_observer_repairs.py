"""Figure 3 — cumulative repairs of the five fixed-age observers.

Paper reading (threshold 148, 2000 days): "The Elder and Senior
observers have less than 10 repairs in 2000 days, the Adult has less
than 20 repairs, the Teenager has less than 100 repairs and finally the
Baby has a huge 900 repairs."  The absolute numbers depend on the scale;
the ordering and the roughly two orders of magnitude between Baby and
Elder are the reproduced shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.plots import ascii_chart
from ..analysis.report import format_table
from ..analysis.series import to_days
from ..churn.profiles import ROUNDS_PER_DAY
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

#: Observer names ordered oldest to youngest (the paper's table order).
OBSERVER_ORDER = ("Elder", "Senior", "Adult", "Teenager", "Baby")


@dataclass
class Figure3Result:
    """Observer repair series and totals at one scale."""

    scale_name: str
    threshold: int
    results: List[SimulationResult]
    observer_names: List[str]

    def totals(self) -> Dict[str, float]:
        """Mean cumulative repairs per observer across seeds."""
        means: Dict[str, float] = {}
        for name in self.observer_names:
            values = [r.observer_totals().get(name, 0) for r in self.results]
            means[name] = sum(values) / len(values)
        return means

    def series(self) -> Dict[str, List[tuple]]:
        """Per-observer cumulative-repairs series in days (first seed)."""
        result = self.results[0]
        return {
            name: to_days(result.metrics.observer_series(name), ROUNDS_PER_DAY)
            for name in self.observer_names
        }

    def to_csv(self) -> str:
        """CSV text: round, then one cumulative-repairs column per observer."""
        from ..sim.trace import observer_series_rows, series_to_csv

        rows = observer_series_rows(self.results[0], self.observer_names)
        return series_to_csv(["round"] + list(self.observer_names), rows)

    def render(self, markdown: bool = False) -> str:
        """Totals table plus cumulative ASCII chart (log y, like the paper)."""
        totals = self.totals()
        rows = [[name, round(totals.get(name, 0.0), 1)] for name in self.observer_names]
        table = format_table(["observer", "total repairs"], rows, markdown=markdown)
        chart = ascii_chart(
            self.series(),
            log_y=True,
            title=(
                "Figure 3 — cumulative repairs per observer "
                f"(scale={self.scale_name}, threshold={self.threshold}, log y)"
            ),
            x_label="days",
            y_label="repairs",
        )
        return f"{table}\n\n{chart}"


def figure3_spec(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The observer replication study as a declarative (gridless) spec."""
    seeds = tuple(seeds) or scale.seeds
    config = scale.config(paper_threshold=paper_threshold, with_observers=True)
    names = [spec.name for spec in config.observers]
    ordered = [name for name in OBSERVER_ORDER if name in names]

    def reduce(sweep) -> Figure3Result:
        return Figure3Result(
            scale_name=scale.name,
            threshold=config.repair_threshold,
            results=sweep.replications(),
            observer_names=ordered,
        )

    return ExperimentSpec(
        name="fig3",
        build=lambda params: config,
        seeds=seeds,
        reduce=reduce,
    )


def run_figure3(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> Figure3Result:
    """Run the observer experiment at the focus threshold."""
    return run_experiment(
        figure3_spec(scale, paper_threshold, seeds), executor
    )


def check_shape(result: Figure3Result, min_ratio: float = None) -> List[str]:
    """Validate figure 3's ordering claims; returns violations.

    * the Baby observer repairs more than every other observer;
    * the Baby-to-Elder ratio is large — the paper shows ~100x at full
      scale; smaller codes are noisier, so the required ratio adapts to
      the scale (>= 5x at default scale, >= 1.5x at the quick smoke
      scale) unless ``min_ratio`` overrides it;
    * the Teenager repairs at least as much as the Adult.
    """
    if min_ratio is None:
        min_ratio = 1.5 if result.scale_name == "quick" else 5.0
    problems: List[str] = []
    totals = result.totals()
    baby = totals.get("Baby", 0.0)
    for name in result.observer_names:
        if name != "Baby" and totals.get(name, 0.0) > baby:
            problems.append(
                f"observer {name} ({totals[name]:.1f}) repaired more than "
                f"Baby ({baby:.1f})"
            )
    elder = totals.get("Elder", 0.0)
    if elder > 0 and baby / elder < min_ratio:
        problems.append(
            f"Baby/Elder repair ratio only {baby / elder:.1f} "
            f"(expected >= {min_ratio})"
        )
    teenager = totals.get("Teenager", 0.0)
    adult = totals.get("Adult", 0.0)
    if teenager < adult:
        problems.append(
            f"Teenager ({teenager:.1f}) repaired less than Adult ({adult:.1f})"
        )
    return problems
