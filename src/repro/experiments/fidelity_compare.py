"""Fidelity comparison — abstract vs protocol curves from one spec.

The repository's figures are produced by the *abstract* engine (peers
as counters, repairs as instantaneous flips).  The protocol backend
(:mod:`repro.sim.protocol`) replays the same seeded churn trajectory
with repairs executed as real store/fetch exchanges gated by the
bandwidth model.  This experiment runs the paper workload at both
fidelities through one declarative spec and reports the loss/repair
curves side by side — the validation that the abstraction the paper's
numbers rest on does not change the qualitative story, plus the
protocol-only observables (transfer time, link queueing) the abstract
engine cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.plots import ascii_chart
from ..analysis.report import format_table
from ..analysis.series import to_days
from ..churn.profiles import ROUNDS_PER_DAY
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

#: The two shipped fidelities, compared in registry order.
FIDELITIES = ("abstract", "protocol")


@dataclass
class FidelityCompareResult:
    """Per-fidelity replications of one workload."""

    scale_name: str
    threshold: int
    by_fidelity: Dict[str, List[SimulationResult]]
    categories: List[str]

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Headline means per fidelity (repairs, losses, blocked, ...)."""
        table: Dict[str, Dict[str, float]] = {}
        for fidelity, results in self.by_fidelity.items():
            count = len(results)
            blocked = sum(
                sum(c.blocked for c in r.metrics.by_category.values())
                for r in results
            )
            table[fidelity] = {
                "repairs": sum(r.metrics.total_repairs for r in results) / count,
                "losses": sum(r.metrics.total_losses for r in results) / count,
                "placements": sum(
                    r.metrics.total_placements for r in results
                ) / count,
                "blocked": blocked / count,
                "starved": sum(
                    r.metrics.starved_repairs for r in results
                ) / count,
            }
        return table

    def protocol_extras(self) -> Dict[str, float]:
        """Mean protocol-only counters (transfer time, queueing, ...)."""
        results = self.by_fidelity.get("protocol", [])
        if not results:
            return {}
        keys = sorted({key for r in results for key in r.metrics.protocol})
        return {
            key: sum(r.metrics.protocol.get(key, 0) for r in results)
            / len(results)
            for key in keys
        }

    def loss_series(self) -> Dict[str, List[tuple]]:
        """Newcomer cumulative losses per peer, in days, per fidelity."""
        series: Dict[str, List[tuple]] = {}
        for fidelity, results in self.by_fidelity.items():
            series[fidelity] = to_days(
                results[0].metrics.losses_per_peer_series("Newcomers"),
                ROUNDS_PER_DAY,
            )
        return series

    def to_csv(self) -> str:
        """CSV text: round, then Newcomer losses-per-peer per fidelity."""
        from ..sim.trace import series_to_csv

        fidelities = sorted(self.by_fidelity)
        columns = {
            fidelity: dict(
                self.by_fidelity[fidelity][0].metrics.losses_per_peer_series(
                    "Newcomers"
                )
            )
            for fidelity in fidelities
        }
        rounds = sorted({r for column in columns.values() for r in column})
        rows = [
            [r] + [columns[fidelity].get(r, 0.0) for fidelity in fidelities]
            for r in rounds
        ]
        return series_to_csv(["round"] + fidelities, rows)

    def render(self, markdown: bool = False) -> str:
        """Headline table, per-category rates, extras and the loss chart."""
        totals = self.totals()
        fidelities = sorted(totals)
        headline = format_table(
            ["fidelity", "repairs", "losses", "placements", "blocked",
             "starved"],
            [
                [
                    fidelity,
                    round(totals[fidelity]["repairs"], 1),
                    round(totals[fidelity]["losses"], 2),
                    round(totals[fidelity]["placements"], 1),
                    round(totals[fidelity]["blocked"], 1),
                    round(totals[fidelity]["starved"], 1),
                ]
                for fidelity in fidelities
            ],
            markdown=markdown,
        )
        rate_rows = []
        for category in self.categories:
            row = [category]
            for fidelity in fidelities:
                results = self.by_fidelity[fidelity]
                rate = sum(
                    r.metrics.repair_rate_per_1000(category) for r in results
                ) / len(results)
                row.append(round(rate, 4))
            rate_rows.append(row)
        rates = format_table(
            ["repairs/round/1000"] + list(fidelities), rate_rows,
            markdown=markdown,
        )
        sections = [headline, rates]
        extras = self.protocol_extras()
        if extras:
            sections.append(
                format_table(
                    ["protocol metric", "mean"],
                    # Hours for the duration-like counters, which
                    # otherwise dwarf the table.
                    [
                        [key, round(value / 3600.0, 1)]
                        if key.endswith("_seconds")
                        else [key, round(value, 1)]
                        for key, value in sorted(extras.items())
                    ],
                    markdown=markdown,
                )
            )
        sections.append(
            ascii_chart(
                self.loss_series(),
                log_y=False,
                title=(
                    "Fidelity comparison — Newcomer cumulative losses per "
                    f"peer (scale={self.scale_name}, "
                    f"threshold={self.threshold})"
                ),
                x_label="days",
                y_label="lost",
            )
        )
        return "\n\n".join(sections)


def fidelity_compare_spec(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """Abstract vs protocol on the paper workload, as one declarative spec.

    The ``fidelity`` grid axis is the only difference between the two
    cells of a seed, so the abstract cell is *the same cell* (same
    config, same digest) the other figures run — sweeps sharing the
    cache never simulate it twice.  One seed by default: the protocol
    cell pays real per-message costs and the comparison is qualitative.
    """
    seeds = tuple(seeds) or (scale.seeds[0],)
    base = scale.config(paper_threshold=paper_threshold)

    def build(params):
        return replace(base, fidelity=params["fidelity"])

    def reduce(sweep) -> FidelityCompareResult:
        return FidelityCompareResult(
            scale_name=scale.name,
            threshold=base.repair_threshold,
            by_fidelity=sweep.by_axis("fidelity"),
            categories=base.categories.names(),
        )

    return ExperimentSpec(
        name="fig-fidelity",
        build=build,
        grid={"fidelity": FIDELITIES},
        seeds=seeds,
        reduce=reduce,
    )


def run_fidelity_compare(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> FidelityCompareResult:
    """Run the comparison at the focus threshold."""
    return run_experiment(
        fidelity_compare_spec(scale, paper_threshold, seeds), executor
    )


def check_shape(result: FidelityCompareResult) -> List[str]:
    """Both fidelities ran and tell the same qualitative story."""
    problems: List[str] = []
    totals = result.totals()
    for fidelity in FIDELITIES:
        if fidelity not in totals:
            problems.append(f"fidelity {fidelity!r} produced no results")
            continue
        if totals[fidelity]["placements"] <= 0:
            problems.append(f"{fidelity}: no archive was ever placed")
    if "protocol" in totals:
        extras = result.protocol_extras()
        if extras.get("transfers_completed", 0) <= 0:
            problems.append("protocol: no transfer ever completed")
        if totals["protocol"]["repairs"] <= 0:
            problems.append("protocol: the maintenance loop never repaired")
    return problems
