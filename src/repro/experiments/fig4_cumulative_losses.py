"""Figure 4 — cumulative lost archives per peer, by age category.

Paper reading: "a Newcomer will lose about 18 archives during 2000 days
in the system, while all the other peers almost never lose anything",
with a visible early bump (days 200-600) caused by the all-same-age
start — an artifact this reproduction keeps on purpose (peers all join
at round 0 by default, exactly like the paper's runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.plots import ascii_chart
from ..analysis.report import format_table
from ..analysis.series import final_value, to_days
from ..churn.profiles import ROUNDS_PER_DAY
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale


@dataclass
class Figure4Result:
    """Per-category cumulative-loss series at one scale."""

    scale_name: str
    threshold: int
    results: List[SimulationResult]
    categories: List[str]

    def series(self) -> Dict[str, List[tuple]]:
        """Cumulative losses-per-peer series in days (first seed)."""
        result = self.results[0]
        return {
            category: to_days(
                result.metrics.losses_per_peer_series(category), ROUNDS_PER_DAY
            )
            for category in self.categories
        }

    def final_losses(self) -> Dict[str, float]:
        """Mean end-of-run cumulative losses per peer, across seeds."""
        means: Dict[str, float] = {}
        for category in self.categories:
            values = [
                final_value(r.metrics.losses_per_peer_series(category))
                for r in self.results
            ]
            means[category] = sum(values) / len(values)
        return means

    def to_csv(self) -> str:
        """CSV text: round, then losses-per-peer per category."""
        from ..sim.trace import category_loss_rows, series_to_csv

        rows = category_loss_rows(self.results[0])
        return series_to_csv(["round"] + list(self.categories), rows)

    def render(self, markdown: bool = False) -> str:
        """Final-value table plus cumulative ASCII chart."""
        finals = self.final_losses()
        rows = [
            [category, round(finals[category], 4)] for category in self.categories
        ]
        table = format_table(
            ["category", "cumulative losses / peer"], rows, markdown=markdown
        )
        chart = ascii_chart(
            self.series(),
            log_y=False,
            title=(
                "Figure 4 — cumulative lost archives per peer "
                f"(scale={self.scale_name}, threshold={self.threshold})"
            ),
            x_label="days",
            y_label="lost",
        )
        return f"{table}\n\n{chart}"


def figure4_spec(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The loss-accumulation replication study as a declarative spec."""
    seeds = tuple(seeds) or scale.seeds
    config = scale.config(paper_threshold=paper_threshold)

    def reduce(sweep) -> Figure4Result:
        return Figure4Result(
            scale_name=scale.name,
            threshold=config.repair_threshold,
            results=sweep.replications(),
            categories=config.categories.names(),
        )

    return ExperimentSpec(
        name="fig4",
        build=lambda params: config,
        seeds=seeds,
        reduce=reduce,
    )


def run_figure4(
    scale: ExperimentScale = DEFAULT,
    paper_threshold: int = PAPER_FOCUS_THRESHOLD,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> Figure4Result:
    """Run the loss-accumulation experiment at the focus threshold."""
    return run_experiment(
        figure4_spec(scale, paper_threshold, seeds), executor
    )


def check_shape(result: Figure4Result) -> List[str]:
    """Validate figure 4's dominant claim; returns violations.

    Newcomers accumulate at least as many losses per peer as any other
    category (the paper shows them far above the rest, which sit near
    zero).
    """
    problems: List[str] = []
    finals = result.final_losses()
    newcomers = finals.get("Newcomers", 0.0)
    for category, value in finals.items():
        if category != "Newcomers" and value > newcomers + 1e-9:
            problems.append(
                f"category {category} ({value:.4f}) lost more per peer than "
                f"Newcomers ({newcomers:.4f})"
            )
    return problems
