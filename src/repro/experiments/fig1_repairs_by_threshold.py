"""Figure 1 — average repair rate vs repair threshold, per age category.

Paper reading: "the number of repairs increases accordingly to the
repair threshold [...] Another result is the stratification between the
profiles.  Young peers (erratic ones) repair more often than the elder
ones (stable ones)."

The driver sweeps the (scale-mapped) thresholds, replicates over seeds
and reports repairs per round per 1000 peers for each category — the
exact y-axis of the figure.  The sweep itself is a declarative
:func:`figure1_spec`; any :class:`~repro.exec.SweepExecutor` can run it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.aggregate import Aggregate, axis_rates
from ..analysis.plots import ascii_chart
from ..analysis.report import sweep_report
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from .common import DEFAULT, PAPER_THRESHOLDS, ExperimentScale


@dataclass
class Figure1Result:
    """Everything figure 1 shows, at one experiment scale."""

    scale_name: str
    thresholds: List[int]
    paper_thresholds: List[int]
    rates: Dict[int, Dict[str, Aggregate]]  # threshold -> category -> rate
    categories: List[str]

    def series(self) -> Dict[str, List[tuple]]:
        """Per-category ``(threshold, mean rate)`` series for plotting."""
        return {
            category: [
                (threshold, self.rates[threshold][category].mean)
                for threshold in self.thresholds
            ]
            for category in self.categories
        }

    def to_csv(self) -> str:
        """CSV text: threshold, then one mean-rate column per category."""
        from ..sim.trace import series_to_csv

        header = ["threshold"] + self.categories
        rows = [
            [t] + [round(self.rates[t][c].mean, 6) for c in self.categories]
            for t in self.thresholds
        ]
        return series_to_csv(header, rows)

    def render(self, markdown: bool = False) -> str:
        """Table plus ASCII chart, mirroring the paper's presentation."""
        table = sweep_report(self.rates, self.categories, markdown=markdown)
        chart = ascii_chart(
            self.series(),
            log_y=True,
            title=(
                "Figure 1 — repairs per round per 1000 peers "
                f"(scale={self.scale_name}, log y)"
            ),
            x_label="threshold",
            y_label="rate",
        )
        return f"{table}\n\n{chart}"


def figure1_spec(
    scale: ExperimentScale = DEFAULT,
    paper_thresholds: Sequence[int] = PAPER_THRESHOLDS,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The figure 1 sweep as a declarative spec."""
    seeds = tuple(seeds) or scale.seeds
    base = scale.config()
    thresholds = scale.thresholds(paper_thresholds)

    def reduce(sweep) -> Figure1Result:
        return Figure1Result(
            scale_name=scale.name,
            thresholds=list(thresholds),
            paper_thresholds=list(paper_thresholds),
            rates=axis_rates(sweep, "threshold", "repairs"),
            categories=base.categories.names(),
        )

    return ExperimentSpec(
        name="fig1",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": thresholds},
        seeds=seeds,
        reduce=reduce,
    )


def run_figure1(
    scale: ExperimentScale = DEFAULT,
    paper_thresholds: Sequence[int] = PAPER_THRESHOLDS,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> Figure1Result:
    """Execute the sweep and aggregate repair rates."""
    return run_experiment(
        figure1_spec(scale, paper_thresholds, seeds), executor
    )


def check_shape(result: Figure1Result) -> List[str]:
    """Validate the paper's two qualitative claims; returns violations.

    1. Monotonicity: the overall repair rate grows with the threshold
       (checked end-to-end, not pairwise, to tolerate seed noise).
    2. Stratification: Newcomers repair more than Elder peers at every
       threshold.
    """
    problems: List[str] = []
    overall = [
        sum(self_rates[c].mean for c in result.categories)
        for self_rates in (result.rates[t] for t in result.thresholds)
    ]
    if overall and overall[-1] <= overall[0]:
        problems.append(
            "repair rate did not increase from the lowest to the highest "
            f"threshold ({overall[0]:.4f} -> {overall[-1]:.4f})"
        )
    for threshold in result.thresholds:
        rates = result.rates[threshold]
        newcomers = rates.get("Newcomers")
        elders = rates.get("Elder peers")
        if newcomers and elders and newcomers.mean < elders.mean:
            problems.append(
                f"threshold {threshold}: Newcomers ({newcomers.mean:.4f}) "
                f"repair less than Elders ({elders.mean:.4f})"
            )
    return problems
