"""Ablation A1 — what the age heuristic buys.

Runs the same workload under the four selection strategies (the paper's
age-based rule, the random age-blind baseline, availability-history
ranking and the omniscient oracle) and reports repairs/losses side by
side.  The expected reading: age sits between random and oracle, much
closer to oracle — the cheap public signal captures most of the
unattainable one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.report import format_table
from ..baselines.comparison import StrategyOutcome, strategy_spec
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

STRATEGIES = ("age", "random", "availability", "oracle")


@dataclass
class AblationSelectionResult:
    """Comparison outcome at one scale."""

    scale_name: str
    outcomes: List[StrategyOutcome]

    def by_name(self, name: str) -> StrategyOutcome:
        """Look up one strategy's outcome."""
        for outcome in self.outcomes:
            if outcome.strategy == name:
                return outcome
        raise KeyError(name)

    def render(self, markdown: bool = False) -> str:
        """Strategy table: repairs, losses, observer-free category rates."""
        rows = []
        for outcome in self.outcomes:
            rows.append(
                [
                    outcome.strategy,
                    round(outcome.total_repairs, 1),
                    round(outcome.total_losses, 2),
                    round(outcome.repair_rates.get("Newcomers", 0.0), 4),
                    round(outcome.repair_rates.get("Elder peers", 0.0), 4),
                ]
            )
        table = format_table(
            ["strategy", "repairs", "losses", "newcomer rate", "elder rate"],
            rows,
            markdown=markdown,
        )
        return f"A1 — selection-strategy ablation (scale={self.scale_name})\n{table}"


def ablation_selection_spec(
    scale: ExperimentScale = DEFAULT,
    strategies: Sequence[str] = STRATEGIES,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The A1 comparison as a declarative spec."""
    seeds = tuple(seeds) or scale.seeds
    config = scale.config(paper_threshold=PAPER_FOCUS_THRESHOLD)
    spec = strategy_spec(config, strategies=strategies, seeds=seeds)
    summarise = spec.reduce

    def reduce(sweep) -> AblationSelectionResult:
        return AblationSelectionResult(
            scale_name=scale.name, outcomes=summarise(sweep)
        )

    spec.name = "ablation-selection"
    spec.reduce = reduce
    return spec


def run_ablation_selection(
    scale: ExperimentScale = DEFAULT,
    strategies: Sequence[str] = STRATEGIES,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> AblationSelectionResult:
    """Run the strategy comparison at the focus threshold."""
    return run_experiment(
        ablation_selection_spec(scale, strategies, seeds), executor
    )


def check_shape(result: AblationSelectionResult) -> List[str]:
    """Validate the paper's load-shift claim; returns violations.

    The paper's conclusion is relative, not absolute: the scheme works
    "by moving the load of maintenance from stable peers [...] to
    unstable peers".  The check therefore asserts that the
    newcomer-to-elder repair-rate ratio is *higher* under the age
    mechanism than under the age-blind baseline (the load moved down the
    age ladder), and that the oracle — which knows true remaining
    lifetimes — never repairs more than the random baseline.
    """
    problems: List[str] = []
    try:
        age = result.by_name("age")
        random_outcome = result.by_name("random")
    except KeyError:
        return ["comparison must include 'age' and 'random'"]

    def newcomer_elder_ratio(outcome: StrategyOutcome) -> float:
        elder = outcome.repair_rates.get("Elder peers", 0.0)
        newcomer = outcome.repair_rates.get("Newcomers", 0.0)
        return newcomer / elder if elder > 0 else float("inf")

    age_ratio = newcomer_elder_ratio(age)
    random_ratio = newcomer_elder_ratio(random_outcome)
    if age_ratio <= random_ratio:
        problems.append(
            "the age mechanism did not shift load toward newcomers: "
            f"newcomer/elder ratio {age_ratio:.2f} (age) vs "
            f"{random_ratio:.2f} (random)"
        )
    try:
        oracle = result.by_name("oracle")
    except KeyError:
        oracle = None
    if oracle is not None and oracle.total_repairs > random_outcome.total_repairs:
        problems.append(
            f"oracle repaired more ({oracle.total_repairs:.0f}) than the "
            f"random baseline ({random_outcome.total_repairs:.0f})"
        )
    return problems
