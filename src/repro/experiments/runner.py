"""Command-line entry point: regenerate any figure, table or ablation.

Installed as ``repro-experiments``::

    repro-experiments tables
    repro-experiments fig1 --scale quick
    repro-experiments fig3 --scale default --seeds 0 1 2
    repro-experiments all --scale quick --workers 4

Every simulation cell goes through the sweep executor: ``--workers N``
fans cells out over a process pool, and the on-disk result cache
(``--cache-dir``, default ``.repro-cache``; disable with ``--no-cache``)
makes re-runs only simulate cells whose parameters changed — running
``all`` twice simulates nothing the second time, and figures 1 and 2
share one threshold sweep through the cache.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from ..exec import DEFAULT_CACHE_DIR, ResultCache, SweepExecutor
from . import (
    ablation_adaptive,
    ablation_grace,
    ablation_proactive,
    ablation_quota,
    ablation_selection,
    fig1_repairs_by_threshold,
    fig2_losses_by_threshold,
    fig3_observer_repairs,
    fig4_cumulative_losses,
    tables,
)
from .common import scale_by_name

#: Experiment registry: name -> (runner, has shape check).
_SIMULATION_EXPERIMENTS = {
    "fig1": (fig1_repairs_by_threshold.run_figure1,
             fig1_repairs_by_threshold.check_shape),
    "fig2": (fig2_losses_by_threshold.run_figure2,
             fig2_losses_by_threshold.check_shape),
    "fig3": (fig3_observer_repairs.run_figure3,
             fig3_observer_repairs.check_shape),
    "fig4": (fig4_cumulative_losses.run_figure4,
             fig4_cumulative_losses.check_shape),
    "ablation-selection": (ablation_selection.run_ablation_selection,
                           ablation_selection.check_shape),
    "ablation-quota": (ablation_quota.run_ablation_quota, None),
    "ablation-grace": (ablation_grace.run_ablation_grace, None),
    "ablation-proactive": (ablation_proactive.run_ablation_proactive, None),
    "ablation-adaptive": (ablation_adaptive.run_ablation_adaptive,
                          ablation_adaptive.check_shape),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Optimizing peer-to-peer "
            "backup using lifetime estimations' (Bernard & Le Fessant, 2009)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMULATION_EXPERIMENTS) + ["tables", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale preset: quick, default or full",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: the scale preset's seeds)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables instead of plain text",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the qualitative shape checks",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write <experiment>.csv files into this directory "
        "(figures only)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="simulation cells to run concurrently (process pool; "
        "results are bit-identical to a serial run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="on-disk result cache directory (re-runs only simulate "
        "cells whose parameters changed)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    return parser


def build_executor(args: argparse.Namespace) -> SweepExecutor:
    """The sweep executor implied by the parsed CLI arguments."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepExecutor(workers=args.workers, cache=cache)


def _run_one(
    name: str,
    scale,
    seeds: Optional[Sequence[int]],
    markdown: bool,
    check: bool,
    csv_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> List[str]:
    runner, checker = _SIMULATION_EXPERIMENTS[name]
    result = runner(
        scale=scale,
        seeds=tuple(seeds) if seeds else (),
        executor=executor,
    )
    print(result.render(markdown=markdown))
    if csv_dir is not None and hasattr(result, "to_csv"):
        directory = pathlib.Path(csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name}.csv"
        target.write_text(result.to_csv())
        print(f"(series written to {target})")
    problems: List[str] = []
    if check and checker is not None:
        problems = checker(result)
        if problems:
            print(f"\nshape-check FAILURES for {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"\nshape checks passed for {name}.")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "tables":
        print(tables.render_all(markdown=args.markdown))
        return 0

    scale = scale_by_name(args.scale)
    executor = build_executor(args)
    names = (
        sorted(_SIMULATION_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    failures: List[str] = []
    for name in names:
        print(f"=== {name} (scale={scale.name}) ===")
        failures.extend(
            _run_one(
                name,
                scale,
                args.seeds,
                args.markdown,
                not args.no_check,
                csv_dir=args.csv_dir,
                executor=executor,
            )
        )
        print()
    if args.experiment == "all":
        print(tables.render_all(markdown=args.markdown))
    stats = executor.stats
    print(
        f"[executor] {stats.cells} cells: {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache "
        f"({executor.workers} worker(s), {stats.wall_clock_seconds:.1f}s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
