"""Command-line entry point: figures, tables, ablations and scenarios.

Installed as ``repro-experiments``::

    repro-experiments tables
    repro-experiments fig1 --scale quick
    repro-experiments fig3 --scale default --seeds 0 1 2
    repro-experiments all --scale quick --workers 4
    repro-experiments list
    repro-experiments run --scenario flash_crowd --seeds 0 1 2
    repro-experiments profile --scenario paper --sort tottime

``list`` prints every registered component (scenarios, selection
strategies, acceptance rules, churn mixes, codec backends, lifetime
models, policy presets); ``run --scenario NAME`` executes a registered
scenario preset end to end, with optional ``--population`` /
``--rounds`` overrides; ``profile --scenario NAME`` runs the same
simulation once under :mod:`cProfile` and prints the hottest functions
(the profiling recipe behind the README's Performance section).

Every simulation cell goes through the sweep executor: ``--workers N``
fans cells out over a process pool, and the on-disk result cache
(``--cache-dir``, default ``.repro-cache``; disable with ``--no-cache``)
makes re-runs only simulate cells whose parameters changed — running
``all`` twice simulates nothing the second time, and figures 1 and 2
share one threshold sweep through the cache.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from ..exec import DEFAULT_CACHE_DIR, ResultCache, SweepExecutor
from . import (
    ablation_adaptive,
    ablation_grace,
    ablation_proactive,
    ablation_quota,
    ablation_selection,
    fig1_repairs_by_threshold,
    fig2_losses_by_threshold,
    fig3_observer_repairs,
    fig4_cumulative_losses,
    tables,
)
from .common import scale_by_name

#: Experiment registry: name -> (runner, has shape check).
_SIMULATION_EXPERIMENTS = {
    "fig1": (fig1_repairs_by_threshold.run_figure1,
             fig1_repairs_by_threshold.check_shape),
    "fig2": (fig2_losses_by_threshold.run_figure2,
             fig2_losses_by_threshold.check_shape),
    "fig3": (fig3_observer_repairs.run_figure3,
             fig3_observer_repairs.check_shape),
    "fig4": (fig4_cumulative_losses.run_figure4,
             fig4_cumulative_losses.check_shape),
    "ablation-selection": (ablation_selection.run_ablation_selection,
                           ablation_selection.check_shape),
    "ablation-quota": (ablation_quota.run_ablation_quota, None),
    "ablation-grace": (ablation_grace.run_ablation_grace, None),
    "ablation-proactive": (ablation_proactive.run_ablation_proactive, None),
    "ablation-adaptive": (ablation_adaptive.run_ablation_adaptive,
                          ablation_adaptive.check_shape),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Optimizing peer-to-peer "
            "backup using lifetime estimations' (Bernard & Le Fessant, 2009)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMULATION_EXPERIMENTS)
        + ["tables", "all", "list", "run", "profile"],
        help="which artifact to regenerate, 'list' for registered "
        "components, 'run' for a scenario preset, or 'profile' to "
        "cProfile one scenario simulation",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="scenario preset for the 'run' and 'profile' commands "
        "(see 'repro-experiments list')",
    )
    parser.add_argument(
        "--population",
        type=_positive_int,
        default=None,
        help="override the scenario's peer population "
        "('run' and 'profile' only)",
    )
    parser.add_argument(
        "--rounds",
        type=_positive_int,
        default=None,
        help="override the scenario's simulated rounds "
        "('run' and 'profile' only)",
    )
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default=None,
        help="profile sort order ('profile' only; default: cumulative)",
    )
    parser.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="number of profile rows to print ('profile' only; default: 25)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale preset: quick, default or full",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: the scale preset's seeds)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables instead of plain text",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the qualitative shape checks",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write <experiment>.csv files into this directory "
        "(figures only)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="simulation cells to run concurrently (process pool; "
        "results are bit-identical to a serial run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="on-disk result cache directory (re-runs only simulate "
        "cells whose parameters changed)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    return parser


def build_executor(args: argparse.Namespace) -> SweepExecutor:
    """The sweep executor implied by the parsed CLI arguments."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepExecutor(workers=args.workers, cache=cache)


def render_component_list() -> str:
    """Every registered component, one section per registry."""
    from ..churn.lifetimes import LIFETIME_MODELS
    from ..churn.profiles import CHURN_MIXES
    from ..core.acceptance import ACCEPTANCE_RULES
    from ..core.policy import POLICY_PRESETS
    from ..core.selection import SELECTION_STRATEGIES
    from ..erasure.matrix import CODEC_BACKENDS, DEFAULT_BACKEND
    from ..scenarios import SCENARIOS

    lines: List[str] = []

    lines.append("scenarios:")
    for name, scenario in SCENARIOS.items():
        suffix = f" — {scenario.description}" if scenario.description else ""
        lines.append(f"  {name}{suffix}")

    lines.append("selection strategies:")
    lines.extend(f"  {name}" for name in SELECTION_STRATEGIES.names())

    lines.append("acceptance rules:")
    lines.extend(f"  {name}" for name in ACCEPTANCE_RULES.names())

    lines.append("churn mixes:")
    for name, profiles in CHURN_MIXES.items():
        members = "+".join(profile.name for profile in profiles)
        lines.append(f"  {name} ({members})")

    lines.append("codec backends:")
    for name in CODEC_BACKENDS.names():
        marker = " (default)" if name == DEFAULT_BACKEND else ""
        lines.append(f"  {name}{marker}")

    lines.append("lifetime models:")
    lines.extend(f"  {name}" for name in LIFETIME_MODELS.names())

    lines.append("repair-policy presets:")
    for name, preset in POLICY_PRESETS.items():
        policy = preset()
        lines.append(f"  {name} (k={policy.k}, n={policy.n}, k'={policy.repair_threshold})")

    return "\n".join(lines)


def _run_scenario(args: argparse.Namespace) -> int:
    """The ``run --scenario NAME`` command: one preset, end to end."""
    scenario = _resolve_scenario(args, "run")
    if scenario is None:
        return 2
    print(scenario.describe())

    executor = build_executor(args)
    seeds = tuple(args.seeds) if args.seeds else (scenario.build().seed or 0,)
    sweep = executor.run(scenario.spec(seeds=seeds))

    count = len(sweep.results)
    repairs = sum(r.metrics.total_repairs for r in sweep.results) / count
    losses = sum(r.metrics.total_losses for r in sweep.results) / count
    deaths = sum(r.deaths for r in sweep.results) / count
    peers = sum(r.peers_created for r in sweep.results) / count
    print(f"\nmeans over {count} seed(s): "
          f"repairs={repairs:.1f} losses={losses:.2f} "
          f"peers_created={peers:.0f} deaths={deaths:.0f}")
    for name in sorted(sweep.results[0].repair_rates()):
        rate = sum(r.repair_rates()[name] for r in sweep.results) / count
        loss = sum(r.loss_rates()[name] for r in sweep.results) / count
        print(f"  {name}: repairs/round/1000 = {rate:.4f}, "
              f"losses/round/1000 = {loss:.4f}")
    observer_totals = sweep.results[0].observer_totals()
    if observer_totals:
        print("observer repairs:")
        # Sorted so the output is identical whether results come from a
        # fresh simulation or the canonical-JSON cache.
        for name in sorted(observer_totals):
            mean = sum(r.observer_totals().get(name, 0) for r in sweep.results) / count
            print(f"  {name}: {mean:.1f}")
    stats = executor.stats
    print(
        f"[executor] {stats.cells} cells: {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache "
        f"({executor.workers} worker(s), {stats.wall_clock_seconds:.1f}s)"
    )
    return 0


def _scenario_names() -> List[str]:
    from ..scenarios import SCENARIOS

    return SCENARIOS.names()


def _resolve_scenario(args: argparse.Namespace, command: str):
    """The scenario named on the CLI with population/rounds overrides.

    Prints the registered choices and returns ``None`` when no
    ``--scenario`` was given (the caller exits with code 2).
    """
    from ..scenarios import scenario_by_name

    if args.scenario is None:
        print(
            f"{command} requires --scenario NAME; registered scenarios:\n"
            + "\n".join(f"  {name}" for name in _scenario_names()),
        )
        return None
    scenario = scenario_by_name(args.scenario)
    if args.population is not None:
        scenario = scenario.with_population(args.population)
    if args.rounds is not None:
        scenario = scenario.with_rounds(args.rounds)
    return scenario


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile --scenario NAME`` command: cProfile one simulation.

    The run goes straight through :class:`~repro.sim.engine.Simulation`
    — no executor, no cache — so the profile shows nothing but the
    engine hot loop.
    """
    import cProfile
    import pstats

    from ..sim.engine import Simulation

    scenario = _resolve_scenario(args, "profile")
    if scenario is None:
        return 2
    print(scenario.describe())
    config = scenario.build()
    simulation = Simulation(config)
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulation.run()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort or "cumulative")
    stats.print_stats(args.limit or 25)
    print(
        f"[profile] {config.population} peers x {config.rounds} rounds: "
        f"{result.wall_clock_seconds:.2f}s wall, "
        f"{result.metrics.total_repairs} repairs, "
        f"{result.deaths} deaths"
    )
    return 0


def _run_one(
    name: str,
    scale,
    seeds: Optional[Sequence[int]],
    markdown: bool,
    check: bool,
    csv_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> List[str]:
    runner, checker = _SIMULATION_EXPERIMENTS[name]
    result = runner(
        scale=scale,
        seeds=tuple(seeds) if seeds else (),
        executor=executor,
    )
    print(result.render(markdown=markdown))
    if csv_dir is not None and hasattr(result, "to_csv"):
        directory = pathlib.Path(csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name}.csv"
        target.write_text(result.to_csv())
        print(f"(series written to {target})")
    problems: List[str] = []
    if check and checker is not None:
        problems = checker(result)
        if problems:
            print(f"\nshape-check FAILURES for {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"\nshape checks passed for {name}.")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment not in ("run", "profile") and (
        args.scenario is not None
        or args.population is not None
        or args.rounds is not None
    ):
        parser.error(
            "--scenario/--population/--rounds apply only to the "
            "'run' and 'profile' commands"
        )
    if args.experiment != "profile" and (
        args.sort is not None or args.limit is not None
    ):
        parser.error("--sort/--limit apply only to the 'profile' command")

    if args.experiment == "tables":
        print(tables.render_all(markdown=args.markdown))
        return 0
    if args.experiment == "list":
        print(render_component_list())
        return 0
    if args.experiment == "run":
        return _run_scenario(args)
    if args.experiment == "profile":
        return _run_profile(args)

    scale = scale_by_name(args.scale)
    executor = build_executor(args)
    names = (
        sorted(_SIMULATION_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    failures: List[str] = []
    for name in names:
        print(f"=== {name} (scale={scale.name}) ===")
        failures.extend(
            _run_one(
                name,
                scale,
                args.seeds,
                args.markdown,
                not args.no_check,
                csv_dir=args.csv_dir,
                executor=executor,
            )
        )
        print()
    if args.experiment == "all":
        print(tables.render_all(markdown=args.markdown))
    stats = executor.stats
    print(
        f"[executor] {stats.cells} cells: {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache "
        f"({executor.workers} worker(s), {stats.wall_clock_seconds:.1f}s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
