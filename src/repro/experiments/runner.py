"""Command-line entry point: figures, tables, ablations and scenarios.

Installed as ``repro-experiments``::

    repro-experiments tables
    repro-experiments fig1 --scale quick
    repro-experiments fig3 --scale default --seeds 0 1 2
    repro-experiments all --scale quick --workers 4
    repro-experiments list
    repro-experiments run --scenario flash_crowd --seeds 0 1 2
    repro-experiments profile --scenario paper --sort tottime
    repro-experiments all --backend distributed --cache-dir /mnt/sweep-cache
    repro-experiments worker --scale full --cache-dir /mnt/sweep-cache

Every command is an argparse subcommand with its own ``--help`` and a
copy-pasteable example; ``repro-experiments --help`` lists them all.

Every simulation cell goes through the sweep executor
(:mod:`repro.exec`).  ``--workers N`` fans cells out over a process
pool on this host; ``--backend distributed`` shards them across any
number of worker processes — this one plus every ``repro-experiments
worker`` pointed at the same ``--cache-dir`` (a shared mount for
multi-host runs).  The on-disk result cache (``--cache-dir``, default
``.repro-cache``; disable with ``--no-cache``) makes re-runs only
simulate cells whose parameters changed — running ``all`` twice
simulates nothing the second time, figures 1 and 2 share one threshold
sweep, and a killed run resumes from every cell it finished.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from ..exec import (
    DEFAULT_CACHE_DIR,
    DEFAULT_LEASE_TTL,
    EXECUTION_BACKENDS,
    ResultCache,
    SweepExecutor,
    default_worker_id,
)
from . import (
    ablation_adaptive,
    ablation_grace,
    ablation_proactive,
    ablation_quota,
    ablation_selection,
    fidelity_compare,
    fig_impairment,
    fig1_repairs_by_threshold,
    fig2_losses_by_threshold,
    fig3_observer_repairs,
    fig4_cumulative_losses,
    tables,
)
from .common import scale_by_name

#: Experiment registry: name -> (runner, has shape check).
_SIMULATION_EXPERIMENTS = {
    "fig1": (fig1_repairs_by_threshold.run_figure1,
             fig1_repairs_by_threshold.check_shape),
    "fig2": (fig2_losses_by_threshold.run_figure2,
             fig2_losses_by_threshold.check_shape),
    "fig3": (fig3_observer_repairs.run_figure3,
             fig3_observer_repairs.check_shape),
    "fig4": (fig4_cumulative_losses.run_figure4,
             fig4_cumulative_losses.check_shape),
    "ablation-selection": (ablation_selection.run_ablation_selection,
                           ablation_selection.check_shape),
    "ablation-quota": (ablation_quota.run_ablation_quota, None),
    "ablation-grace": (ablation_grace.run_ablation_grace, None),
    "ablation-proactive": (ablation_proactive.run_ablation_proactive, None),
    "ablation-adaptive": (ablation_adaptive.run_ablation_adaptive,
                          ablation_adaptive.check_shape),
    "fig-fidelity": (fidelity_compare.run_fidelity_compare,
                     fidelity_compare.check_shape),
    "fig-impairment": (fig_impairment.run_fig_impairment,
                       fig_impairment.check_shape),
}

#: Spec builders for the ``worker`` command: name -> (scale, seeds) -> spec.
#: Workers enumerate cells from the spec alone — no artifact rendering.
_SPEC_BUILDERS = {
    "fig1": fig1_repairs_by_threshold.figure1_spec,
    "fig2": fig2_losses_by_threshold.figure2_spec,
    "fig3": fig3_observer_repairs.figure3_spec,
    "fig4": fig4_cumulative_losses.figure4_spec,
    "ablation-selection": ablation_selection.ablation_selection_spec,
    "ablation-quota": ablation_quota.ablation_quota_spec,
    "ablation-grace": ablation_grace.ablation_grace_spec,
    "ablation-proactive": ablation_proactive.ablation_proactive_spec,
    "ablation-adaptive": ablation_adaptive.ablation_adaptive_spec,
    "fig-fidelity": fidelity_compare.fidelity_compare_spec,
    "fig-impairment": fig_impairment.fig_impairment_spec,
}

_EXPERIMENT_HELP = {
    "fig1": "figure 1 — repair rate vs repair threshold, per age category",
    "fig2": "figure 2 — loss rate vs repair threshold, per age category",
    "fig3": "figure 3 — repairs seen by the five fixed-age observers",
    "fig4": "figure 4 — cumulative losses over time",
    "ablation-selection": "A1 — partner-selection strategy comparison",
    "ablation-quota": "A2 — hosting-quota sweep",
    "ablation-grace": "A3 — grace-period sweep",
    "ablation-proactive": "A4 — reactive vs proactive repair",
    "ablation-adaptive": "A5 — static vs adaptive thresholds",
    "fig-fidelity": "abstract vs protocol fidelity: loss/repair curves "
                    "from one spec on the paper workload",
    "fig-impairment": "protocol fidelity across the netem loss x delay "
                      "matrix: durability and repair latency per "
                      "impairment profile",
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}"
        )
    return value


def _executor_flags(parser: argparse.ArgumentParser) -> None:
    """The sweep-executor knobs shared by every simulating command."""
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="simulation cells to run concurrently in a local process "
        "pool (results are bit-identical to a serial run; default: 1)",
    )
    group.add_argument(
        "--backend",
        choices=EXECUTION_BACKENDS.names(),
        default=None,
        help="execution backend (default: 'process' when --workers > 1, "
        "else 'serial'; 'distributed' shards cells across every worker "
        "sharing --cache-dir, including 'repro-experiments worker' "
        "processes on other hosts)",
    )
    group.add_argument(
        "--worker-id",
        default=None,
        help="this worker's identity in distributed lease files "
        "(default: <hostname>-<pid>)",
    )
    group.add_argument(
        "--lease-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat before a distributed worker's "
        f"cell lease is reclaimed (default: {DEFAULT_LEASE_TTL:g})",
    )
    group.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="on-disk result cache directory; point every distributed "
        "worker at one shared mount (default: %(default)s)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (incompatible with "
        "--backend distributed)",
    )


def _sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the figure/ablation/'all' sweep commands."""
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale preset: quick (seconds), default "
        "(minutes) or full (the paper's exact parameterisation)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: the scale preset's seeds)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables instead of plain text",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the qualitative shape checks",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write <experiment>.csv series files into this "
        "directory (figures only)",
    )


def _scenario_flags(parser: argparse.ArgumentParser) -> None:
    """Flags selecting and resizing a registered scenario preset."""
    parser.add_argument(
        "--scenario",
        default=None,
        help="registered scenario preset (see 'repro-experiments list')",
    )
    parser.add_argument(
        "--population",
        type=_positive_int,
        default=None,
        help="override the scenario's peer population",
    )
    parser.add_argument(
        "--rounds",
        type=_positive_int,
        default=None,
        help="override the scenario's simulated rounds",
    )
    parser.add_argument(
        "--fidelity",
        default=None,
        help="override the scenario's simulation backend: 'abstract' "
        "(counters, the figures' fast path) or 'protocol' (real "
        "store/fetch exchanges gated by the bandwidth model); see "
        "'repro-experiments list'",
    )
    parser.add_argument(
        "--impairment",
        default=None,
        help="apply a netem-style link condition to protocol-mode "
        "exchanges (registered impairment profile, e.g. 'loss10' or "
        "'loss30_delay50ms_jitter5ms'); see 'repro-experiments list'",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Optimizing peer-to-peer "
            "backup using lifetime estimations' (Bernard & Le Fessant, "
            "2009), run scenario presets, profile the engine, and shard "
            "sweeps across local or distributed workers."
        ),
        epilog=(
            "run 'repro-experiments <command> --help' for each command's "
            "flags and a copy-pasteable example"
        ),
    )
    commands = parser.add_subparsers(
        dest="experiment",
        metavar="command",
        required=True,
    )

    def command(name, help_text, example, **kwargs):
        sub = commands.add_parser(
            name,
            help=help_text,
            description=help_text,
            epilog=f"example:\n  {example}",
            formatter_class=argparse.RawDescriptionHelpFormatter,
            **kwargs,
        )
        return sub

    for name in sorted(_SIMULATION_EXPERIMENTS):
        sub = command(
            name,
            f"regenerate {_EXPERIMENT_HELP[name]}",
            f"repro-experiments {name} --scale quick --seeds 0 1 2",
        )
        _sweep_flags(sub)
        _executor_flags(sub)

    sub = command(
        "all",
        "regenerate every figure, ablation and table in one cached sweep",
        "repro-experiments all --scale full --workers 8",
    )
    _sweep_flags(sub)
    _executor_flags(sub)

    sub = command(
        "tables",
        "print tables T1-T4 and the cost analysis (no simulation)",
        "repro-experiments tables --markdown",
    )
    sub.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables instead of plain text",
    )

    command(
        "list",
        "list every registered component: scenarios, selection "
        "strategies, acceptance rules, churn mixes, codec backends, "
        "lifetime models, policy presets",
        "repro-experiments list",
    )

    sub = command(
        "lint",
        "run replint, the AST-based invariant linter, over src/repro "
        "(rng discipline, digest stability, registry discipline, "
        "ordered iteration, event-time hygiene); exits non-zero on any "
        "finding",
        "repro-experiments lint --format json",
    )
    from ..lint.cli import add_lint_arguments

    add_lint_arguments(sub)

    sub = command(
        "run",
        "run one registered scenario preset end to end and report its "
        "repair/loss rates",
        "repro-experiments run --scenario flash_crowd --seeds 0 1 2",
    )
    _scenario_flags(sub)
    sub.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: the scenario's own seed)",
    )
    _executor_flags(sub)

    sub = command(
        "profile",
        "cProfile one scenario simulation and print the hottest "
        "functions (no executor, no cache: pure engine hot loop)",
        "repro-experiments profile --scenario paper --scale default "
        "--fidelity abstract_soa --mem",
    )
    _scenario_flags(sub)
    sub.add_argument(
        "--scale",
        default=None,
        help="resize the scenario to an experiment scale preset "
        "(quick, default or full) before any --population/--rounds "
        "override",
    )
    sub.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default=None,
        help="profile sort order (default: cumulative)",
    )
    sub.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="number of profile rows to print (default: 25)",
    )
    sub.add_argument(
        "--mem",
        action="store_true",
        help="also trace memory: tracemalloc peak (Python allocations) "
        "and the process's peak RSS alongside the profile table",
    )

    sub = command(
        "worker",
        "drain sweep cells from a shared cache directory: claim unowned "
        "cells via lease files, simulate them, publish the results; "
        "run any number of these (across hosts) next to "
        "'all --backend distributed'",
        "repro-experiments worker --scale full --cache-dir /mnt/sweep-cache "
        "--worker-id $(hostname)",
    )
    sub.add_argument(
        "--scale",
        default="default",
        help="experiment scale preset the coordinating sweep uses: "
        "quick, default or full",
    )
    sub.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (must match the coordinating sweep; "
        "default: the scale preset's seeds)",
    )
    sub.add_argument(
        "--experiments",
        nargs="+",
        choices=sorted(_SIMULATION_EXPERIMENTS),
        default=None,
        metavar="NAME",
        help="experiments whose cells to drain (default: all of them)",
    )
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="shared result-cache directory — the same path (mount) "
        "every participating worker uses (default: %(default)s)",
    )
    sub.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="cells this worker claims and simulates concurrently on "
        "a local process pool (default: 1)",
    )
    sub.add_argument(
        "--worker-id",
        default=None,
        help="this worker's identity in lease files "
        "(default: <hostname>-<pid>)",
    )
    sub.add_argument(
        "--lease-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat before another worker's cell "
        f"lease is reclaimed (default: {DEFAULT_LEASE_TTL:g})",
    )

    sub = command(
        "serve",
        "run the sweep service: a long-lived HTTP/JSON job API where "
        "concurrent clients submit scenario sweeps, a standing worker "
        "fleet drains the cells through the distributed substrate, and "
        "results stream back from the shared cache (instant on digest "
        "hit); ops endpoints /metrics and /queue export queue depth, "
        "lease ages, cache hit ratio and sustained requests/s as "
        "structured JSON events",
        "repro-experiments serve --port 8765 --service-workers 2 "
        "--cache-dir .repro-cache",
    )
    sub.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: %(default)s)",
    )
    sub.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port to bind; 0 picks an ephemeral port "
        "(default: %(default)s)",
    )
    sub.add_argument(
        "--service-workers",
        type=_positive_int,
        default=1,
        help="standing worker threads draining submitted jobs "
        "(default: %(default)s)",
    )
    sub.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="shared result-cache directory; job records persist under "
        "it, so restarting against the same directory recovers every "
        "accepted job (default: %(default)s)",
    )
    sub.add_argument(
        "--lease-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat before a job or cell lease "
        f"is stolen (default: {DEFAULT_LEASE_TTL:g})",
    )
    sub.add_argument(
        "--quota-capacity",
        type=_positive_float,
        default=None,
        metavar="TOKENS",
        help="per-client token-bucket burst size; an empty bucket "
        "yields HTTP 429 with Retry-After (default: 16)",
    )
    sub.add_argument(
        "--quota-refill",
        type=_positive_float,
        default=None,
        metavar="TOKENS_PER_SECOND",
        help="per-client token refill rate (default: 4/s)",
    )

    sub = command(
        "submit",
        "submit one scenario sweep to a running sweep service and "
        "(by default) wait for its results",
        "repro-experiments submit --scenario paper --scale quick "
        "--url http://127.0.0.1:8765",
    )
    _scenario_flags(sub)
    sub.add_argument(
        "--scale",
        default=None,
        help="resize the scenario to an experiment scale preset "
        "(quick, default or full) before any --population/--rounds "
        "override",
    )
    sub.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: seed 0)",
    )
    sub.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="sweep service base URL (default: %(default)s)",
    )
    sub.add_argument(
        "--client-id",
        default=None,
        help="client identity for quota accounting "
        "(default: this host's address as seen by the server)",
    )
    sub.add_argument(
        "--no-wait",
        action="store_true",
        help="return immediately after submission instead of polling "
        "for the results",
    )
    sub.add_argument(
        "--timeout",
        type=_positive_float,
        default=600.0,
        metavar="SECONDS",
        help="seconds to wait for completion (default: %(default)s)",
    )

    return parser


def build_executor(args: argparse.Namespace) -> SweepExecutor:
    """The sweep executor implied by the parsed CLI arguments."""
    no_cache = getattr(args, "no_cache", False)
    if getattr(args, "backend", None) == "distributed" and no_cache:
        raise SystemExit(
            "repro-experiments: error: --backend distributed publishes "
            "results through the shared cache; drop --no-cache and point "
            "--cache-dir at a directory every worker shares"
        )
    cache = None if no_cache else ResultCache(args.cache_dir)
    return SweepExecutor(
        workers=getattr(args, "workers", 1),
        cache=cache,
        backend=getattr(args, "backend", None),
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
    )


def render_component_list() -> str:
    """Every registered component, one section per registry."""
    from ..churn.lifetimes import LIFETIME_MODELS
    from ..churn.profiles import CHURN_MIXES
    from ..core.acceptance import ACCEPTANCE_RULES
    from ..core.policy import POLICY_PRESETS
    from ..core.selection import SELECTION_STRATEGIES
    from ..erasure.matrix import CODEC_BACKENDS, DEFAULT_BACKEND
    from ..net.bandwidth import KILOBYTE, LINK_PROFILES
    from ..net.impairment import IMPAIRMENT_PROFILES
    from ..scenarios import SCENARIOS
    from ..sim.fidelity import FIDELITY_BACKENDS, available_fidelities

    available_fidelities()  # force built-in backend registration

    lines: List[str] = []

    lines.append("scenarios:")
    for name, scenario in SCENARIOS.items():
        suffix = f" — {scenario.description}" if scenario.description else ""
        lines.append(f"  {name}{suffix}")

    lines.append("selection strategies:")
    lines.extend(f"  {name}" for name in SELECTION_STRATEGIES.names())

    lines.append("acceptance rules:")
    lines.extend(f"  {name}" for name in ACCEPTANCE_RULES.names())

    lines.append("churn mixes:")
    for name, profiles in CHURN_MIXES.items():
        members = "+".join(profile.name for profile in profiles)
        lines.append(f"  {name} ({members})")

    lines.append("codec backends:")
    for name in CODEC_BACKENDS.names():
        marker = " (default)" if name == DEFAULT_BACKEND else ""
        lines.append(f"  {name}{marker}")

    lines.append("execution backends:")
    lines.extend(f"  {name}" for name in EXECUTION_BACKENDS.names())

    lines.append("fidelity backends:")
    for name in FIDELITY_BACKENDS.names():
        marker = " (default)" if name == "abstract" else ""
        lines.append(f"  {name}{marker}")

    lines.append("link profiles:")
    for name, link in LINK_PROFILES.items():
        lines.append(
            f"  {name} ({link.download_bps // KILOBYTE} kB/s down, "
            f"{link.upload_bps // KILOBYTE} kB/s up)"
        )

    lines.append("impairment profiles:")
    for name, profile in IMPAIRMENT_PROFILES.items():
        traits: List[str] = []
        if profile.loss_probability:
            traits.append(f"loss {profile.loss_probability:.0%}")
        if profile.delay_seconds:
            delay = f"delay {profile.delay_seconds * 1000:g}ms"
            if profile.jitter_seconds:
                delay += f" ±{profile.jitter_seconds * 1000:g}ms"
            traits.append(delay)
        if profile.bursty:
            traits.append(
                f"bursts to {profile.burst_loss_probability:.0%} loss"
            )
        summary = ", ".join(traits) if traits else "no impairment"
        lines.append(f"  {name} ({summary})")

    lines.append("lifetime models:")
    lines.extend(f"  {name}" for name in LIFETIME_MODELS.names())

    lines.append("repair-policy presets:")
    for name, preset in POLICY_PRESETS.items():
        policy = preset()
        lines.append(f"  {name} (k={policy.k}, n={policy.n}, k'={policy.repair_threshold})")

    return "\n".join(lines)


def _run_scenario(args: argparse.Namespace) -> int:
    """The ``run --scenario NAME`` command: one preset, end to end."""
    scenario = _resolve_scenario(args, "run")
    if scenario is None:
        return 2
    print(scenario.describe())

    executor = build_executor(args)
    seeds = tuple(args.seeds) if args.seeds else (scenario.build().seed or 0,)
    sweep = executor.run(scenario.spec(seeds=seeds))

    count = len(sweep.results)
    repairs = sum(r.metrics.total_repairs for r in sweep.results) / count
    losses = sum(r.metrics.total_losses for r in sweep.results) / count
    deaths = sum(r.deaths for r in sweep.results) / count
    peers = sum(r.peers_created for r in sweep.results) / count
    print(f"\nmeans over {count} seed(s): "
          f"repairs={repairs:.1f} losses={losses:.2f} "
          f"peers_created={peers:.0f} deaths={deaths:.0f}")
    for name in sorted(sweep.results[0].repair_rates()):
        rate = sum(r.repair_rates()[name] for r in sweep.results) / count
        loss = sum(r.loss_rates()[name] for r in sweep.results) / count
        print(f"  {name}: repairs/round/1000 = {rate:.4f}, "
              f"losses/round/1000 = {loss:.4f}")
    observer_totals = sweep.results[0].observer_totals()
    if observer_totals:
        print("observer repairs:")
        # Sorted so the output is identical whether results come from a
        # fresh simulation or the canonical-JSON cache.
        for name in sorted(observer_totals):
            mean = sum(r.observer_totals().get(name, 0) for r in sweep.results) / count
            print(f"  {name}: {mean:.1f}")
    _print_executor_summary(executor)
    return 0


def _scenario_names() -> List[str]:
    from ..scenarios import SCENARIOS

    return SCENARIOS.names()


def _resolve_scenario(args: argparse.Namespace, command: str):
    """The scenario named on the CLI with population/rounds overrides.

    Prints the registered choices and returns ``None`` when no
    ``--scenario`` was given (the caller exits with code 2).
    """
    from ..scenarios import scenario_by_name

    if args.scenario is None:
        print(
            f"{command} requires --scenario NAME; registered scenarios:\n"
            + "\n".join(f"  {name}" for name in _scenario_names()),
        )
        return None
    scenario = scenario_by_name(args.scenario)
    if getattr(args, "scale", None) is not None:
        # Coarse resize first; explicit --population/--rounds still win.
        scale = scale_by_name(args.scale)
        scenario = scenario.with_population(scale.population).with_rounds(
            scale.rounds
        )
    if args.population is not None:
        scenario = scenario.with_population(args.population)
    if args.rounds is not None:
        scenario = scenario.with_rounds(args.rounds)
    if getattr(args, "fidelity", None) is not None:
        scenario = scenario.with_fidelity(args.fidelity)
    if getattr(args, "impairment", None) is not None:
        scenario = scenario.with_impairment(args.impairment)
    return scenario


#: Event-dispatch handlers per backend, mapped to the event kind they
#: execute.  Handlers that wrap one another (the object-graph engine's
#: JOIN dispatch calls the spawn helper the soa engine dispatches to
#: directly) share a kind; the breakdown takes the largest cumulative
#: time per kind, so a wrapper and its callee are never double-counted.
_KIND_HANDLERS = {
    "_process_toggle_batch": "toggle",
    "_handle_check": "check",
    "_handle_join": "join",
    "_spawn_peer": "join",
    "_handle_death": "death",
    "_handle_sample": "sample",
    "_handle_top_up": "top-up",
    "_handle_transfer_done": "transfer",
}


def _kind_breakdown(stats) -> List[tuple]:
    """``(kind, seconds, dispatches)`` rows from a profile's handlers.

    Reads the raw ``pstats`` table: each event kind is charged the
    cumulative time of its dispatch handler in ``repro.sim``, which is
    exactly the time the engine's main loop spent inside events of that
    kind (the toggle row is the round-batched kernel, so its dispatch
    count is batches, not individual session flips).
    """
    best = {}
    for (filename, _lineno, funcname), row in stats.stats.items():
        kind = _KIND_HANDLERS.get(funcname)
        if kind is None or "sim" not in pathlib.PurePath(filename).parts:
            continue
        _cc, dispatches, _tottime, cumtime, _callers = row
        if cumtime > best.get(kind, (0.0, 0))[0]:
            best[kind] = (cumtime, dispatches)
    rows = [(kind, seconds, calls) for kind, (seconds, calls) in best.items()]
    rows.sort(key=lambda row: -row[1])
    return rows


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile --scenario NAME`` command: cProfile one simulation.

    The run goes straight through the fidelity registry's engine for the
    scenario — no executor, no cache — so the profile shows nothing but
    the selected backend's hot loop, and the per-event-kind table at the
    bottom answers "where do the rounds actually go" (toggle vs check vs
    transfer share).  ``--mem`` wraps the run in tracemalloc
    (Python-allocation peak; slows the run, so it is opt-in) and reports
    the process's peak RSS next to the profile table.
    """
    import cProfile
    import pstats

    from ..sim.fidelity import simulation_for

    scenario = _resolve_scenario(args, "profile")
    if scenario is None:
        return 2
    print(scenario.describe())
    config = scenario.build()
    simulation = simulation_for(config)
    if args.mem:
        import tracemalloc

        tracemalloc.start()
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulation.run()
    profiler.disable()
    traced_peak = None
    if args.mem:
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort or "cumulative")
    stats.print_stats(args.limit or 25)
    kinds = _kind_breakdown(stats)
    if kinds:
        wall = result.wall_clock_seconds
        print("[profile] per-event-kind share (handler cumulative time):")
        for kind, seconds, dispatches in kinds:
            share = 100.0 * seconds / wall if wall else 0.0
            print(
                f"  {kind:<9} {seconds:8.3f}s  {share:5.1f}% of wall"
                f"  ({dispatches} dispatches)"
            )
        remainder = wall - sum(seconds for _, seconds, _ in kinds)
        if wall:
            print(
                f"  {'(loop)':<9} {max(remainder, 0.0):8.3f}s "
                f" {100.0 * max(remainder, 0.0) / wall:5.1f}% of wall"
                "  (queue drain, scheduling, bookkeeping)"
            )
    print(
        f"[profile] {config.population} peers x {config.rounds} rounds "
        f"(fidelity={config.fidelity}): "
        f"{result.wall_clock_seconds:.2f}s wall, "
        f"{result.metrics.total_repairs} repairs, "
        f"{result.deaths} deaths"
    )
    if args.mem:
        print(
            f"[profile] memory: tracemalloc peak "
            f"{traced_peak / 2**20:.1f} MiB, peak RSS {_peak_rss_mib():.1f} MiB"
        )
    return 0


def _peak_rss_mib() -> float:
    """The process's lifetime peak resident set size in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return peak / 2**20
    return peak / 2**10


def _run_worker(args: argparse.Namespace) -> int:
    """The ``worker`` command: drain distributed cells, publish, exit.

    The worker rebuilds the same specs the coordinating sweep runs
    (same scale, same seeds), then executes them through the
    ``distributed`` backend: cells already published are skipped, free
    cells are leased and simulated, and cells being computed elsewhere
    are left alone unless their lease expires.  The worker exits once
    every cell of its spec list has a published result, so it is safe
    to start workers before, alongside or after the coordinator.
    """
    scale = scale_by_name(args.scale)
    names = args.experiments or sorted(_SIMULATION_EXPERIMENTS)
    seeds = tuple(args.seeds) if args.seeds else ()
    worker_id = args.worker_id or default_worker_id()
    executor = SweepExecutor(
        workers=args.workers,
        cache=ResultCache(args.cache_dir),
        backend="distributed",
        worker_id=worker_id,
        lease_ttl=args.lease_ttl,
    )
    for name in names:
        spec = _SPEC_BUILDERS[name](scale=scale, seeds=seeds)
        print(f"[worker {worker_id}] {name}: {spec.cell_count} cells")
        sweep = executor.run(spec)
        print(
            f"[worker {worker_id}] {name} drained: "
            f"{sweep.stats.simulated} simulated, "
            f"{sweep.stats.cache_hits} already published"
        )
    _print_executor_summary(executor)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: run the sweep service until interrupted."""
    from ..service.server import (
        DEFAULT_QUOTA_CAPACITY,
        DEFAULT_QUOTA_REFILL,
        serve,
    )

    return serve(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.service_workers,
        lease_ttl=args.lease_ttl,
        quota_capacity=args.quota_capacity or DEFAULT_QUOTA_CAPACITY,
        quota_refill=args.quota_refill or DEFAULT_QUOTA_REFILL,
    )


def _run_submit(args: argparse.Namespace) -> int:
    """The ``submit`` command: one sweep through a running service."""
    from ..scenarios.wire import SpecValidationError
    from ..service.client import (
        JobFailedError,
        QuotaExceededError,
        ServiceClient,
        ServiceError,
    )
    from ..sim.engine import SimulationResult

    if args.scenario is None:
        print(
            "submit requires --scenario NAME; registered scenarios:\n"
            + "\n".join(f"  {name}" for name in _scenario_names()),
        )
        return 2
    payload = {"scenario": args.scenario}
    for field, value in (
        ("scale", args.scale),
        ("population", args.population),
        ("rounds", args.rounds),
        ("fidelity", args.fidelity),
        ("impairment", args.impairment),
    ):
        if value is not None:
            payload[field] = value
    if args.seeds:
        payload["seeds"] = list(args.seeds)

    client = ServiceClient(args.url, client_id=args.client_id)
    try:
        if args.no_wait:
            record = client.submit(payload)
        else:
            record = client.submit_and_wait(payload, timeout=args.timeout)
    except (SpecValidationError, QuotaExceededError, JobFailedError,
            ServiceError, TimeoutError, OSError) as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 1
    print(
        f"[submit] job {record['job_id'][:16]}… state={record['state']} "
        f"cells={len(record['digests'])} via {args.url}"
    )
    if args.no_wait or record["state"] != "done":
        return 0
    results = [
        SimulationResult.from_dict(payload)
        for payload in client.result(record["job_id"])
    ]
    count = len(results)
    repairs = sum(r.metrics.total_repairs for r in results) / count
    losses = sum(r.metrics.total_losses for r in results) / count
    print(
        f"means over {count} seed(s): repairs={repairs:.1f} "
        f"losses={losses:.2f}"
    )
    return 0


def _print_executor_summary(executor: SweepExecutor) -> None:
    stats = executor.stats
    print(
        f"[executor] {stats.cells} cells: {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache "
        f"({executor.workers} worker(s), {stats.wall_clock_seconds:.1f}s)"
    )


def _run_one(
    name: str,
    scale,
    seeds: Optional[Sequence[int]],
    markdown: bool,
    check: bool,
    csv_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> List[str]:
    runner, checker = _SIMULATION_EXPERIMENTS[name]
    result = runner(
        scale=scale,
        seeds=tuple(seeds) if seeds else (),
        executor=executor,
    )
    print(result.render(markdown=markdown))
    if csv_dir is not None and hasattr(result, "to_csv"):
        directory = pathlib.Path(csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name}.csv"
        target.write_text(result.to_csv())
        print(f"(series written to {target})")
    problems: List[str] = []
    if check and checker is not None:
        problems = checker(result)
        if problems:
            print(f"\nshape-check FAILURES for {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"\nshape checks passed for {name}.")
    return problems


def _run_sweeps(args: argparse.Namespace) -> int:
    """The figure/ablation/'all' commands: cached sweeps plus reports."""
    scale = scale_by_name(args.scale)
    executor = build_executor(args)
    names = (
        sorted(_SIMULATION_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    failures: List[str] = []
    for name in names:
        print(f"=== {name} (scale={scale.name}) ===")
        failures.extend(
            _run_one(
                name,
                scale,
                args.seeds,
                args.markdown,
                not args.no_check,
                csv_dir=args.csv_dir,
                executor=executor,
            )
        )
        print()
    if args.experiment == "all":
        print(tables.render_all(markdown=args.markdown))
    _print_executor_summary(executor)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "tables":
        print(tables.render_all(markdown=args.markdown))
        return 0
    if args.experiment == "list":
        print(render_component_list())
        return 0
    if args.experiment == "lint":
        from ..lint.cli import run_from_args

        return run_from_args(args)
    if args.experiment == "run":
        return _run_scenario(args)
    if args.experiment == "profile":
        return _run_profile(args)
    if args.experiment == "worker":
        return _run_worker(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "submit":
        return _run_submit(args)
    return _run_sweeps(args)


if __name__ == "__main__":
    sys.exit(main())
