"""Command-line entry point: regenerate any figure, table or ablation.

Installed as ``repro-experiments``::

    repro-experiments tables
    repro-experiments fig1 --scale quick
    repro-experiments fig3 --scale default --seeds 0 1 2
    repro-experiments all --scale quick
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from . import (
    ablation_adaptive,
    ablation_grace,
    ablation_proactive,
    ablation_quota,
    ablation_selection,
    fig1_repairs_by_threshold,
    fig2_losses_by_threshold,
    fig3_observer_repairs,
    fig4_cumulative_losses,
    tables,
)
from .common import scale_by_name

#: Experiment registry: name -> (runner, has shape check).
_SIMULATION_EXPERIMENTS = {
    "fig1": (fig1_repairs_by_threshold.run_figure1,
             fig1_repairs_by_threshold.check_shape),
    "fig2": (fig2_losses_by_threshold.run_figure2,
             fig2_losses_by_threshold.check_shape),
    "fig3": (fig3_observer_repairs.run_figure3,
             fig3_observer_repairs.check_shape),
    "fig4": (fig4_cumulative_losses.run_figure4,
             fig4_cumulative_losses.check_shape),
    "ablation-selection": (ablation_selection.run_ablation_selection,
                           ablation_selection.check_shape),
    "ablation-quota": (ablation_quota.run_ablation_quota, None),
    "ablation-grace": (ablation_grace.run_ablation_grace, None),
    "ablation-proactive": (ablation_proactive.run_ablation_proactive, None),
    "ablation-adaptive": (ablation_adaptive.run_ablation_adaptive,
                          ablation_adaptive.check_shape),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Optimizing peer-to-peer "
            "backup using lifetime estimations' (Bernard & Le Fessant, 2009)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMULATION_EXPERIMENTS) + ["tables", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        help="experiment scale preset: quick, default or full",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="replication seeds (default: the scale preset's seeds)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables instead of plain text",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the qualitative shape checks",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write <experiment>.csv files into this directory "
        "(figures only)",
    )
    return parser


def _run_one(
    name: str,
    scale,
    seeds: Optional[Sequence[int]],
    markdown: bool,
    check: bool,
    csv_dir: Optional[str] = None,
) -> List[str]:
    runner, checker = _SIMULATION_EXPERIMENTS[name]
    result = runner(scale=scale, seeds=tuple(seeds) if seeds else ())
    print(result.render(markdown=markdown))
    if csv_dir is not None and hasattr(result, "to_csv"):
        directory = pathlib.Path(csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name}.csv"
        target.write_text(result.to_csv())
        print(f"(series written to {target})")
    problems: List[str] = []
    if check and checker is not None:
        problems = checker(result)
        if problems:
            print(f"\nshape-check FAILURES for {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"\nshape checks passed for {name}.")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "tables":
        print(tables.render_all(markdown=args.markdown))
        return 0

    scale = scale_by_name(args.scale)
    names = (
        sorted(_SIMULATION_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    failures: List[str] = []
    for name in names:
        print(f"=== {name} (scale={scale.name}) ===")
        failures.extend(
            _run_one(
                name,
                scale,
                args.seeds,
                args.markdown,
                not args.no_check,
                csv_dir=args.csv_dir,
            )
        )
        print()
    if args.experiment == "all":
        print(tables.render_all(markdown=args.markdown))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
