"""Experiment drivers: one module per figure, table set and ablation.

See DESIGN.md section 7 for the experiment index mapping these modules
to the paper's artifacts, and EXPERIMENTS.md for recorded outputs.
"""

from .common import (
    DEFAULT,
    FULL,
    PAPER_FOCUS_THRESHOLD,
    PAPER_THRESHOLDS,
    QUICK,
    ExperimentScale,
    scale_by_name,
    scaled_profiles,
)

__all__ = [
    "DEFAULT",
    "FULL",
    "PAPER_FOCUS_THRESHOLD",
    "PAPER_THRESHOLDS",
    "QUICK",
    "ExperimentScale",
    "scale_by_name",
    "scaled_profiles",
]
