"""Ablation A2 — quota sensitivity (the paper's "future work" knob).

Section 4.1: "A peer provides storage for at most 384 blocks in total to
its partners: quota = 384 [...] We plan to investigate smaller quota in
future work."  This ablation does that investigation: sweep the quota as
a multiple of n and watch repairs, losses and starvation (repairs that
found no partner with free space).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.engine import SimulationResult
from .common import DEFAULT, PAPER_FOCUS_THRESHOLD, ExperimentScale

#: Quota as a multiple of n; the paper's setting is 1.5 x n.
DEFAULT_QUOTA_FACTORS = (1.0, 1.25, 1.5, 2.0)


@dataclass
class AblationQuotaResult:
    """Sweep outcome: one entry per quota factor."""

    scale_name: str
    total_blocks: int
    by_factor: Dict[float, List[SimulationResult]]

    def rows(self) -> List[List[object]]:
        """Report rows: factor, quota, repairs, losses, starved attempts."""
        rows = []
        for factor in sorted(self.by_factor):
            results = self.by_factor[factor]
            count = len(results)
            rows.append(
                [
                    factor,
                    int(self.total_blocks * factor),
                    round(sum(r.metrics.total_repairs for r in results) / count, 1),
                    round(sum(r.metrics.total_losses for r in results) / count, 2),
                    round(sum(r.metrics.starved_repairs for r in results) / count, 1),
                ]
            )
        return rows

    def render(self, markdown: bool = False) -> str:
        """Quota-sweep table."""
        table = format_table(
            ["quota/n", "quota", "repairs", "losses", "starved"],
            self.rows(),
            markdown=markdown,
        )
        return f"A2 — quota ablation (scale={self.scale_name})\n{table}"


def ablation_quota_spec(
    scale: ExperimentScale = DEFAULT,
    quota_factors: Sequence[float] = DEFAULT_QUOTA_FACTORS,
    seeds: Sequence[int] = (),
) -> ExperimentSpec:
    """The quota sweep as a declarative spec."""
    if not quota_factors:
        raise ValueError("at least one quota factor is required")
    for factor in quota_factors:
        if factor <= 0:
            raise ValueError("quota factors must be positive")
    seeds = tuple(seeds) or scale.seeds
    base = scale.config(paper_threshold=PAPER_FOCUS_THRESHOLD)

    def build(params):
        return replace(
            base, quota=int(base.total_blocks * params["quota_factor"])
        )

    def reduce(sweep) -> AblationQuotaResult:
        return AblationQuotaResult(
            scale_name=scale.name,
            total_blocks=base.total_blocks,
            by_factor=sweep.by_axis("quota_factor"),
        )

    return ExperimentSpec(
        name="ablation-quota",
        build=build,
        grid={"quota_factor": tuple(quota_factors)},
        seeds=seeds,
        reduce=reduce,
    )


def run_ablation_quota(
    scale: ExperimentScale = DEFAULT,
    quota_factors: Sequence[float] = DEFAULT_QUOTA_FACTORS,
    seeds: Sequence[int] = (),
    executor: Optional[SweepExecutor] = None,
) -> AblationQuotaResult:
    """Run the quota sweep at the focus threshold."""
    return run_experiment(
        ablation_quota_spec(scale, quota_factors, seeds), executor
    )
