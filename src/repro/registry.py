"""Typed, named component registries — the simulator's extension points.

Every swappable component of the reproduction (selection strategies,
acceptance rules, lifetime models, repair-policy presets, erasure codec
backends, churn mixes, scenarios) is published in a :class:`Registry`
under a short stable name.  Configuration objects keep carrying plain
strings — which is what keeps :meth:`SimulationConfig.to_dict`
serialization and the sweep executor's cache keys byte-identical — and
every consumer resolves those strings through a registry instead of a
local if/else ladder.

Registering a new component therefore requires **no core edits**::

    from repro.core.selection import SELECTION_STRATEGIES, SelectionStrategy

    @SELECTION_STRATEGIES.register("youngest")
    class YoungestFirst(SelectionStrategy):
        name = "youngest"
        def rank(self, candidates, rng):
            return [c.peer_id for c in sorted(candidates, key=lambda c: c.age)]

    config = SimulationConfig(selection_strategy="youngest")

Unknown names raise :class:`UnknownComponentError` (a ``ValueError``)
listing every registered choice and, when one is close, a "did you
mean" suggestion.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class UnknownComponentError(ValueError):
    """An unregistered name was looked up.

    Subclasses ``ValueError``, which is what validation call sites have
    historically raised and what existing tests assert on.
    """


class DuplicateComponentError(ValueError):
    """A name was registered twice without ``replace=True``."""


class Registry(Generic[T]):
    """A small ordered mapping of stable names to components.

    Parameters
    ----------
    kind:
        Human-readable description of what the registry holds
        (``"selection strategy"``), used in every error message.
    """

    def __init__(self, kind: str):
        if not kind:
            raise ValueError("registry kind cannot be empty")
        self.kind = kind
        self._components: Dict[str, T] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        component: Optional[T] = None,
        *,
        replace: bool = False,
    ):
        """Register ``component`` under ``name``.

        Usable directly (``registry.register("age", AgeSelection)``) or
        as a decorator (``@registry.register("age")``); the decorator
        form returns the component unchanged so classes stay usable by
        their own name.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )

        def _store(obj: T) -> T:
            if name in self._components and not replace:
                raise DuplicateComponentError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override it"
                )
            self._components[name] = obj
            return obj

        if component is None:
            return _store
        return _store(component)

    def unregister(self, name: str) -> T:
        """Remove and return a registered component (tests, plugins)."""
        self.check(name)
        return self._components.pop(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """The component registered under ``name``.

        Raises :class:`UnknownComponentError` with the full list of
        valid choices (and a close-match suggestion) otherwise.
        """
        self.check(name)
        return self._components[name]

    def check(self, name: str) -> None:
        """Validate that ``name`` is registered without resolving it."""
        if name in self._components:
            return
        choices = self.names()
        hint = ""
        close = difflib.get_close_matches(str(name), choices, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        raise UnknownComponentError(
            f"unknown {self.kind} {name!r}; "
            f"registered {self.kind} names: {choices}{hint}"
        )

    def create(self, name: str, *args, **kwargs):
        """Call the registered component (for registries of factories)."""
        factory = self.get(name)
        if not callable(factory):
            raise TypeError(
                f"{self.kind} {name!r} is not callable; use get() instead"
            )
        return factory(*args, **kwargs)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._components)

    def items(self) -> List[tuple]:
        """``(name, component)`` pairs in sorted-name order."""
        return [(name, self._components[name]) for name in self.names()]

    # ------------------------------------------------------------------
    # Mapping niceties
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()})"
