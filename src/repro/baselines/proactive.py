"""Proactive replication baseline (Duminuco et al., CoNEXT'07 — ref [10]).

The paper's related work describes an alternative maintenance strategy:
"their system measures the churn, i.e. the rate of departure of
partners, and pro-actively creates new blocks at the same rate", which
relaxes the monitoring requirements.

In this reproduction the baseline is driven by
``SimulationConfig.proactive_rate``: every archive receives top-up
recruitment ticks at that rate (blocks per round), independent of the
reactive threshold.  This module provides the rate *estimation* — how
many blocks per round churn destroys — so experiments can set the knob
the way the cited system would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..churn.lifetimes import from_profile
from ..churn.profiles import Profile


@dataclass(frozen=True)
class ChurnEstimate:
    """Population-level churn figures, per round."""

    departure_rate_per_peer: float   # P(a peer departs in one round)
    block_loss_rate_per_archive: float  # expected blocks destroyed per round

    def recommended_proactive_rate(self, safety_factor: float = 1.0) -> float:
        """Blocks per round to regenerate, scaled by a safety factor."""
        if safety_factor <= 0:
            raise ValueError("safety_factor must be positive")
        return self.block_loss_rate_per_archive * safety_factor


def estimate_churn(
    profiles: Sequence[Profile], blocks_per_archive: int
) -> ChurnEstimate:
    """Analytic churn estimate from the profile mix.

    A peer with mean lifetime ``T`` departs with probability ``1/T`` per
    round in steady state; the population mix averages that over
    proportions.  An archive with ``n`` blocks on ``n`` distinct peers
    loses ``n x departure_rate`` blocks per round in expectation.
    """
    if blocks_per_archive <= 0:
        raise ValueError("blocks_per_archive must be positive")
    departure = 0.0
    for profile in profiles:
        mean = from_profile(profile).mean()
        if mean == float("inf"):
            continue
        departure += profile.proportion / mean
    return ChurnEstimate(
        departure_rate_per_peer=departure,
        block_loss_rate_per_archive=departure * blocks_per_archive,
    )


def measured_churn(
    deaths: int, peer_rounds: float, blocks_per_archive: int
) -> ChurnEstimate:
    """Empirical churn estimate from simulation output.

    This is what [10]'s system actually does: measure the departure rate
    of partners and regenerate at that rate.
    """
    if peer_rounds <= 0:
        raise ValueError("peer_rounds must be positive")
    if blocks_per_archive <= 0:
        raise ValueError("blocks_per_archive must be positive")
    departure = deaths / peer_rounds
    return ChurnEstimate(
        departure_rate_per_peer=departure,
        block_loss_rate_per_archive=departure * blocks_per_archive,
    )
