"""Baselines the paper's heuristic is compared against.

* ``random`` — age-blind selection (:class:`repro.core.selection.RandomSelection`):
  what a backup system without lifetime estimation does;
* ``availability`` — rank by measured uptime
  (:class:`repro.core.selection.AvailabilitySelection`);
* ``oracle`` — rank by true remaining lifetime
  (:class:`repro.core.selection.OracleSelection`), an unattainable bound;
* proactive replication at the churn rate (ref [10]), in
  :mod:`repro.baselines.proactive`.

The selection strategies themselves live in :mod:`repro.core.selection`
(they share the simulator plumbing); this package adds the comparison
harness and the proactive-rate estimation.
"""

from ..core.selection import (
    AvailabilitySelection,
    OracleSelection,
    RandomSelection,
)
from .comparison import (
    StrategyOutcome,
    compare_strategies,
    comparison_rows,
    strategy_spec,
)
from .proactive import ChurnEstimate, estimate_churn, measured_churn

__all__ = [
    "AvailabilitySelection",
    "OracleSelection",
    "RandomSelection",
    "StrategyOutcome",
    "compare_strategies",
    "comparison_rows",
    "strategy_spec",
    "ChurnEstimate",
    "estimate_churn",
    "measured_churn",
]
