"""Strategy-comparison harness (ablation A1).

Runs the same simulation under each partner-selection strategy and
reports repairs, losses and observer behaviour side by side, so the
value of the paper's age heuristic can be read directly against the
age-blind baseline and the oracle upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.selection import SELECTION_STRATEGIES
from ..exec import ExperimentSpec, SweepExecutor, run_experiment
from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult


@dataclass
class StrategyOutcome:
    """Headline numbers of one strategy's runs."""

    strategy: str
    total_repairs: float = 0.0
    total_losses: float = 0.0
    repair_rates: Dict[str, float] = field(default_factory=dict)
    loss_rates: Dict[str, float] = field(default_factory=dict)
    observer_repairs: Dict[str, float] = field(default_factory=dict)


def strategy_spec(
    base_config: SimulationConfig,
    strategies: Sequence[str] = ("age", "random", "availability", "oracle"),
    seeds: Sequence[int] = (0,),
) -> ExperimentSpec:
    """The strategy comparison as a declarative spec (one axis: strategy)."""
    for strategy in strategies:
        SELECTION_STRATEGIES.check(strategy)
    if not seeds:
        raise ValueError("at least one seed is required")

    def build(params: Dict[str, object]) -> SimulationConfig:
        strategy = params["strategy"]
        # The paper's mechanism is two-sided: the acceptation function
        # filters the pool AND the selection ranks it by age.  Baselines
        # therefore run with the age-blind uniform acceptance, so that
        # "random" really is a system without lifetime estimation.
        acceptance = "age" if strategy == "age" else "uniform"
        return replace(
            base_config,
            selection_strategy=strategy,
            acceptance_rule=acceptance,
        )

    def reduce(sweep) -> List[StrategyOutcome]:
        return [
            _summarise(strategy, results)
            for strategy, results in sweep.by_axis("strategy").items()
        ]

    return ExperimentSpec(
        name="strategy-comparison",
        build=build,
        grid={"strategy": tuple(strategies)},
        seeds=tuple(seeds),
        reduce=reduce,
    )


def compare_strategies(
    base_config: SimulationConfig,
    strategies: Sequence[str] = ("age", "random", "availability", "oracle"),
    seeds: Sequence[int] = (0,),
    executor: Optional[SweepExecutor] = None,
) -> List[StrategyOutcome]:
    """Run every strategy over every seed; returns per-strategy means."""
    return run_experiment(
        strategy_spec(base_config, strategies, seeds), executor
    )


def _summarise(strategy: str, results: List[SimulationResult]) -> StrategyOutcome:
    count = len(results)
    outcome = StrategyOutcome(strategy=strategy)
    outcome.total_repairs = sum(r.metrics.total_repairs for r in results) / count
    outcome.total_losses = sum(r.metrics.total_losses for r in results) / count

    categories = results[0].config.categories.names()
    for category in categories:
        outcome.repair_rates[category] = (
            sum(r.metrics.repair_rate_per_1000(category) for r in results) / count
        )
        outcome.loss_rates[category] = (
            sum(r.metrics.loss_rate_per_1000(category) for r in results) / count
        )
    observer_names = {name for r in results for name in r.observer_totals()}
    for name in sorted(observer_names):
        outcome.observer_repairs[name] = (
            sum(r.observer_totals().get(name, 0) for r in results) / count
        )
    return outcome


def comparison_rows(outcomes: Sequence[StrategyOutcome]) -> List[List[object]]:
    """Flatten outcomes into report rows (strategy, repairs, losses, elder/newcomer rates)."""
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.strategy,
                round(outcome.total_repairs, 1),
                round(outcome.total_losses, 2),
                round(outcome.repair_rates.get("Newcomers", 0.0), 4),
                round(outcome.repair_rates.get("Elder peers", 0.0), 4),
            ]
        )
    return rows
