"""Bandwidth and repair-cost model (paper section 2.2.4, artifact C1).

The paper evaluates the feasibility of maintenance on an asymmetric DSL
link: the full cost of a repair is

    delta_repair = delta_download + delta_upload

(decoding/encoding and metadata updates are negligible), where the peer
downloads ``k`` blocks and uploads the ``d`` regenerated blocks.  With
the paper's parameters (128 MB archives, k = 128 so 1 MB blocks, 32 kB/s
up, 256 kB/s down) a worst-case repair (d = 128) takes 69 + 8 = 77
minutes, which bounds feasible repairs at ~20 per day and motivates
keeping the per-archive repair rate below roughly one per month.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: One kilobyte/megabyte in bytes, as the paper uses kB/MB units.
KILOBYTE = 1024
MEGABYTE = 1024 * KILOBYTE


@dataclass(frozen=True)
class LinkProfile:
    """An access link with asymmetric capacities, in bytes per second."""

    download_bps: float
    upload_bps: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.download_bps <= 0 or self.upload_bps <= 0:
            raise ValueError("link capacities must be positive")


#: The paper's reference DSL link: 256 kB/s down, 32 kB/s up.
PAPER_DSL = LinkProfile(
    download_bps=256 * KILOBYTE, upload_bps=32 * KILOBYTE, name="paper-dsl"
)

#: "modern DSL connections (in France) are at least four times faster".
MODERN_DSL = LinkProfile(
    download_bps=4 * 256 * KILOBYTE, upload_bps=4 * 32 * KILOBYTE, name="modern-dsl"
)

#: An FTTH-class link for the paper's closing remark.
FTTH = LinkProfile(
    download_bps=12_500 * KILOBYTE, upload_bps=12_500 * KILOBYTE, name="ftth"
)


@dataclass(frozen=True)
class RepairCost:
    """Breakdown of one repair operation's transfer cost, in seconds."""

    download_seconds: float
    upload_seconds: float

    @property
    def total_seconds(self) -> float:
        """delta_repair = delta_download + delta_upload."""
        return self.download_seconds + self.upload_seconds

    @property
    def total_minutes(self) -> float:
        """Total cost in minutes (the unit of the paper's 77-minute figure)."""
        return self.total_seconds / 60.0


class CostModel:
    """The paper's transfer-only cost model for backup maintenance.

    Parameters
    ----------
    archive_size:
        Bytes per archive (paper: 128 MB).
    data_blocks:
        ``k`` (paper: 128); the block size is ``archive_size / k``.
    link:
        The access-link profile.
    """

    def __init__(
        self,
        archive_size: int = 128 * MEGABYTE,
        data_blocks: int = 128,
        link: LinkProfile = PAPER_DSL,
    ):
        if archive_size <= 0:
            raise ValueError("archive size must be positive")
        if data_blocks < 1:
            raise ValueError("k must be >= 1")
        self.archive_size = archive_size
        self.data_blocks = data_blocks
        self.link = link

    @property
    def block_size(self) -> float:
        """Bytes per block."""
        return self.archive_size / self.data_blocks

    def repair_cost(self, regenerated_blocks: int) -> RepairCost:
        """Cost of one repair that regenerates ``d`` blocks.

        The peer downloads ``k`` blocks (one archive's worth of data) and
        uploads ``d`` blocks.
        """
        if regenerated_blocks < 0:
            raise ValueError("d cannot be negative")
        download = self.archive_size / self.link.download_bps
        upload = regenerated_blocks * self.block_size / self.link.upload_bps
        return RepairCost(download_seconds=download, upload_seconds=upload)

    def max_repairs_per_day(self, regenerated_blocks: int) -> float:
        """How many such repairs fit in 24 hours of exclusive link use."""
        cost = self.repair_cost(regenerated_blocks).total_seconds
        return 86_400.0 / cost

    def feasible_repair_rate(
        self, archives: int, regenerated_blocks: int, budget_fraction: float = 1.0
    ) -> float:
        """Repairs per archive per day that fit a link-time budget.

        The paper's worked example: with 32 archives and one repair per
        day of total budget, the per-archive rate must stay below roughly
        one per month.
        """
        if archives < 1:
            raise ValueError("archives must be >= 1")
        if not 0 < budget_fraction <= 1.0:
            raise ValueError("budget fraction must be in (0, 1]")
        per_day = self.max_repairs_per_day(regenerated_blocks) * budget_fraction
        return per_day / archives

    def backup_cost_seconds(self, total_blocks: int) -> float:
        """Initial upload of all ``n`` blocks (the d = n initial 'repair')."""
        if total_blocks < self.data_blocks:
            raise ValueError("n must be >= k")
        return total_blocks * self.block_size / self.link.upload_bps

    def restore_cost_seconds(self) -> float:
        """Download of ``k`` blocks to restore an archive."""
        return self.archive_size / self.link.download_bps


def paper_cost_table() -> dict:
    """Reproduce the section 2.2.4 arithmetic exactly (artifact C1).

    Returns the numbers the paper states: the >512 s download bound, the
    per-block 32 s upload bound, the 69 + 8 = 77 minute worst-case repair
    and the <=20 repairs/day feasibility limit.
    """
    model = CostModel()
    worst = model.repair_cost(regenerated_blocks=128)
    return {
        "download_seconds": worst.download_seconds,
        "upload_seconds_per_block": model.block_size / model.link.upload_bps,
        "worst_case_upload_minutes": worst.upload_seconds / 60.0,
        "worst_case_download_minutes": worst.download_seconds / 60.0,
        "worst_case_total_minutes": worst.total_minutes,
        "max_repairs_per_day": math.floor(model.max_repairs_per_day(128)),
    }
