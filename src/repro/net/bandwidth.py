"""Bandwidth and repair-cost model (paper section 2.2.4, artifact C1).

The paper evaluates the feasibility of maintenance on an asymmetric DSL
link: the full cost of a repair is

    delta_repair = delta_download + delta_upload

(decoding/encoding and metadata updates are negligible), where the peer
downloads ``k`` blocks and uploads the ``d`` regenerated blocks.  With
the paper's parameters (128 MB archives, k = 128 so 1 MB blocks, 32 kB/s
up, 256 kB/s down) a worst-case repair (d = 128) takes 69 + 8 = 77
minutes, which bounds feasible repairs at ~20 per day and motivates
keeping the per-archive repair rate below roughly one per month.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..registry import Registry

#: One kilobyte/megabyte in bytes, as the paper uses kB/MB units.
KILOBYTE = 1024
MEGABYTE = 1024 * KILOBYTE


@dataclass(frozen=True)
class LinkProfile:
    """An access link with asymmetric capacities, in bytes per second."""

    download_bps: float
    upload_bps: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.download_bps <= 0 or self.upload_bps <= 0:
            raise ValueError("link capacities must be positive")


#: The paper's reference DSL link: 256 kB/s down, 32 kB/s up.
PAPER_DSL = LinkProfile(
    download_bps=256 * KILOBYTE, upload_bps=32 * KILOBYTE, name="paper-dsl"
)

#: "modern DSL connections (in France) are at least four times faster".
MODERN_DSL = LinkProfile(
    download_bps=4 * 256 * KILOBYTE, upload_bps=4 * 32 * KILOBYTE, name="modern-dsl"
)

#: An FTTH-class link for the paper's closing remark.
FTTH = LinkProfile(
    download_bps=12_500 * KILOBYTE, upload_bps=12_500 * KILOBYTE, name="ftth"
)

#: Registry of access-link profiles.  ``SimulationConfig.link_profile``
#: names resolve here, so a custom link registers like any component::
#:
#:     LINK_PROFILES.register("satellite", LinkProfile(..., name="satellite"))
LINK_PROFILES: Registry[LinkProfile] = Registry("link profile")
LINK_PROFILES.register(PAPER_DSL.name, PAPER_DSL)
LINK_PROFILES.register(MODERN_DSL.name, MODERN_DSL)
LINK_PROFILES.register(FTTH.name, FTTH)


@dataclass(frozen=True)
class RepairCost:
    """Breakdown of one repair operation's transfer cost, in seconds."""

    download_seconds: float
    upload_seconds: float

    @property
    def total_seconds(self) -> float:
        """delta_repair = delta_download + delta_upload."""
        return self.download_seconds + self.upload_seconds

    @property
    def total_minutes(self) -> float:
        """Total cost in minutes (the unit of the paper's 77-minute figure)."""
        return self.total_seconds / 60.0


class CostModel:
    """The paper's transfer-only cost model for backup maintenance.

    Parameters
    ----------
    archive_size:
        Bytes per archive (paper: 128 MB).
    data_blocks:
        ``k`` (paper: 128); the block size is ``archive_size / k``.
    link:
        The access-link profile.
    """

    def __init__(
        self,
        archive_size: int = 128 * MEGABYTE,
        data_blocks: int = 128,
        link: LinkProfile = PAPER_DSL,
    ):
        if archive_size <= 0:
            raise ValueError("archive size must be positive")
        if data_blocks < 1:
            raise ValueError("k must be >= 1")
        self.archive_size = archive_size
        self.data_blocks = data_blocks
        self.link = link

    @property
    def block_size(self) -> float:
        """Bytes per block."""
        return self.archive_size / self.data_blocks

    def repair_cost(self, regenerated_blocks: int) -> RepairCost:
        """Cost of one repair that regenerates ``d`` blocks.

        The peer downloads ``k`` blocks (one archive's worth of data) and
        uploads ``d`` blocks.
        """
        if regenerated_blocks < 0:
            raise ValueError("d cannot be negative")
        download = self.archive_size / self.link.download_bps
        upload = regenerated_blocks * self.block_size / self.link.upload_bps
        return RepairCost(download_seconds=download, upload_seconds=upload)

    def max_repairs_per_day(self, regenerated_blocks: int) -> float:
        """How many such repairs fit in 24 hours of exclusive link use."""
        cost = self.repair_cost(regenerated_blocks).total_seconds
        return 86_400.0 / cost

    def feasible_repair_rate(
        self, archives: int, regenerated_blocks: int, budget_fraction: float = 1.0
    ) -> float:
        """Repairs per archive per day that fit a link-time budget.

        The paper's worked example: with 32 archives and one repair per
        day of total budget, the per-archive rate must stay below roughly
        one per month.
        """
        if archives < 1:
            raise ValueError("archives must be >= 1")
        if not 0 < budget_fraction <= 1.0:
            raise ValueError("budget fraction must be in (0, 1]")
        per_day = self.max_repairs_per_day(regenerated_blocks) * budget_fraction
        return per_day / archives

    @property
    def peer_transfer_bps(self) -> float:
        """Rate one block actually moves between two peers.

        A block leaves on the sender's uplink and arrives on the
        receiver's downlink; the slower of the two gates the transfer.
        With one (homogeneous) link profile per simulation that is
        ``min(upload_bps, download_bps)`` — on asymmetric DSL the uplink,
        but a custom profile with a starved downlink is gated correctly
        too.
        """
        return min(self.link.upload_bps, self.link.download_bps)

    def block_transfer_seconds(self) -> float:
        """Seconds to move one block peer-to-peer at the gated rate."""
        return self.block_size / self.peer_transfer_bps

    def backup_cost_seconds(self, total_blocks: int) -> float:
        """Initial upload of all ``n`` blocks (the d = n initial 'repair')."""
        if total_blocks < self.data_blocks:
            raise ValueError("n must be >= k")
        return total_blocks * self.block_size / self.link.upload_bps

    def restore_cost_seconds(self) -> float:
        """Download of ``k`` blocks to restore an archive."""
        return self.archive_size / self.link.download_bps


@dataclass
class ScheduledTransfer:
    """One transfer occupying a peer's access link for ``seconds``.

    ``start_second`` already accounts for queueing behind the peer's
    earlier transfers.  ``latency_seconds`` is propagation delay from
    the impairment layer: it pushes the completion signal
    (``finish_second``) without occupying the link — the link frees up
    at ``link_release_second``, so queued successors are not charged
    for time the wire spent merely in flight.
    """

    peer_id: int
    seconds: float
    start_second: float
    latency_seconds: float = 0.0
    cancelled: bool = field(default=False, compare=False)

    @property
    def link_release_second(self) -> float:
        """Simulation second the peer's link frees up."""
        return self.start_second + self.seconds

    @property
    def finish_second(self) -> float:
        """Simulation second the transfer completes (latency included)."""
        return self.start_second + self.seconds + self.latency_seconds

    def queue_delay(self, requested_second: float) -> float:
        """Seconds spent waiting for the link before the transfer began."""
        return self.start_second - requested_second


class LinkScheduler:
    """Serialises each peer's transfers on its access link.

    The cost model above prices one transfer in isolation; under churn a
    peer's repairs can overlap, and the paper's feasibility argument
    (at most ~20 repairs/day of link time) only holds if concurrent
    transfers *queue* rather than magically sharing the link.  The
    scheduler keeps one ``busy_until`` watermark per peer: a new
    transfer starts at ``max(now, busy_until)`` and pushes the watermark
    to the moment its bytes stop flowing, which yields both the
    completion time (for the event clock) and the queueing delay (a
    protocol-fidelity metric).  Transfer durations themselves are priced
    at the pairwise gated rate ``min(sender uplink, receiver downlink)``
    (see :meth:`CostModel.block_transfer_seconds`), so a partner's
    starved downlink slows a transfer just as a slow source uplink does.
    Impairment latency defers only the completion signal (see
    :meth:`schedule`).

    When a peer departs mid-transfer, :meth:`cancel_peer` drops its
    queued transfers and releases the link immediately — capacity never
    leaks to a dead peer (see ``tests/net/test_bandwidth.py``).
    """

    def __init__(self, round_seconds: float = 3600.0):
        if round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        self.round_seconds = float(round_seconds)
        self._busy_until: Dict[int, float] = {}
        self._active: Dict[int, List[ScheduledTransfer]] = {}

    def schedule(
        self,
        peer_id: int,
        seconds: float,
        now_round: int,
        latency_seconds: float = 0.0,
    ) -> ScheduledTransfer:
        """Enqueue a transfer of ``seconds`` on ``peer_id``'s link.

        ``latency_seconds`` (impairment-layer propagation delay) defers
        the transfer's *completion* without extending the link's busy
        window: the next queued transfer starts as soon as the bytes
        stop flowing, not when the last one lands.
        """
        if seconds < 0:
            raise ValueError("transfer duration cannot be negative")
        if latency_seconds < 0:
            raise ValueError("latency cannot be negative")
        now_second = now_round * self.round_seconds
        start = max(now_second, self._busy_until.get(peer_id, 0.0))
        transfer = ScheduledTransfer(
            peer_id=peer_id,
            seconds=seconds,
            start_second=start,
            latency_seconds=latency_seconds,
        )
        self._busy_until[peer_id] = transfer.link_release_second
        self._active.setdefault(peer_id, []).append(transfer)
        return transfer

    def round_for(self, finish_second: float, now_round: int) -> int:
        """The round a transfer finishing at ``finish_second`` completes.

        Rounds are the engine's clock granularity; a transfer shorter
        than a round still lands in the next round, matching the
        abstract engine's repairs-execute-next-round semantics.
        """
        completed = int(math.ceil(finish_second / self.round_seconds))
        return max(completed, now_round + 1)

    def finish_round(self, transfer: ScheduledTransfer, now_round: int) -> int:
        """:meth:`round_for` of one transfer's own finish time."""
        return self.round_for(transfer.finish_second, now_round)

    def complete(self, transfer: ScheduledTransfer) -> None:
        """Mark a transfer done (drops it from the active index)."""
        active = self._active.get(transfer.peer_id)
        if active is None:
            return
        try:
            active.remove(transfer)
        except ValueError:
            return
        if not active:
            del self._active[transfer.peer_id]

    def cancel_peer(self, peer_id: int) -> List[ScheduledTransfer]:
        """The peer left: cancel its transfers, release its link.

        Returns the cancelled transfers (flagged ``cancelled``) so the
        caller can account for the wasted link time.
        """
        cancelled = self._active.pop(peer_id, [])
        for transfer in cancelled:
            transfer.cancelled = True
        self._busy_until.pop(peer_id, None)
        return cancelled

    def busy_until(self, peer_id: int) -> float:
        """Simulation second the peer's link frees up (0.0 when idle)."""
        return self._busy_until.get(peer_id, 0.0)

    def in_flight(self) -> int:
        """Number of transfers currently scheduled and not completed."""
        return sum(len(active) for active in self._active.values())


def paper_cost_table() -> dict:
    """Reproduce the section 2.2.4 arithmetic exactly (artifact C1).

    Returns the numbers the paper states: the >512 s download bound, the
    per-block 32 s upload bound, the 69 + 8 = 77 minute worst-case repair
    and the <=20 repairs/day feasibility limit.
    """
    model = CostModel()
    worst = model.repair_cost(regenerated_blocks=128)
    return {
        "download_seconds": worst.download_seconds,
        "upload_seconds_per_block": model.block_size / model.link.upload_bps,
        "worst_case_upload_minutes": worst.upload_seconds / 60.0,
        "worst_case_download_minutes": worst.download_seconds / 60.0,
        "worst_case_total_minutes": worst.total_minutes,
        "max_repairs_per_day": math.floor(model.max_repairs_per_day(128)),
    }
