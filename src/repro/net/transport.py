"""In-memory transport connecting protocol endpoints.

The paper assumes "full connectivity between peers" (section 2.1) —
firewalled peers are relayed and not discussed further.  The transport
honours that assumption: any online endpoint can deliver to any other
online endpoint; messages to offline endpoints fail immediately (the
caller sees the same signal the real system would get from a timeout).

Deliveries are synchronous in wall-clock terms, but the link between the
endpoints can be impaired: an installed :mod:`repro.net.impairment`
sampler may drop an exchange (raising :class:`DroppedMessageError`, the
sender's view of a timeout) or charge it latency, which the transport
accumulates in :attr:`InMemoryTransport.last_delay_seconds` for the
caller to fold into transfer finish times.  Optional per-link byte
accounting feeds the bandwidth cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .message import Message

Handler = Callable[[Message], Optional[Message]]


class TransportError(Exception):
    """Raised when a message cannot be delivered."""


class UnknownEndpointError(TransportError):
    """The peer id was never registered on this transport."""


class DepartedEndpointError(TransportError):
    """The peer id was registered once but has left the system.

    Distinguished from :class:`UnknownEndpointError` because the two
    mean different things under churn: an unknown id is a programming
    error (nobody handed out that address), while a departed id is the
    routine fate of every partner — callers such as the protocol
    simulation backend treat it exactly like a timeout in the real
    system.
    """


class OfflineEndpointError(TransportError):
    """The endpoint exists but is currently unreachable (offline)."""


class DroppedMessageError(TransportError):
    """The network lost the exchange in flight (impairment layer).

    Both endpoints were alive and online; the link simply ate the
    message.  This is the sender's view of a timeout — unlike the
    endpoint errors above it says nothing about the partner's state,
    so callers should treat it as transient and retry with backoff.
    The recipient's handler never ran: a dropped exchange loses the
    whole round trip before any recipient-side effect.
    """


@dataclass
class TrafficStats:
    """Byte and message counters for one endpoint."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


def _payload_size(message: Message) -> int:
    payload = getattr(message, "payload", None)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 0


@dataclass
class Endpoint:
    """One addressable protocol participant."""

    peer_id: int
    handler: Handler
    online: bool = True
    stats: TrafficStats = field(default_factory=TrafficStats)


class InMemoryTransport:
    """Synchronous message router for simulated peers."""

    def __init__(self):
        self._endpoints: Dict[int, Endpoint] = {}
        self._departed: set = set()
        self._log: List[Message] = []
        self.record_log = False
        self._impairment = None
        #: One-way latency charged to the most recent :meth:`send`
        #: (doubled for exchanges that produced a reply).  Callers that
        #: model time read it immediately after a successful send.
        self.last_delay_seconds = 0.0
        #: Exchanges lost to the impairment layer since construction.
        self.dropped_messages = 0

    def set_impairment(self, sampler) -> None:
        """Install (or clear) the link-condition sampler for all sends.

        ``sampler`` follows :class:`repro.net.impairment.ImpairmentSampler`:
        one ``sample()`` call per exchange.  ``None`` restores the
        perfect link.
        """
        self._impairment = sampler

    def register(self, peer_id: int, handler: Handler) -> Endpoint:
        """Attach an endpoint; replaces any previous registration."""
        endpoint = Endpoint(peer_id=peer_id, handler=handler)
        self._endpoints[peer_id] = endpoint
        self._departed.discard(peer_id)
        return endpoint

    def unregister(self, peer_id: int) -> None:
        """Remove an endpoint (the peer left the system definitively).

        Later deliveries to the id raise :class:`DepartedEndpointError`
        rather than the unknown-endpoint error, so callers can tell a
        churned-out partner from a bad address.
        """
        if self._endpoints.pop(peer_id, None) is not None:
            self._departed.add(peer_id)

    def _lookup(self, peer_id: int, role: str) -> Endpoint:
        """Resolve an endpoint, raising the precise typed error."""
        endpoint = self._endpoints.get(peer_id)
        if endpoint is not None:
            return endpoint
        if peer_id in self._departed:
            raise DepartedEndpointError(
                f"{role} {peer_id} has left the system"
            )
        raise UnknownEndpointError(f"unknown {role} {peer_id}")

    def set_online(self, peer_id: int, online: bool) -> None:
        """Toggle an endpoint's reachability."""
        self._lookup(peer_id, "endpoint").online = online

    def is_online(self, peer_id: int) -> bool:
        """Whether a peer is currently reachable."""
        endpoint = self._endpoints.get(peer_id)
        return endpoint is not None and endpoint.online

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message and return the recipient's synchronous reply.

        Raises a typed :class:`TransportError` subclass when either end
        cannot deliver — exactly the failure a monitoring probe or block
        fetch observes under churn: :class:`DepartedEndpointError` for a
        peer that left the system, :class:`UnknownEndpointError` for an
        address that never existed, :class:`OfflineEndpointError` for a
        peer that is merely disconnected, :class:`DroppedMessageError`
        when the impairment layer loses the exchange in flight.
        """
        sender = self._lookup(message.sender, "sender")
        if not sender.online:
            raise OfflineEndpointError(f"sender {message.sender} is offline")
        recipient = self._lookup(message.recipient, "recipient")
        if not recipient.online:
            raise OfflineEndpointError(
                f"recipient {message.recipient} is offline"
            )

        size = _payload_size(message)
        sender.stats.messages_sent += 1
        sender.stats.bytes_sent += size

        self.last_delay_seconds = 0.0
        if self._impairment is not None:
            outcome = self._impairment.sample()
            if outcome.dropped:
                # The sender paid to transmit; the network ate it before
                # the recipient saw anything.
                self.dropped_messages += 1
                raise DroppedMessageError(
                    f"message from {message.sender} to {message.recipient} "
                    "lost in flight"
                )
            self.last_delay_seconds = outcome.delay_seconds

        recipient.stats.messages_received += 1
        recipient.stats.bytes_received += size
        if self.record_log:
            self._log.append(message)

        reply = recipient.handler(message)
        if reply is not None:
            reply_size = _payload_size(reply)
            recipient.stats.messages_sent += 1
            recipient.stats.bytes_sent += reply_size
            sender.stats.messages_received += 1
            sender.stats.bytes_received += reply_size
            if self.record_log:
                self._log.append(reply)
            # The reply rides the same impaired link back: charge the
            # one-way latency once more for the full round trip.
            self.last_delay_seconds *= 2.0
        return reply

    def try_send(self, message: Message) -> Optional[Message]:
        """Like :meth:`send` but returns ``None`` on delivery failure."""
        try:
            return self.send(message)
        except TransportError:
            return None

    def stats_for(self, peer_id: int) -> TrafficStats:
        """Traffic counters of one endpoint."""
        return self._lookup(peer_id, "endpoint").stats

    @property
    def log(self) -> List[Message]:
        """Messages routed so far (only populated when ``record_log``)."""
        return list(self._log)

    def __len__(self) -> int:
        return len(self._endpoints)
