"""In-memory transport connecting protocol endpoints.

The paper assumes "full connectivity between peers" (section 2.1) —
firewalled peers are relayed and not discussed further.  The transport
honours that assumption: any online endpoint can deliver to any other
online endpoint; messages to offline endpoints fail immediately (the
caller sees the same signal the real system would get from a timeout).

Deliveries are synchronous; latency is not modelled because the paper's
round granularity (one hour) makes individual message latency invisible.
Optional per-link byte accounting feeds the bandwidth cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .message import Message

Handler = Callable[[Message], Optional[Message]]


class TransportError(Exception):
    """Raised when a message cannot be delivered."""


@dataclass
class TrafficStats:
    """Byte and message counters for one endpoint."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


def _payload_size(message: Message) -> int:
    payload = getattr(message, "payload", None)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 0


@dataclass
class Endpoint:
    """One addressable protocol participant."""

    peer_id: int
    handler: Handler
    online: bool = True
    stats: TrafficStats = field(default_factory=TrafficStats)


class InMemoryTransport:
    """Synchronous message router for simulated peers."""

    def __init__(self):
        self._endpoints: Dict[int, Endpoint] = {}
        self._log: List[Message] = []
        self.record_log = False

    def register(self, peer_id: int, handler: Handler) -> Endpoint:
        """Attach an endpoint; replaces any previous registration."""
        endpoint = Endpoint(peer_id=peer_id, handler=handler)
        self._endpoints[peer_id] = endpoint
        return endpoint

    def unregister(self, peer_id: int) -> None:
        """Remove an endpoint (the peer left the system)."""
        self._endpoints.pop(peer_id, None)

    def set_online(self, peer_id: int, online: bool) -> None:
        """Toggle an endpoint's reachability."""
        endpoint = self._endpoints.get(peer_id)
        if endpoint is None:
            raise TransportError(f"unknown endpoint {peer_id}")
        endpoint.online = online

    def is_online(self, peer_id: int) -> bool:
        """Whether a peer is currently reachable."""
        endpoint = self._endpoints.get(peer_id)
        return endpoint is not None and endpoint.online

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message and return the recipient's synchronous reply.

        Raises :class:`TransportError` when either end is unknown or the
        recipient is offline — exactly the failure a monitoring probe or
        block fetch observes under churn.
        """
        sender = self._endpoints.get(message.sender)
        if sender is None:
            raise TransportError(f"unknown sender {message.sender}")
        if not sender.online:
            raise TransportError(f"sender {message.sender} is offline")
        recipient = self._endpoints.get(message.recipient)
        if recipient is None:
            raise TransportError(f"unknown recipient {message.recipient}")
        if not recipient.online:
            raise TransportError(f"recipient {message.recipient} is offline")

        size = _payload_size(message)
        sender.stats.messages_sent += 1
        sender.stats.bytes_sent += size
        recipient.stats.messages_received += 1
        recipient.stats.bytes_received += size
        if self.record_log:
            self._log.append(message)

        reply = recipient.handler(message)
        if reply is not None:
            reply_size = _payload_size(reply)
            recipient.stats.messages_sent += 1
            recipient.stats.bytes_sent += reply_size
            sender.stats.messages_received += 1
            sender.stats.bytes_received += reply_size
            if self.record_log:
                self._log.append(reply)
        return reply

    def try_send(self, message: Message) -> Optional[Message]:
        """Like :meth:`send` but returns ``None`` on delivery failure."""
        try:
            return self.send(message)
        except TransportError:
            return None

    def stats_for(self, peer_id: int) -> TrafficStats:
        """Traffic counters of one endpoint."""
        endpoint = self._endpoints.get(peer_id)
        if endpoint is None:
            raise TransportError(f"unknown endpoint {peer_id}")
        return endpoint.stats

    @property
    def log(self) -> List[Message]:
        """Messages routed so far (only populated when ``record_log``)."""
        return list(self._log)

    def __len__(self) -> int:
        return len(self._endpoints)
