"""Network substrate: cost model, messages, transport and the master-block DHT."""

from .bandwidth import (
    FTTH,
    KILOBYTE,
    MEGABYTE,
    MODERN_DSL,
    PAPER_DSL,
    CostModel,
    LinkProfile,
    RepairCost,
    paper_cost_table,
)
from .dht import ConsistentHashRing, DhtError, MasterBlockDht
from .message import (
    AvailabilityProbe,
    AvailabilityReport,
    FetchReply,
    FetchRequest,
    Message,
    PartnershipAnswer,
    PartnershipProposal,
    ReleaseNotice,
    StoreReply,
    StoreRequest,
)
from .transport import Endpoint, InMemoryTransport, TrafficStats, TransportError

__all__ = [
    "FTTH",
    "KILOBYTE",
    "MEGABYTE",
    "MODERN_DSL",
    "PAPER_DSL",
    "CostModel",
    "LinkProfile",
    "RepairCost",
    "paper_cost_table",
    "ConsistentHashRing",
    "DhtError",
    "MasterBlockDht",
    "AvailabilityProbe",
    "AvailabilityReport",
    "FetchReply",
    "FetchRequest",
    "Message",
    "PartnershipAnswer",
    "PartnershipProposal",
    "ReleaseNotice",
    "StoreReply",
    "StoreRequest",
    "Endpoint",
    "InMemoryTransport",
    "TrafficStats",
    "TransportError",
]
