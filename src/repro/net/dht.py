"""A small consistent-hashing DHT for master blocks.

Section 2.2.1: "The master block is then uploaded to the network, for
example to all the partners storing the peer's data or to a DHT", and
restoration starts by retrieving it "using a flooding request or a query
to a DHT".  This module provides that substrate: a consistent-hash ring
with configurable replication, tolerant of node joins, leaves and
temporary unavailability.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Set, Tuple

from .impairment import CLEAN_OUTCOME, ImpairmentOutcome, ImpairmentSampler


def _hash(value: str) -> int:
    """Stable 64-bit hash used for both node and key placement."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class DhtError(Exception):
    """Raised on impossible DHT operations (e.g. empty ring)."""


class ConsistentHashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, virtual_nodes: int = 16):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self._virtual_nodes = virtual_nodes
        self._ring: List[Tuple[int, int]] = []  # (hash, node_id), sorted
        self._nodes: Set[int] = set()

    def add_node(self, node_id: int) -> None:
        """Insert a node (idempotent)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for replica in range(self._virtual_nodes):
            point = (_hash(f"node:{node_id}:{replica}"), node_id)
            bisect.insort(self._ring, point)

    def remove_node(self, node_id: int) -> None:
        """Remove a node (idempotent)."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._ring = [entry for entry in self._ring if entry[1] != node_id]

    def successors(self, key: str, count: int) -> List[int]:
        """The ``count`` distinct nodes responsible for ``key``, in ring order."""
        if not self._nodes:
            raise DhtError("the ring is empty")
        count = min(count, len(self._nodes))
        key_hash = _hash(f"key:{key}")
        start = bisect.bisect_right(self._ring, (key_hash, float("inf")))
        owners: List[int] = []
        seen: Set[int] = set()
        for offset in range(len(self._ring)):
            _, node_id = self._ring[(start + offset) % len(self._ring)]
            if node_id not in seen:
                seen.add(node_id)
                owners.append(node_id)
                if len(owners) == count:
                    break
        return owners

    @property
    def nodes(self) -> Set[int]:
        """Current ring membership."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class MasterBlockDht:
    """Replicated key-value store on a consistent-hash ring.

    Values are opaque byte strings (serialized master blocks).  A read
    succeeds while at least one replica holder is online; a write places
    the value on every responsible node that is currently online and
    re-replicates on later writes.
    """

    def __init__(self, replication: int = 3, virtual_nodes: int = 16):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self._replication = replication
        self._ring = ConsistentHashRing(virtual_nodes)
        self._storage: Dict[int, Dict[str, bytes]] = {}
        self._online: Dict[int, bool] = {}
        self._impairment: Optional[ImpairmentSampler] = None
        #: Cumulative per-node-contact accounting (reset never; callers
        #: snapshot before/after an operation to attribute costs).
        self.contacts = 0
        self.dropped_contacts = 0
        self.total_delay_seconds = 0.0
        #: Accumulated one-way delay of the most recent put/get.
        self.last_op_delay_seconds = 0.0

    def set_impairment(self, sampler: Optional[ImpairmentSampler]) -> None:
        """Route every node contact through a link-impairment sampler.

        Each contacted replica holder costs one sample: a dropped
        outcome makes that holder unreachable for this operation (a
        write skips the replica, a read falls through to the next
        holder) and a delivered outcome's delay accumulates into
        :attr:`last_op_delay_seconds`.  ``None`` restores the pristine
        network.
        """
        self._impairment = sampler

    def _contact(self) -> ImpairmentOutcome:
        outcome = (
            CLEAN_OUTCOME
            if self._impairment is None
            else self._impairment.sample()
        )
        self.contacts += 1
        if outcome.dropped:
            self.dropped_contacts += 1
        else:
            self.total_delay_seconds += outcome.delay_seconds
            self.last_op_delay_seconds += outcome.delay_seconds
        return outcome

    def join(self, node_id: int) -> None:
        """Add a node to the ring (online)."""
        self._ring.add_node(node_id)
        self._storage.setdefault(node_id, {})
        self._online[node_id] = True

    def leave(self, node_id: int) -> None:
        """Node departs permanently: its replicas disappear with it."""
        self._ring.remove_node(node_id)
        self._storage.pop(node_id, None)
        self._online.pop(node_id, None)

    def set_online(self, node_id: int, online: bool) -> None:
        """Temporary connect/disconnect; stored replicas survive."""
        if node_id not in self._online:
            raise DhtError(f"unknown node {node_id}")
        self._online[node_id] = online

    def put(self, key: str, value: bytes) -> int:
        """Store a value; returns the number of replicas actually written.

        Under an impairment sampler each online holder costs one
        contact; a dropped contact leaves that replica unwritten (the
        next write re-replicates), so lossy links degrade durability
        exactly as a thinner replication factor would.
        """
        owners = self._ring.successors(key, self._replication)
        self.last_op_delay_seconds = 0.0
        written = 0
        for node_id in owners:
            if not self._online.get(node_id, False):
                continue
            if self._contact().dropped:
                continue
            self._storage[node_id][key] = value
            written += 1
        if written == 0:
            raise DhtError(f"no online replica holder for key {key!r}")
        return written

    def get(self, key: str) -> Optional[bytes]:
        """Fetch a value from the first online replica holder; None on miss.

        Under an impairment sampler a dropped contact makes that holder
        unreachable for this lookup and the read falls through to the
        next replica in ring order — the degraded-network behaviour the
        DHT tests pin down.
        """
        owners = self._ring.successors(key, self._replication)
        self.last_op_delay_seconds = 0.0
        for node_id in owners:
            if not self._online.get(node_id, False):
                continue
            if self._contact().dropped:
                continue
            value = self._storage.get(node_id, {}).get(key)
            if value is not None:
                return value
        return None

    def replica_locations(self, key: str) -> List[int]:
        """Nodes currently holding a replica of ``key`` (online or not)."""
        return [
            node_id
            for node_id, store in self._storage.items()
            if key in store
        ]

    def __len__(self) -> int:
        return len(self._ring)
