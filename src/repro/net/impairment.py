"""Netem-style link impairment profiles (deterministic fault injection).

The paper's protocol assumes messages either deliver or visibly fail;
real access links lose and delay them.  This module models the link the
way ``tc netem`` does — per-message loss probability, base one-way delay
and uniform jitter, plus an optional two-state Gilbert-Elliott chain for
bursty (correlated) loss — so the protocol fidelity backend can be run
against the same loss/delay matrix used to qualify real gossip stacks
(clean, 10% loss, 10 ms delay, 30% loss + 50 ms ± 5 ms).

Determinism discipline (R001): profiles are pure data and samplers are
pure consumers — every random decision comes from uniform draws handed
in by the caller (the simulation's dedicated ``"impairment"`` RNG
stream), never from a generator constructed here.  Same seed, same
message sequence, same outcomes, on every execution backend.

Sampling granularity: one :meth:`ImpairmentSampler.sample` call covers
one request/reply *exchange*.  A dropped exchange loses the whole round
trip before any recipient-side effect — the sender observes a timeout,
the recipient observes nothing.  Folding reply-leg loss into the same
per-exchange probability keeps holder bookkeeping unambiguous (no
stored-but-unacknowledged blocks); the two-generals ambiguity is out of
scope at this fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

from ..registry import Registry


class UniformSource(Protocol):
    """Anything that yields uniform floats in [0, 1) on demand.

    ``repro.sim.rng.BatchedDraws`` satisfies this; tests can pass a
    stub replaying a fixed sequence.
    """

    def next_uniform(self) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ImpairmentOutcome:
    """What the simulated network did to one exchange."""

    dropped: bool
    delay_seconds: float = 0.0


#: The outcome of an exchange over an unimpaired link.
CLEAN_OUTCOME = ImpairmentOutcome(dropped=False, delay_seconds=0.0)


@dataclass(frozen=True)
class ImpairmentProfile:
    """One netem-style link condition, as pure data.

    ``loss_probability`` is the per-exchange drop probability (the
    steady loss floor when a burst chain is configured).  Delay is the
    base one-way latency; jitter is the half-width of a uniform band
    around it, mirroring ``netem delay <base> <jitter>``.

    Bursty loss uses the Gilbert-Elliott two-state chain: each exchange
    the link flips good→bad with ``burst_enter`` probability and bad→
    good with ``burst_exit``; in the bad state exchanges drop with
    ``burst_loss_probability`` instead of the base rate.  Leaving all
    three at zero yields independent (Bernoulli) loss.
    """

    name: str = "impairment"
    loss_probability: float = 0.0
    delay_seconds: float = 0.0
    jitter_seconds: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.0
    burst_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        for label in (
            "loss_probability",
            "burst_enter",
            "burst_exit",
            "burst_loss_probability",
        ):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be a probability, got {value}")
        if self.delay_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("delay and jitter cannot be negative")
        if self.jitter_seconds > self.delay_seconds:
            raise ValueError("jitter wider than the base delay would go negative")
        if self.burst_enter > 0 and self.burst_exit == 0:
            raise ValueError("a burst state needs a nonzero exit probability")

    @property
    def bursty(self) -> bool:
        """Whether the Gilbert-Elliott chain is active."""
        return self.burst_enter > 0.0

    @property
    def is_clean(self) -> bool:
        """True when the profile cannot alter any exchange.

        The protocol backend skips sampler installation entirely for
        clean profiles, so the dedicated RNG stream is never consumed
        and pre-impairment runs stay byte-identical.
        """
        return (
            self.loss_probability == 0.0
            and self.delay_seconds == 0.0
            and self.jitter_seconds == 0.0
            and not self.bursty
        )

    def sampler(self, draws: UniformSource) -> "ImpairmentSampler":
        """Bind the profile to a draw source for one simulation run."""
        return ImpairmentSampler(self, draws)


class ImpairmentSampler:
    """Per-run sampling state for one profile (Gilbert-Elliott position).

    Draw consumption per :meth:`sample` is fixed by the profile — one
    transition draw when bursty, one loss draw when any loss is
    configured, one jitter draw for delivered exchanges under jitter —
    so the draw sequence is a pure function of the exchange sequence.
    """

    def __init__(self, profile: ImpairmentProfile, draws: UniformSource):
        self.profile = profile
        self._draws = draws
        self._in_burst = False

    def sample(self) -> ImpairmentOutcome:
        """Outcome of the next exchange over this link."""
        profile = self.profile
        loss = profile.loss_probability
        if profile.bursty:
            flip = self._draws.next_uniform()
            if self._in_burst:
                self._in_burst = flip >= profile.burst_exit
            else:
                self._in_burst = flip < profile.burst_enter
            if self._in_burst:
                loss = profile.burst_loss_probability
        if loss > 0.0 and self._draws.next_uniform() < loss:
            return ImpairmentOutcome(dropped=True)
        delay = profile.delay_seconds
        if profile.jitter_seconds > 0.0:
            swing = 2.0 * self._draws.next_uniform() - 1.0
            delay += swing * profile.jitter_seconds
        return ImpairmentOutcome(dropped=False, delay_seconds=delay)


@dataclass(frozen=True)
class ScriptedImpairment(ImpairmentProfile):
    """A profile replaying a fixed outcome schedule (tests only).

    The schedule cycles, so a short script covers an arbitrarily long
    run; no draws are consumed.  Register one under a test-local name
    and point ``SimulationConfig.impairment_profile`` at it to make a
    drop sequence fully deterministic regardless of seed.
    """

    script: Tuple[ImpairmentOutcome, ...] = (CLEAN_OUTCOME,)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.script:
            raise ValueError("a scripted profile needs at least one outcome")

    @property
    def is_clean(self) -> bool:
        return all(
            not outcome.dropped and outcome.delay_seconds == 0.0
            for outcome in self.script
        )

    def sampler(self, draws: UniformSource) -> "ImpairmentSampler":
        return _ScriptedSampler(self)


class _ScriptedSampler(ImpairmentSampler):
    """Cycles through a :class:`ScriptedImpairment` schedule."""

    def __init__(self, profile: ScriptedImpairment):
        super().__init__(profile, draws=None)
        self._cursor = 0

    def sample(self) -> ImpairmentOutcome:
        script: Sequence[ImpairmentOutcome] = self.profile.script
        outcome = script[self._cursor % len(script)]
        self._cursor += 1
        return outcome


def drop_schedule(*dropped: bool) -> Tuple[ImpairmentOutcome, ...]:
    """Build a scripted schedule from per-exchange drop flags."""
    return tuple(ImpairmentOutcome(dropped=flag) for flag in dropped)


#: The identity profile: every exchange delivers instantly.
CLEAN = ImpairmentProfile(name="clean")

#: netem ``loss 10%``: one exchange in ten vanishes, no delay.
LOSS10 = ImpairmentProfile(name="loss10", loss_probability=0.10)

#: netem ``delay 10ms``: reliable but 10 ms one-way latency.
DELAY10MS = ImpairmentProfile(name="delay10ms", delay_seconds=0.010)

#: netem ``loss 30% delay 50ms 5ms``: the stress cell of the matrix.
LOSS30_DELAY50MS_JITTER5MS = ImpairmentProfile(
    name="loss30_delay50ms_jitter5ms",
    loss_probability=0.30,
    delay_seconds=0.050,
    jitter_seconds=0.005,
)

#: A geostationary-style link: long latency and bursty outage windows
#: (Gilbert-Elliott: rare entry into a lossy state that persists for a
#: handful of exchanges).  Backs the ``flaky_satellite`` scenario.
SATELLITE_BURST = ImpairmentProfile(
    name="satellite_burst",
    loss_probability=0.02,
    delay_seconds=0.300,
    jitter_seconds=0.050,
    burst_enter=0.05,
    burst_exit=0.30,
    burst_loss_probability=0.80,
)

#: Registry of impairment profiles.  ``SimulationConfig.impairment_profile``
#: names resolve here, so a custom link condition registers like any
#: component::
#:
#:     IMPAIRMENT_PROFILES.register("lab", ImpairmentProfile(name="lab", ...))
IMPAIRMENT_PROFILES: Registry[ImpairmentProfile] = Registry("impairment profile")
IMPAIRMENT_PROFILES.register(CLEAN.name, CLEAN)
IMPAIRMENT_PROFILES.register(LOSS10.name, LOSS10)
IMPAIRMENT_PROFILES.register(DELAY10MS.name, DELAY10MS)
IMPAIRMENT_PROFILES.register(
    LOSS30_DELAY50MS_JITTER5MS.name, LOSS30_DELAY50MS_JITTER5MS
)
IMPAIRMENT_PROFILES.register(SATELLITE_BURST.name, SATELLITE_BURST)
