"""Message types exchanged by the backup protocol.

The simulator abstracts transfers to whole rounds, but the backup layer
(and the examples that move real bytes) speak a small message vocabulary
modelled on section 2.2: store/fetch blocks, partnership negotiation and
availability probes.  Messages are plain frozen dataclasses so they can
be logged, asserted on and routed by the in-memory transport.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_MESSAGE_COUNTER = itertools.count()


@dataclass(frozen=True)
class Message:
    """Base class: every message has a source, destination and unique id."""

    sender: int
    recipient: int
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    def __post_init__(self) -> None:
        if self.sender == self.recipient:
            raise ValueError("a peer cannot message itself")


@dataclass(frozen=True)
class StoreRequest(Message):
    """Ask a partner to store one coded block."""

    archive_id: str = ""
    block_index: int = 0
    payload: bytes = b""


@dataclass(frozen=True)
class StoreReply(Message):
    """Partner's answer to a store request."""

    archive_id: str = ""
    block_index: int = 0
    accepted: bool = False
    reason: Optional[str] = None


@dataclass(frozen=True)
class FetchRequest(Message):
    """Ask a partner for a block it stores (restore or repair download)."""

    archive_id: str = ""
    block_index: int = 0


@dataclass(frozen=True)
class FetchReply(Message):
    """Block content, or a miss."""

    archive_id: str = ""
    block_index: int = 0
    payload: Optional[bytes] = None


@dataclass(frozen=True)
class PartnershipProposal(Message):
    """Offer to become partners; carries the proposer's claimed age."""

    proposer_age: float = 0.0


@dataclass(frozen=True)
class PartnershipAnswer(Message):
    """Mutual-acceptance outcome from the candidate's side."""

    accepted: bool = False


@dataclass(frozen=True)
class ReleaseNotice(Message):
    """Owner tells a partner it no longer needs the stored block."""

    archive_id: str = ""
    block_index: int = 0


@dataclass(frozen=True)
class AvailabilityProbe(Message):
    """Monitoring ping (the assumed secure monitoring protocol)."""

    window_rounds: int = 0


@dataclass(frozen=True)
class AvailabilityReport(Message):
    """Measured uptime fraction over the requested window."""

    availability: float = 0.0
    observed_rounds: int = 0
