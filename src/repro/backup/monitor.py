"""Availability monitoring (the paper's assumed secure protocol).

Section 2.1: "we assume the existence of a secure monitoring protocol
for peer availability: any peer can query the availability of any other
peer for a given period of time, for example the last 90 days."

The byte-level client implements the query side: probe a partner, read
back its windowed uptime, and keep a local ledger of probe outcomes so
the maintenance task can count visible partners and the
availability-based selection baseline has real measurements to rank on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.message import AvailabilityProbe, AvailabilityReport
from ..net.transport import InMemoryTransport


@dataclass
class ProbeRecord:
    """Ledger entry for one monitored partner."""

    probes_sent: int = 0
    probes_answered: int = 0
    last_report: Optional[AvailabilityReport] = None
    consecutive_misses: int = 0


@dataclass
class MonitorLedger:
    """Probe history of one monitoring peer."""

    records: Dict[int, ProbeRecord] = field(default_factory=dict)

    def record_for(self, partner_id: int) -> ProbeRecord:
        """Fetch-or-create the ledger entry of a partner."""
        return self.records.setdefault(partner_id, ProbeRecord())


class AvailabilityMonitor:
    """Probe partners and accumulate uptime knowledge."""

    def __init__(
        self,
        transport: InMemoryTransport,
        owner_id: int,
        window_rounds: int,
        departure_threshold: int = 3,
    ):
        if window_rounds <= 0:
            raise ValueError("window_rounds must be positive")
        if departure_threshold <= 0:
            raise ValueError("departure_threshold must be positive")
        self._transport = transport
        self._owner_id = owner_id
        self._window = window_rounds
        #: consecutive failed probes after which a partner is presumed gone
        #: (the paper's "time threshold" of section 2.2.3, in probe counts).
        self.departure_threshold = departure_threshold
        self.ledger = MonitorLedger()

    def probe(self, partner_id: int) -> Optional[AvailabilityReport]:
        """Probe one partner; returns its report or ``None`` when offline."""
        record = self.ledger.record_for(partner_id)
        record.probes_sent += 1
        reply = self._transport.try_send(
            AvailabilityProbe(
                sender=self._owner_id,
                recipient=partner_id,
                window_rounds=self._window,
            )
        )
        if reply is None or not isinstance(reply, AvailabilityReport):
            record.consecutive_misses += 1
            return None
        record.probes_answered += 1
        record.consecutive_misses = 0
        record.last_report = reply
        return reply

    def is_visible(self, partner_id: int) -> bool:
        """Probe and report whether the partner answered."""
        return self.probe(partner_id) is not None

    def presumed_departed(self, partner_id: int) -> bool:
        """Whether the partner exceeded the departure threshold."""
        record = self.ledger.record_for(partner_id)
        return record.consecutive_misses >= self.departure_threshold

    def measured_availability(self, partner_id: int) -> Optional[float]:
        """Last reported windowed availability of a partner, if any."""
        record = self.ledger.records.get(partner_id)
        if record is None or record.last_report is None:
            return None
        return record.last_report.availability
