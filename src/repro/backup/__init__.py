"""Byte-level backup system: archives, stores, manifests and the three tasks.

This package is the runnable realisation of the system described in the
paper's section 2.2 — the simulator in :mod:`repro.sim` abstracts it to
logical blocks for the large-scale evaluation.
"""

from .archive import (
    Archive,
    ArchiveBuilder,
    ArchiveFormatError,
    FileEntry,
    build_metadata_archive,
    decrypt,
    encrypt,
    new_session_key,
    pack_entries,
    parse_metadata_archive,
    unpack_entries,
)
from .backup_task import BackupError, BackupReport, BackupTask
from .client import BackupNode, BackupSwarm
from .fairness import ExchangeBalance, ExchangeLedger, GlobalFairness
from .maintenance import MaintenanceReport, MaintenanceTask
from .manifest import ArchiveRecord, ManifestError, MasterBlock, master_block_key
from .monitor import AvailabilityMonitor, MonitorLedger
from .partnership import PartnershipOutcome, PartnershipProtocol, answer_proposal
from .restore_task import RestoreError, RestoreReport, RestoreTask, restore_files
from .store import BlockStore, QuotaExceededError, StoredBlock

__all__ = [
    "Archive",
    "ArchiveBuilder",
    "ArchiveFormatError",
    "FileEntry",
    "build_metadata_archive",
    "decrypt",
    "encrypt",
    "new_session_key",
    "pack_entries",
    "parse_metadata_archive",
    "unpack_entries",
    "BackupError",
    "BackupReport",
    "BackupTask",
    "BackupNode",
    "BackupSwarm",
    "ExchangeBalance",
    "ExchangeLedger",
    "GlobalFairness",
    "MaintenanceReport",
    "MaintenanceTask",
    "ArchiveRecord",
    "ManifestError",
    "MasterBlock",
    "master_block_key",
    "AvailabilityMonitor",
    "MonitorLedger",
    "PartnershipOutcome",
    "PartnershipProtocol",
    "answer_proposal",
    "RestoreError",
    "RestoreReport",
    "RestoreTask",
    "restore_files",
    "BlockStore",
    "QuotaExceededError",
    "StoredBlock",
]
