"""Byte-level backup client: nodes, and the swarm that wires them up.

This is the end-to-end realisation of the system the paper describes in
section 2.2 — real bytes, real erasure coding, real message exchanges —
at a scale examples can run (tens of nodes, kilobyte archives).  The
round-based simulator in :mod:`repro.sim` answers the paper's
*quantitative* questions; this client demonstrates that the protocol it
abstracts actually works end to end.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from ..core.acceptance import acceptance_rule
from ..core.policy import RepairPolicy
from ..core.selection import Candidate, SelectionStrategy, strategy_by_name
from ..erasure.codec import ArchiveCodec, CodedBlock
from ..net.dht import MasterBlockDht
from ..net.message import (
    AvailabilityProbe,
    AvailabilityReport,
    FetchReply,
    FetchRequest,
    Message,
    PartnershipProposal,
    ReleaseNotice,
    StoreReply,
    StoreRequest,
)
from ..net.transport import InMemoryTransport
from ..sim.rng import seed_sequence, seeded_generator
from .archive import Archive
from .fairness import ExchangeLedger
from .manifest import MasterBlock
from .partnership import answer_proposal
from .store import BlockStore


class BackupNode:
    """One participant: a user's machine running the backup client."""

    def __init__(
        self,
        peer_id: int,
        swarm: "BackupSwarm",
        user_key: bytes,
        join_time: int,
    ):
        self.peer_id = peer_id
        self.swarm = swarm
        self.user_key = user_key
        self.join_time = join_time
        self.store = BlockStore(swarm.quota_blocks)
        self.master = MasterBlock(owner_id=peer_id)
        #: pairwise direct-exchange accounting (section 2.2.1).
        self.ledger = ExchangeLedger()
        #: archives this node owns, kept locally until disaster strikes.
        self.local_archives: Dict[str, Archive] = {}
        self.online = True
        self._online_ticks = 0
        self._last_tick_seen = join_time
        self.rng = swarm.spawn_rng()

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------
    def age(self) -> float:
        """Rounds since this node first connected."""
        return float(self.swarm.clock - self.join_time)

    def availability(self) -> float:
        """Observed online fraction since joining."""
        span = self.swarm.clock - self.join_time
        if span <= 0:
            return 1.0
        return min(self._online_ticks / span, 1.0)

    def record_tick(self) -> None:
        """Called by the swarm once per clock advance."""
        if self.online:
            self._online_ticks += 1
        self._last_tick_seen = self.swarm.clock

    # ------------------------------------------------------------------
    # Message handling (the partner-facing half of the protocol)
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Message]:
        """Transport entry point."""
        if isinstance(message, StoreRequest):
            return self._handle_store(message)
        if isinstance(message, FetchRequest):
            return self._handle_fetch(message)
        if isinstance(message, ReleaseNotice):
            released = self.store.release(
                message.sender, message.archive_id, message.block_index
            )
            if released:
                self.ledger.record_released_for(message.sender)
            return None
        if isinstance(message, PartnershipProposal):
            return answer_proposal(
                message,
                own_age=self.age(),
                acceptance=self.swarm.acceptance,
                rng=self.rng,
                has_capacity=self.store.can_store(),
            )
        if isinstance(message, AvailabilityProbe):
            return AvailabilityReport(
                sender=self.peer_id,
                recipient=message.sender,
                availability=self.availability(),
                observed_rounds=min(
                    message.window_rounds, self.swarm.clock - self.join_time
                ),
            )
        return None

    def _handle_store(self, message: StoreRequest) -> StoreReply:
        factor = self.swarm.fairness_factor
        if factor is not None and self.ledger.would_exceed_debt(
            message.sender, factor
        ):
            return StoreReply(
                sender=self.peer_id,
                recipient=message.sender,
                archive_id=message.archive_id,
                block_index=message.block_index,
                accepted=False,
                reason="fairness: exchange debt exceeded",
            )
        block = CodedBlock(
            index=message.block_index,
            payload=message.payload,
            checksum=hashlib.sha256(message.payload).hexdigest(),
        )
        try:
            self.store.store(message.sender, message.archive_id, block)
        except Exception as error:  # quota full
            return StoreReply(
                sender=self.peer_id,
                recipient=message.sender,
                archive_id=message.archive_id,
                block_index=message.block_index,
                accepted=False,
                reason=str(error),
            )
        self.ledger.record_stored_for(message.sender)
        return StoreReply(
            sender=self.peer_id,
            recipient=message.sender,
            archive_id=message.archive_id,
            block_index=message.block_index,
            accepted=True,
        )

    def _handle_fetch(self, message: FetchRequest) -> FetchReply:
        block = self.store.fetch(
            message.sender, message.archive_id, message.block_index
        )
        return FetchReply(
            sender=self.peer_id,
            recipient=message.sender,
            archive_id=message.archive_id,
            block_index=message.block_index,
            payload=block.payload if block else None,
        )


class BackupSwarm:
    """The shared environment: transport, DHT, clock and membership."""

    def __init__(
        self,
        data_blocks: int = 8,
        parity_blocks: int = 8,
        repair_threshold: Optional[int] = None,
        quota_blocks: int = 24,
        age_cap: int = 90 * 24,
        selection: str = "age",
        seed: Optional[int] = 0,
        fairness_factor: Optional[float] = None,
    ):
        if fairness_factor is not None and fairness_factor <= 0:
            raise ValueError("fairness_factor must be positive")
        self.codec = ArchiveCodec(data_blocks, parity_blocks)
        threshold = (
            repair_threshold
            if repair_threshold is not None
            else data_blocks + (parity_blocks + 1) // 2
        )
        self.policy = RepairPolicy(
            data_blocks=data_blocks,
            total_blocks=data_blocks + parity_blocks,
            repair_threshold=threshold,
        )
        self.quota_blocks = quota_blocks
        self.fairness_factor = fairness_factor
        self.acceptance = acceptance_rule("age", age_cap=age_cap)
        self.strategy: SelectionStrategy = strategy_by_name(selection)
        self.transport = InMemoryTransport()
        self.dht = MasterBlockDht(replication=3)
        self.clock = 0
        self.nodes: Dict[int, BackupNode] = {}
        self._seed_sequence = seed_sequence(seed)
        self._rng = seeded_generator(self._seed_sequence.spawn(1)[0])

    def spawn_rng(self) -> np.random.Generator:
        """Independent generator for one node."""
        return seeded_generator(self._seed_sequence.spawn(1)[0])

    @property
    def rng(self) -> np.random.Generator:
        """Swarm-level generator (selection draws, etc.)."""
        return self._rng

    # ------------------------------------------------------------------
    # Membership and time
    # ------------------------------------------------------------------
    def add_node(self, user_key: Optional[bytes] = None) -> BackupNode:
        """Create a node, wire it to transport and DHT, return it."""
        peer_id = len(self.nodes)
        key = user_key if user_key is not None else bytes([peer_id % 256]) * 32
        node = BackupNode(peer_id, self, key, join_time=self.clock)
        self.nodes[peer_id] = node
        self.transport.register(peer_id, node.handle)
        self.dht.join(peer_id)
        return node

    def set_online(self, peer_id: int, online: bool) -> None:
        """Connect/disconnect a node everywhere at once."""
        node = self.nodes[peer_id]
        node.online = online
        self.transport.set_online(peer_id, online)
        self.dht.set_online(peer_id, online)

    def tick(self, rounds: int = 1) -> None:
        """Advance the shared clock, updating uptime ledgers."""
        if rounds < 0:
            raise ValueError("rounds cannot be negative")
        for _ in range(rounds):
            self.clock += 1
            for node in self.nodes.values():
                node.record_tick()

    # ------------------------------------------------------------------
    # Candidate discovery
    # ------------------------------------------------------------------
    def candidates_for(
        self, owner: BackupNode, exclude: Optional[set] = None
    ) -> List[Candidate]:
        """Online nodes with capacity, excluding the owner and ``exclude``."""
        exclude = exclude or set()
        found = []
        for node in self.nodes.values():
            if node.peer_id == owner.peer_id or node.peer_id in exclude:
                continue
            if not node.online or not node.store.can_store():
                continue
            found.append(
                Candidate(
                    peer_id=node.peer_id,
                    age=node.age(),
                    availability=node.availability(),
                )
            )
        return found
