"""Partnership negotiation over the transport.

Section 3.2: "To enter this pool, both peers must agree on their
partnership, using an acceptation function."  The byte-level client runs
the same mutual-acceptance handshake as the simulator, but as an actual
message exchange: the initiator proposes with its claimed age, the
candidate answers with its own accept/reject draw, and the initiator
applies its side of the acceptation function on the reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.acceptance import AcceptancePolicy
from ..net.message import PartnershipAnswer, PartnershipProposal
from ..net.transport import InMemoryTransport


@dataclass
class PartnershipOutcome:
    """Result of one handshake attempt."""

    partner_id: int
    agreed: bool
    refused_by: Optional[str] = None  # "candidate" | "initiator" | "network"


class PartnershipProtocol:
    """Initiator-side handshake driver."""

    def __init__(
        self,
        transport: InMemoryTransport,
        acceptance: AcceptancePolicy,
        rng: np.random.Generator,
    ):
        self._transport = transport
        self._acceptance = acceptance
        self._rng = rng

    def propose(
        self, initiator_id: int, initiator_age: float, candidate_id: int,
        candidate_age: float,
    ) -> PartnershipOutcome:
        """Run the two-sided acceptance handshake with one candidate.

        The candidate's decision happens on its side (see
        :meth:`answer_proposal`); the initiator decides on the answer.
        """
        reply = self._transport.try_send(
            PartnershipProposal(
                sender=initiator_id,
                recipient=candidate_id,
                proposer_age=initiator_age,
            )
        )
        if reply is None:
            return PartnershipOutcome(candidate_id, False, refused_by="network")
        if not isinstance(reply, PartnershipAnswer) or not reply.accepted:
            return PartnershipOutcome(candidate_id, False, refused_by="candidate")
        own_draw = float(self._rng.random())
        if not self._acceptance.decide(initiator_age, candidate_age, own_draw):
            return PartnershipOutcome(candidate_id, False, refused_by="initiator")
        return PartnershipOutcome(candidate_id, True)


def answer_proposal(
    proposal: PartnershipProposal,
    own_age: float,
    acceptance: AcceptancePolicy,
    rng: np.random.Generator,
    has_capacity: bool,
) -> PartnershipAnswer:
    """Candidate-side decision for an incoming proposal.

    A full store always refuses; otherwise the acceptation function
    decides with the candidate's own age against the proposer's.
    """
    accepted = False
    if has_capacity:
        draw = float(rng.random())
        accepted = acceptance.decide(own_age, proposal.proposer_age, draw)
    return PartnershipAnswer(
        sender=proposal.recipient,
        recipient=proposal.sender,
        accepted=accepted,
    )
