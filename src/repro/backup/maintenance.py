"""The maintenance task (paper section 2.2.3), byte-level version.

"The maintenance of the backup is the perpetual task of replacing the
blocks which have disappeared from the network."  Per archive: probe the
partners, count the visible blocks, and when the count drops below the
repair threshold k', download any k blocks, re-encode the missing ones
(the paper's worst-case decode-then-reencode model) and upload them to
freshly recruited partners, updating the master block afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..erasure.codec import CodedBlock
from ..erasure.reed_solomon import ErasureCodingError
from ..net.dht import DhtError
from ..net.message import FetchReply, FetchRequest, StoreReply, StoreRequest
from .client import BackupNode
from .monitor import AvailabilityMonitor
from .partnership import PartnershipProtocol


@dataclass
class ArchiveMaintenanceReport:
    """Maintenance outcome for one archive."""

    archive_id: str
    visible_blocks: int
    repaired: bool = False
    blocked: bool = False
    lost: bool = False
    regenerated_blocks: List[int] = field(default_factory=list)
    new_partners: Dict[int, int] = field(default_factory=dict)  # index -> peer


@dataclass
class MaintenanceReport:
    """Maintenance outcome for a whole node."""

    owner_id: int
    archives: List[ArchiveMaintenanceReport] = field(default_factory=list)

    @property
    def repairs(self) -> int:
        """Number of archives repaired in this pass."""
        return sum(1 for a in self.archives if a.repaired)

    @property
    def losses(self) -> int:
        """Number of archives found unrecoverable."""
        return sum(1 for a in self.archives if a.lost)


class MaintenanceTask:
    """One monitoring-plus-repair pass over a node's archives."""

    def __init__(self, node: BackupNode, monitor_window: int = 90 * 24):
        self.node = node
        self.monitor = AvailabilityMonitor(
            node.swarm.transport, node.peer_id, monitor_window
        )
        self._protocol = PartnershipProtocol(
            node.swarm.transport, node.swarm.acceptance, node.rng
        )

    def run(self) -> MaintenanceReport:
        """Probe every archive's partners and repair where needed."""
        report = MaintenanceReport(owner_id=self.node.peer_id)
        for archive_id in sorted(self.node.master.archives):
            report.archives.append(self._maintain_archive(archive_id))
        return report

    # ------------------------------------------------------------------
    def _maintain_archive(self, archive_id: str) -> ArchiveMaintenanceReport:
        swarm = self.node.swarm
        policy = swarm.policy
        record = self.node.master.archives[archive_id]

        visible = {}
        for index, partner_id in enumerate(record.partners):
            if partner_id < 0:
                continue
            if self.monitor.is_visible(partner_id):
                visible[index] = partner_id
        outcome = ArchiveMaintenanceReport(
            archive_id=archive_id, visible_blocks=len(visible)
        )
        if not policy.needs_repair(len(visible)):
            return outcome
        if not policy.can_decode(len(visible)):
            outcome.blocked = True
            # The paper keeps retrying next rounds; total loss is only
            # certain once the blocks are gone from live peers, which the
            # byte-level client cannot distinguish from long downtime.
            return outcome

        blocks = self._download_blocks(archive_id, visible, policy.k)
        if blocks is None:
            outcome.blocked = True
            return outcome

        missing = [
            index for index in range(policy.n) if index not in visible
        ]
        replaced = self._reupload(archive_id, blocks, missing, set(visible.values()))
        outcome.new_partners = replaced
        outcome.regenerated_blocks = sorted(replaced)
        outcome.repaired = bool(replaced)
        if replaced:
            for index, partner_id in replaced.items():
                self.node.master.update_partner(archive_id, index, partner_id)
            try:
                swarm.dht.put(
                    self.node.master.dht_key(), self.node.master.serialize()
                )
            except DhtError:
                # All master-block replica holders are momentarily offline;
                # the local master is current and the next pass republishes.
                pass
        return outcome

    def _download_blocks(
        self, archive_id: str, visible: Dict[int, int], needed: int
    ) -> Optional[Dict[int, CodedBlock]]:
        """Fetch any ``needed`` blocks from visible partners."""
        import hashlib

        swarm = self.node.swarm
        collected: Dict[int, CodedBlock] = {}
        for index, partner_id in visible.items():
            if len(collected) >= needed:
                break
            reply = swarm.transport.try_send(
                FetchRequest(
                    sender=self.node.peer_id,
                    recipient=partner_id,
                    archive_id=archive_id,
                    block_index=index,
                )
            )
            if isinstance(reply, FetchReply) and reply.payload is not None:
                collected[index] = CodedBlock(
                    index=index,
                    payload=reply.payload,
                    checksum=hashlib.sha256(reply.payload).hexdigest(),
                )
        if len(collected) < needed:
            return None
        return collected

    def _reupload(
        self,
        archive_id: str,
        blocks: Dict[int, CodedBlock],
        missing: List[int],
        current_partners: set,
    ) -> Dict[int, int]:
        """Regenerate missing blocks and place them on new partners."""
        swarm = self.node.swarm
        replaced: Dict[int, int] = {}
        used = set(current_partners)
        candidates = swarm.candidates_for(self.node, exclude=used)
        ranked = swarm.strategy.rank(candidates, swarm.rng)
        ages = {c.peer_id: c.age for c in candidates}
        for index in missing:
            try:
                regenerated = swarm.codec.repair_block(blocks, index)
            except ErasureCodingError:
                continue
            partner_id = self._recruit(ranked, used, ages)
            if partner_id is None:
                break
            reply = swarm.transport.try_send(
                StoreRequest(
                    sender=self.node.peer_id,
                    recipient=partner_id,
                    archive_id=archive_id,
                    block_index=index,
                    payload=regenerated.payload,
                )
            )
            if isinstance(reply, StoreReply) and reply.accepted:
                replaced[index] = partner_id
                used.add(partner_id)
                self.node.ledger.record_stored_by(partner_id)
        return replaced

    def _recruit(
        self, ranked: List[int], used: set, ages: Dict[int, float]
    ) -> Optional[int]:
        while ranked:
            candidate_id = ranked.pop(0)
            if candidate_id in used:
                continue
            outcome = self._protocol.propose(
                self.node.peer_id,
                self.node.age(),
                candidate_id,
                ages.get(candidate_id, 0.0),
            )
            if outcome.agreed:
                return candidate_id
        return None
