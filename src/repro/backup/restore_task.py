"""The restoration task (paper section 2.2.2).

"The restoration task is done in the exact opposite order of the backup
task.  The master block is first retrieved from the network [...].
Meta-data archives are then downloaded to build an index of all the
files stored in the backup.  [...] The data archives are then downloaded
to restore the files on the computer, using the deciphered session keys
to decrypt the files if needed."
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..erasure.codec import CodedBlock
from ..erasure.reed_solomon import ErasureCodingError
from ..net.message import FetchReply, FetchRequest
from .archive import Archive, parse_metadata_archive
from .client import BackupSwarm
from .manifest import ArchiveRecord, ManifestError, MasterBlock, master_block_key


class RestoreError(Exception):
    """Raised when a restore cannot complete."""


@dataclass
class RestoreReport:
    """What a restore run recovered."""

    owner_id: int
    files: Dict[str, bytes] = field(default_factory=dict)
    restored_archives: List[str] = field(default_factory=list)
    unreachable_archives: List[str] = field(default_factory=list)
    metadata_index: Dict[str, list] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when no archive was unreachable."""
        return not self.unreachable_archives


class RestoreTask:
    """Restore a user's files from the network alone.

    Deliberately takes only the swarm, the user's id and personal key —
    the situation after a disk loss: no local archives, no local master
    block.
    """

    def __init__(self, swarm: BackupSwarm, owner_id: int, user_key: bytes):
        self.swarm = swarm
        self.owner_id = owner_id
        self.user_key = user_key

    def run(self) -> RestoreReport:
        """Execute the full restore pipeline."""
        master = self.fetch_master_block()
        report = RestoreReport(owner_id=self.owner_id)

        # Metadata archives first (they index the data archives).
        for record in master.metadata_archives():
            archive = self._fetch_archive(record)
            if archive is None:
                report.unreachable_archives.append(record.archive_id)
                continue
            report.restored_archives.append(record.archive_id)
            for archive_id, entries in parse_metadata_archive(archive).items():
                report.metadata_index[archive_id] = entries

        chunked: Dict[str, Dict[int, bytes]] = {}
        for record in master.archives.values():
            if record.is_metadata:
                continue
            archive = self._fetch_archive(record)
            if archive is None:
                report.unreachable_archives.append(record.archive_id)
                continue
            report.restored_archives.append(record.archive_id)
            for entry in archive.open():
                self._collect_entry(report.files, chunked, entry.name, entry.content)
        for name, parts in chunked.items():
            report.files[name] = b"".join(
                parts[index] for index in sorted(parts)
            )
        return report

    @staticmethod
    def _collect_entry(
        files: Dict[str, bytes],
        chunked: Dict[str, Dict[int, bytes]],
        name: str,
        content: bytes,
    ) -> None:
        """Route an entry to ``files`` or to the chunk-reassembly buffer."""
        marker = "::part"
        position = name.rfind(marker)
        if position == -1:
            files[name] = content
            return
        base, suffix = name[:position], name[position + len(marker):]
        if suffix.isdigit():
            chunked.setdefault(base, {})[int(suffix)] = content
        else:
            files[name] = content

    # ------------------------------------------------------------------
    def fetch_master_block(self) -> MasterBlock:
        """Step one: the master block from the DHT."""
        payload = self.swarm.dht.get(master_block_key(self.owner_id))
        if payload is None:
            raise RestoreError(
                f"master block of peer {self.owner_id} not found in the DHT"
            )
        try:
            return MasterBlock.deserialize(payload)
        except ManifestError as error:
            raise RestoreError(f"corrupt master block: {error}") from error

    def _fetch_archive(self, record: ArchiveRecord) -> Optional[Archive]:
        """Gather any k blocks of one archive and decode it."""
        collected: Dict[int, CodedBlock] = {}
        needed = self.swarm.codec.k
        for block_index, partner_id in enumerate(record.partners):
            if len(collected) >= needed:
                break
            if partner_id < 0:
                continue
            reply = self.swarm.transport.try_send(
                FetchRequest(
                    sender=self.owner_id,
                    recipient=partner_id,
                    archive_id=record.archive_id,
                    block_index=block_index,
                )
            )
            if (
                isinstance(reply, FetchReply)
                and reply.payload is not None
            ):
                collected[block_index] = CodedBlock(
                    index=block_index,
                    payload=reply.payload,
                    checksum=_checksum(reply.payload),
                )
        if len(collected) < needed:
            return None
        try:
            payload = self.swarm.codec.reassemble(collected)
        except ErasureCodingError:
            return None
        session_key = record.session_key(self.user_key)
        return Archive(
            archive_id=record.archive_id,
            payload=payload,
            session_key=session_key,
            is_metadata=record.is_metadata,
        )


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def restore_files(
    swarm: BackupSwarm, owner_id: int, user_key: bytes
) -> Dict[str, bytes]:
    """One-call restore; raises :class:`RestoreError` when incomplete."""
    report = RestoreTask(swarm, owner_id, user_key).run()
    if not report.complete:
        raise RestoreError(
            f"unreachable archives: {report.unreachable_archives}"
        )
    return report.files
