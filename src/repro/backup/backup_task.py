"""The backup task (paper section 2.2.1).

Collect files into archives, erasure-code each archive into ``n``
blocks, upload the blocks to ``n`` mutually accepted partners, then
build the master block and publish it (here: to the DHT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..net.message import StoreReply, StoreRequest
from .archive import Archive, ArchiveBuilder, build_metadata_archive, iter_chunks
from .client import BackupNode
from .partnership import PartnershipProtocol

#: Suffix marking one chunk of a file too large for a single archive;
#: the restore task strips it and reassembles chunks in order.
CHUNK_SUFFIX = "::part{:05d}"


class BackupError(Exception):
    """Raised when a backup cannot be completed."""


@dataclass
class ArchivePlacement:
    """Where one archive's blocks ended up."""

    archive_id: str
    partners: List[int] = field(default_factory=list)  # by block index
    failed_blocks: List[int] = field(default_factory=list)


@dataclass
class BackupReport:
    """Outcome of one backup run."""

    owner_id: int
    placements: List[ArchivePlacement] = field(default_factory=list)
    master_block_replicas: int = 0

    @property
    def complete(self) -> bool:
        """True when every block of every archive found a partner."""
        return all(not p.failed_blocks for p in self.placements)


class BackupTask:
    """Drives one full backup of a node's files."""

    def __init__(self, node: BackupNode, archive_size: int = 4096):
        self.node = node
        self.archive_size = archive_size
        self._protocol = PartnershipProtocol(
            node.swarm.transport, node.swarm.acceptance, node.rng
        )

    def run(self, files: Dict[str, bytes]) -> BackupReport:
        """Back up ``files`` (name -> content); returns the placement report."""
        if not files:
            raise BackupError("nothing to back up")
        swarm = self.node.swarm
        report = BackupReport(owner_id=self.node.peer_id)

        archives = self._build_archives(files)
        for archive in archives:
            self.node.local_archives[archive.archive_id] = archive
            placement = self._place_archive(archive)
            report.placements.append(placement)
            self.node.master.add_archive(
                archive_id=archive.archive_id,
                is_metadata=archive.is_metadata,
                size=archive.size,
                partners=placement.partners,
                session_key=archive.session_key,
                user_key=self.node.user_key,
            )

        report.master_block_replicas = swarm.dht.put(
            self.node.master.dht_key(), self.node.master.serialize()
        )
        return report

    # ------------------------------------------------------------------
    def _build_archives(self, files: Dict[str, bytes]) -> List[Archive]:
        builder = ArchiveBuilder(
            max_size=self.archive_size,
            owner_tag=f"peer{self.node.peer_id}",
        )
        archives: List[Archive] = []
        index: Dict[str, List[Tuple[str, int]]] = {}
        pending: List[Tuple[str, int]] = []
        # Leave generous room for the entry header and chunk-suffixed name.
        chunk_budget = max(self.archive_size - 512, 1)
        for name in sorted(files):
            content = files[name]
            for chunk_name, chunk in self._chunks(name, content, chunk_budget):
                sealed = builder.add_file(chunk_name, chunk)
                for archive in sealed:
                    index[archive.archive_id] = pending
                    pending = []
                    archives.append(archive)
                pending.append((chunk_name, len(chunk)))
        for archive in builder.flush():
            index[archive.archive_id] = pending
            pending = []
            archives.append(archive)
        # Metadata archive last: it indexes everything (paper stores it
        # "with a better redundancy"; here redundancy is uniform and the
        # better-protection aspect is carried by the DHT-replicated
        # master block).
        archives.append(
            build_metadata_archive(f"peer{self.node.peer_id}", index)
        )
        return archives

    @staticmethod
    def _chunks(name: str, content: bytes, chunk_budget: int):
        """Yield ``(entry name, bytes)`` pairs, chunking oversized files."""
        if len(content) <= chunk_budget:
            yield name, content
            return
        for part, chunk in enumerate(iter_chunks(content, chunk_budget)):
            yield name + CHUNK_SUFFIX.format(part), chunk

    def _place_archive(self, archive: Archive) -> ArchivePlacement:
        swarm = self.node.swarm
        blocks = swarm.codec.split(archive.payload)
        placement = ArchivePlacement(archive_id=archive.archive_id)
        used = set()
        ranked = self._ranked_partners(used, needed=len(blocks))
        for block in blocks:
            partner_id = self._next_agreeing_partner(ranked, used)
            if partner_id is None:
                placement.partners.append(-1)
                placement.failed_blocks.append(block.index)
                continue
            reply = swarm.transport.try_send(
                StoreRequest(
                    sender=self.node.peer_id,
                    recipient=partner_id,
                    archive_id=archive.archive_id,
                    block_index=block.index,
                    payload=block.payload,
                )
            )
            if isinstance(reply, StoreReply) and reply.accepted:
                placement.partners.append(partner_id)
                used.add(partner_id)
                self.node.ledger.record_stored_by(partner_id)
            else:
                placement.partners.append(-1)
                placement.failed_blocks.append(block.index)
        return placement

    def _ranked_partners(self, used: set, needed: int) -> List[int]:
        swarm = self.node.swarm
        candidates = swarm.candidates_for(self.node, exclude=used)
        return swarm.strategy.rank(candidates, swarm.rng)

    def _next_agreeing_partner(self, ranked: List[int], used: set):
        swarm = self.node.swarm
        while ranked:
            candidate_id = ranked.pop(0)
            if candidate_id in used:
                continue
            candidate = swarm.nodes[candidate_id]
            outcome = self._protocol.propose(
                self.node.peer_id,
                self.node.age(),
                candidate_id,
                candidate.age(),
            )
            if outcome.agreed:
                return candidate_id
        return None
