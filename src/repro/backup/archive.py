"""Archives: how user files become fixed-size backup units.

Paper section 2.2.1: "new data (either the content of complete files or
the diffs between versions) is collected on the file-system, and is
stored in a single file (archive).  A new archive is created when the
previous one reaches a given size.  Usually, meta-data is stored in a
different archive, with a better redundancy [...] data in each archive
can be encrypted using a session key."

This module implements the archive container format (a simple length-
prefixed file bundle), the size-based rollover, and the session-key
stream cipher.  The cipher is a keystream XOR built from SHA-256 — a
stand-in for "standard cryptography" (the paper explicitly leaves the
choice open); it gives confidentiality-shaped behaviour (wrong key ⇒
garbage) without an external dependency.
"""

from __future__ import annotations

import hashlib
import itertools
import secrets  # replint: disable=R001 (session keys only; see new_session_key)
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: File-entry framing: name length, payload length.
_ENTRY_HEADER = struct.Struct(">HQ")

#: Paper default: archives roll over at 128 MB.  Tests and examples use
#: much smaller values; the format is size-agnostic.
DEFAULT_ARCHIVE_SIZE = 128 * 1024 * 1024


class ArchiveFormatError(Exception):
    """Raised when parsing a malformed archive payload."""


def _keystream(key: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes derived from ``key``."""
    blocks = []
    produced = 0
    for counter in itertools.count():
        if produced >= length:
            break
        block = hashlib.sha256(key + counter.to_bytes(8, "big")).digest()
        blocks.append(block)
        produced += len(block)
    return b"".join(blocks)[:length]


def encrypt(payload: bytes, key: bytes) -> bytes:
    """XOR-keystream encryption (symmetric; ``encrypt == decrypt``)."""
    if not key:
        raise ValueError("encryption key must be non-empty")
    stream = _keystream(key, len(payload))
    return bytes(a ^ b for a, b in zip(payload, stream))


def decrypt(payload: bytes, key: bytes) -> bytes:
    """Inverse of :func:`encrypt` (the cipher is an involution)."""
    return encrypt(payload, key)


def new_session_key() -> bytes:
    """A fresh random 32-byte session key."""
    # Session keys are real cryptographic material, so OS entropy is
    # the *correct* source: they encrypt archive payloads but never
    # feed simulation control flow or metrics (block placement and
    # repair accounting are content-blind).
    return secrets.token_bytes(32)  # replint: disable=R001


@dataclass(frozen=True)
class FileEntry:
    """One file captured into an archive."""

    name: str
    content: bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("file name must be non-empty")
        if len(self.name.encode("utf-8")) > 0xFFFF:
            raise ValueError("file name too long for the archive format")

    @property
    def size(self) -> int:
        """Serialised size of this entry inside an archive."""
        return _ENTRY_HEADER.size + len(self.name.encode("utf-8")) + len(self.content)


def pack_entries(entries: List[FileEntry]) -> bytes:
    """Serialise file entries into one archive payload."""
    parts = []
    for entry in entries:
        name_bytes = entry.name.encode("utf-8")
        parts.append(_ENTRY_HEADER.pack(len(name_bytes), len(entry.content)))
        parts.append(name_bytes)
        parts.append(entry.content)
    return b"".join(parts)


def unpack_entries(payload: bytes) -> List[FileEntry]:
    """Parse an archive payload back into file entries."""
    entries = []
    offset = 0
    while offset < len(payload):
        if offset + _ENTRY_HEADER.size > len(payload):
            raise ArchiveFormatError("truncated entry header")
        name_length, content_length = _ENTRY_HEADER.unpack_from(payload, offset)
        offset += _ENTRY_HEADER.size
        end_of_name = offset + name_length
        end_of_content = end_of_name + content_length
        if end_of_content > len(payload):
            raise ArchiveFormatError("truncated entry body")
        name = payload[offset:end_of_name].decode("utf-8")
        content = payload[end_of_name:end_of_content]
        entries.append(FileEntry(name=name, content=content))
        offset = end_of_content
    return entries


@dataclass(frozen=True)
class Archive:
    """A sealed archive ready for erasure coding.

    ``payload`` is already encrypted when ``session_key`` is set.
    ``is_metadata`` marks the index archives the paper stores "with a
    better redundancy, to speed up the restoration task".
    """

    archive_id: str
    payload: bytes
    session_key: bytes = b""
    is_metadata: bool = False

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def open(self) -> List[FileEntry]:
        """Decrypt (when keyed) and parse the contained files."""
        raw = decrypt(self.payload, self.session_key) if self.session_key else self.payload
        return unpack_entries(raw)


@dataclass
class ArchiveBuilder:
    """Accumulates files and seals archives at the size limit.

    Mirrors the backup task's collection phase: call :meth:`add_file`
    repeatedly; sealed archives appear in order; call :meth:`flush` at
    the end for the final partial archive.
    """

    max_size: int = DEFAULT_ARCHIVE_SIZE
    encrypt_payloads: bool = True
    owner_tag: str = "peer"
    _pending: List[FileEntry] = field(default_factory=list)
    _pending_size: int = 0
    _sealed: int = 0

    def __post_init__(self) -> None:
        if self.max_size <= _ENTRY_HEADER.size:
            raise ValueError("max_size too small to hold any entry")

    def add_file(self, name: str, content: bytes) -> List[Archive]:
        """Add one file; returns archives sealed by this addition."""
        entry = FileEntry(name=name, content=content)
        if entry.size > self.max_size:
            raise ValueError(
                f"file {name!r} ({entry.size} B) exceeds the archive size "
                f"{self.max_size} B; split it before backup"
            )
        sealed = []
        if self._pending_size + entry.size > self.max_size:
            sealed.append(self._seal())
        self._pending.append(entry)
        self._pending_size += entry.size
        return sealed

    def flush(self) -> List[Archive]:
        """Seal whatever is pending (possibly nothing)."""
        if not self._pending:
            return []
        return [self._seal()]

    def _seal(self) -> Archive:
        payload = pack_entries(self._pending)
        key = b""
        if self.encrypt_payloads:
            key = new_session_key()
            payload = encrypt(payload, key)
        archive = Archive(
            archive_id=f"{self.owner_tag}-archive-{self._sealed:06d}",
            payload=payload,
            session_key=key,
        )
        self._sealed += 1
        self._pending = []
        self._pending_size = 0
        return archive


def build_metadata_archive(
    owner_tag: str, index: Dict[str, List[Tuple[str, int]]]
) -> Archive:
    """Build the unencrypted metadata archive (file index per archive).

    ``index`` maps archive ids to ``(file name, size)`` pairs.  Metadata
    travels unencrypted in this reproduction; the paper encrypts it the
    same way but nothing downstream depends on that.
    """
    lines = []
    for archive_id in sorted(index):
        for name, size in index[archive_id]:
            lines.append(f"{archive_id}\t{name}\t{size}")
    payload = "\n".join(lines).encode("utf-8")
    return Archive(
        archive_id=f"{owner_tag}-metadata",
        payload=payload,
        is_metadata=True,
    )


def parse_metadata_archive(archive: Archive) -> Dict[str, List[Tuple[str, int]]]:
    """Inverse of :func:`build_metadata_archive`."""
    if not archive.is_metadata:
        raise ArchiveFormatError("not a metadata archive")
    index: Dict[str, List[Tuple[str, int]]] = {}
    text = archive.payload.decode("utf-8")
    if not text:
        return index
    for line in text.split("\n"):
        try:
            archive_id, name, size = line.split("\t")
        except ValueError:
            raise ArchiveFormatError(f"malformed metadata line: {line!r}") from None
        index.setdefault(archive_id, []).append((name, int(size)))
    return index


def iter_chunks(content: bytes, chunk_size: int) -> Iterator[bytes]:
    """Split oversized file content into archive-sized chunks."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for start in range(0, len(content), chunk_size):
        yield content[start:start + chunk_size]
