"""Direct-exchange fairness accounting (paper section 2.2.1).

"If the backup system contains a direct exchange mechanism, these n
partners will be allowed to store one or more blocks of data on the peer
in exchange for the space they have provided.  Some systems might prefer
a more global policy of fairness, where space is exchanged globally (see
[7] for example) instead of between partners."

This module implements both accountings:

* :class:`ExchangeLedger` — the pairwise (Samsara-style [7]) view: per
  partner, blocks I store for them vs blocks they store for me, with a
  debt test used to refuse storage to free-riding partners;
* :class:`GlobalFairness` — the global view: one ratio of contributed vs
  consumed space per peer across the whole system.

The byte-level client enforces the pairwise policy when the swarm is
built with a ``fairness_factor`` (see :class:`repro.backup.client.BackupSwarm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ExchangeBalance:
    """Pairwise storage balance with one partner, in blocks."""

    stored_for_partner: int = 0   # blocks I hold for them
    stored_by_partner: int = 0    # blocks they hold for me

    @property
    def debt(self) -> int:
        """How many more blocks the partner consumes than it provides.

        The partner consumes my space through ``stored_for_partner`` and
        provides space through ``stored_by_partner``; positive debt
        means the partner owes me.
        """
        return self.stored_for_partner - self.stored_by_partner


class ExchangeLedger:
    """Per-peer pairwise exchange accounting.

    Parameters
    ----------
    grace_blocks:
        Debt every partner is allowed before enforcement kicks in; a
        newcomer that has not been asked to store anything yet must
        still be able to place its first blocks (the same bootstrapping
        concern the acceptation function's ``1/L`` floor addresses).
    """

    def __init__(self, grace_blocks: int = 4):
        if grace_blocks < 0:
            raise ValueError("grace_blocks cannot be negative")
        self.grace_blocks = grace_blocks
        self._balances: Dict[int, ExchangeBalance] = {}

    def balance_with(self, partner_id: int) -> ExchangeBalance:
        """Fetch-or-create the balance with one partner."""
        return self._balances.setdefault(partner_id, ExchangeBalance())

    def record_stored_for(self, partner_id: int, blocks: int = 1) -> None:
        """I accepted ``blocks`` of the partner's data."""
        if blocks < 0:
            raise ValueError("blocks cannot be negative")
        self.balance_with(partner_id).stored_for_partner += blocks

    def record_stored_by(self, partner_id: int, blocks: int = 1) -> None:
        """The partner accepted ``blocks`` of my data."""
        if blocks < 0:
            raise ValueError("blocks cannot be negative")
        self.balance_with(partner_id).stored_by_partner += blocks

    def record_released_for(self, partner_id: int, blocks: int = 1) -> None:
        """I dropped ``blocks`` of the partner's data."""
        balance = self.balance_with(partner_id)
        balance.stored_for_partner = max(balance.stored_for_partner - blocks, 0)

    def record_released_by(self, partner_id: int, blocks: int = 1) -> None:
        """The partner dropped ``blocks`` of my data."""
        balance = self.balance_with(partner_id)
        balance.stored_by_partner = max(balance.stored_by_partner - blocks, 0)

    def would_exceed_debt(
        self, partner_id: int, fairness_factor: float, extra_blocks: int = 1
    ) -> bool:
        """Would accepting ``extra_blocks`` push the partner past its debt cap?

        The cap is ``fairness_factor x stored_by_partner + grace``: a
        partner may consume up to ``fairness_factor`` times the space it
        provides to me, plus the bootstrap grace.
        """
        if fairness_factor <= 0:
            raise ValueError("fairness_factor must be positive")
        balance = self.balance_with(partner_id)
        ceiling = fairness_factor * balance.stored_by_partner + self.grace_blocks
        return balance.stored_for_partner + extra_blocks > ceiling

    def debtors(self) -> List[Tuple[int, int]]:
        """Partners sorted by decreasing debt (positive = they owe me)."""
        entries = [
            (partner, balance.debt) for partner, balance in self._balances.items()
        ]
        return sorted(entries, key=lambda item: -item[1])

    def totals(self) -> ExchangeBalance:
        """Aggregate balance across all partners."""
        total = ExchangeBalance()
        for balance in self._balances.values():
            total.stored_for_partner += balance.stored_for_partner
            total.stored_by_partner += balance.stored_by_partner
        return total


@dataclass
class GlobalFairness:
    """System-wide contributed/consumed accounting (the [7]-style policy)."""

    contributed: Dict[int, int] = field(default_factory=dict)  # blocks hosted
    consumed: Dict[int, int] = field(default_factory=dict)     # blocks placed

    def record_hosting(self, peer_id: int, blocks: int = 1) -> None:
        """``peer_id`` stores ``blocks`` for someone."""
        self.contributed[peer_id] = self.contributed.get(peer_id, 0) + blocks

    def record_placement(self, peer_id: int, blocks: int = 1) -> None:
        """``peer_id`` placed ``blocks`` of its own data in the system."""
        self.consumed[peer_id] = self.consumed.get(peer_id, 0) + blocks

    def ratio(self, peer_id: int) -> float:
        """Contribution ratio: hosted / placed (inf for pure contributors)."""
        placed = self.consumed.get(peer_id, 0)
        hosted = self.contributed.get(peer_id, 0)
        if placed == 0:
            return float("inf") if hosted else 1.0
        return hosted / placed

    def free_riders(self, minimum_ratio: float = 1.0) -> List[int]:
        """Peers contributing less than ``minimum_ratio`` of their usage."""
        if minimum_ratio <= 0:
            raise ValueError("minimum_ratio must be positive")
        riders = []
        peers = set(self.contributed) | set(self.consumed)
        for peer_id in peers:
            if self.ratio(peer_id) < minimum_ratio:
                riders.append(peer_id)
        return sorted(riders)

    def gini_coefficient(self) -> float:
        """Inequality of contribution ratios across peers (0 = equal).

        Infinite ratios are clipped to the largest finite one; an empty
        or single-peer system reports 0.
        """
        peers = sorted(set(self.contributed) | set(self.consumed))
        if len(peers) < 2:
            return 0.0
        ratios = [self.ratio(p) for p in peers]
        finite = [r for r in ratios if r != float("inf")]
        ceiling = max(finite) if finite else 1.0
        values = sorted(min(r, ceiling) for r in ratios)
        total = sum(values)
        if total == 0:
            return 0.0
        n = len(values)
        cumulative = sum((index + 1) * value for index, value in enumerate(values))
        return (2.0 * cumulative) / (n * total) - (n + 1.0) / n
