"""Master block: the root of a peer's backup (paper section 2.2.1).

"Finally, a master block is created.  It contains the list of peers on
which data has been stored, the list of archives, in particular the ones
containing meta-data, and session keys, encrypted with the user public
key [...].  The master block is then uploaded to the network, for
example to all the partners storing the peer's data or to a DHT."

The master block is the only thing a user who lost everything needs to
find again; its serialisation is a small explicit binary format (no
pickle — the block travels through untrusted peers).  Session keys are
sealed with the user's personal key using the same keystream cipher the
archives use.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List

from .archive import decrypt, encrypt

_MAGIC = b"P2PBKUP1"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class ManifestError(Exception):
    """Raised on malformed or wrongly keyed master blocks."""


@dataclass
class ArchiveRecord:
    """Placement record for one archive."""

    archive_id: str
    is_metadata: bool
    size: int
    partners: List[int] = field(default_factory=list)  # partner ids by block index
    sealed_session_key: bytes = b""

    def session_key(self, user_key: bytes) -> bytes:
        """Unseal the session key with the user's personal key."""
        if not self.sealed_session_key:
            return b""
        return decrypt(self.sealed_session_key, user_key)


@dataclass
class MasterBlock:
    """The complete placement state of one user's backup."""

    owner_id: int
    archives: Dict[str, ArchiveRecord] = field(default_factory=dict)

    def add_archive(
        self,
        archive_id: str,
        is_metadata: bool,
        size: int,
        partners: List[int],
        session_key: bytes,
        user_key: bytes,
    ) -> None:
        """Register (or replace) an archive's placement."""
        sealed = encrypt(session_key, user_key) if session_key else b""
        self.archives[archive_id] = ArchiveRecord(
            archive_id=archive_id,
            is_metadata=is_metadata,
            size=size,
            partners=list(partners),
            sealed_session_key=sealed,
        )

    def update_partner(self, archive_id: str, block_index: int, partner_id: int) -> None:
        """Record that a block moved to a new partner (after a repair)."""
        record = self.archives.get(archive_id)
        if record is None:
            raise ManifestError(f"unknown archive {archive_id!r}")
        if not 0 <= block_index < len(record.partners):
            raise ManifestError(
                f"block index {block_index} out of range for {archive_id!r}"
            )
        record.partners[block_index] = partner_id

    def metadata_archives(self) -> List[ArchiveRecord]:
        """The records flagged as metadata (restored first)."""
        return [r for r in self.archives.values() if r.is_metadata]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        """Encode to the wire format, with a trailing integrity digest."""
        parts = [_MAGIC, _U64.pack(self.owner_id), _U32.pack(len(self.archives))]
        for archive_id in sorted(self.archives):
            record = self.archives[archive_id]
            encoded_id = archive_id.encode("utf-8")
            parts.append(_U32.pack(len(encoded_id)))
            parts.append(encoded_id)
            parts.append(b"\x01" if record.is_metadata else b"\x00")
            parts.append(_U64.pack(record.size))
            parts.append(_U32.pack(len(record.partners)))
            for partner in record.partners:
                parts.append(_U64.pack(partner))
            parts.append(_U32.pack(len(record.sealed_session_key)))
            parts.append(record.sealed_session_key)
        body = b"".join(parts)
        return body + hashlib.sha256(body).digest()

    @classmethod
    def deserialize(cls, payload: bytes) -> "MasterBlock":
        """Decode the wire format, verifying magic and digest."""
        if len(payload) < len(_MAGIC) + 32:
            raise ManifestError("master block too short")
        body, digest = payload[:-32], payload[-32:]
        if hashlib.sha256(body).digest() != digest:
            raise ManifestError("master block integrity check failed")
        if not body.startswith(_MAGIC):
            raise ManifestError("bad master block magic")
        offset = len(_MAGIC)

        def read(fmt: struct.Struct):
            nonlocal offset
            if offset + fmt.size > len(body):
                raise ManifestError("truncated master block")
            (value,) = fmt.unpack_from(body, offset)
            offset += fmt.size
            return value

        def read_bytes(length: int) -> bytes:
            nonlocal offset
            if offset + length > len(body):
                raise ManifestError("truncated master block")
            value = body[offset:offset + length]
            offset += length
            return value

        owner_id = read(_U64)
        archive_count = read(_U32)
        block = cls(owner_id=owner_id)
        for _ in range(archive_count):
            id_length = read(_U32)
            archive_id = read_bytes(id_length).decode("utf-8")
            is_metadata = read_bytes(1) == b"\x01"
            size = read(_U64)
            partner_count = read(_U32)
            partners = [read(_U64) for _ in range(partner_count)]
            key_length = read(_U32)
            sealed = read_bytes(key_length)
            block.archives[archive_id] = ArchiveRecord(
                archive_id=archive_id,
                is_metadata=is_metadata,
                size=size,
                partners=partners,
                sealed_session_key=sealed,
            )
        if offset != len(body):
            raise ManifestError("trailing bytes in master block")
        return block

    def dht_key(self) -> str:
        """The DHT key under which this master block is published."""
        return master_block_key(self.owner_id)


def master_block_key(owner_id: int) -> str:
    """Deterministic DHT key for a user's master block."""
    return f"master-block/{owner_id}"
