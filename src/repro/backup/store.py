"""Local block storage with quota accounting.

Every peer "provides storage for at most `quota` blocks in total to its
partners" (paper section 4.1).  The store tracks blocks by
``(owner, archive, block index)``, enforces the quota, and answers the
fetch/store/release requests of the transport-level protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..erasure.codec import CodedBlock

BlockKey = Tuple[int, str, int]  # (owner peer id, archive id, block index)


class QuotaExceededError(Exception):
    """Raised when a store request does not fit the quota."""


@dataclass(frozen=True)
class StoredBlock:
    """A block plus its provenance."""

    owner_id: int
    archive_id: str
    block: CodedBlock


class BlockStore:
    """Quota-bounded block storage of one peer."""

    def __init__(self, quota_blocks: int):
        if quota_blocks < 0:
            raise ValueError("quota cannot be negative")
        self.quota_blocks = quota_blocks
        self._blocks: Dict[BlockKey, StoredBlock] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def free_blocks(self) -> int:
        """Remaining capacity in blocks."""
        return self.quota_blocks - len(self._blocks)

    def can_store(self) -> bool:
        """Whether one more block fits."""
        return self.free_blocks > 0

    def store(self, owner_id: int, archive_id: str, block: CodedBlock) -> None:
        """Store a block for a partner; idempotent per key.

        Raises :class:`QuotaExceededError` when the store is full and the
        key is new.
        """
        key = (owner_id, archive_id, block.index)
        if key not in self._blocks and not self.can_store():
            raise QuotaExceededError(
                f"store full ({len(self._blocks)}/{self.quota_blocks} blocks)"
            )
        self._blocks[key] = StoredBlock(owner_id, archive_id, block)

    def fetch(
        self, owner_id: int, archive_id: str, block_index: int
    ) -> Optional[CodedBlock]:
        """Return the requested block, or ``None`` when absent."""
        stored = self._blocks.get((owner_id, archive_id, block_index))
        return stored.block if stored else None

    def release(self, owner_id: int, archive_id: str, block_index: int) -> bool:
        """Delete one block; returns whether it existed."""
        return self._blocks.pop((owner_id, archive_id, block_index), None) is not None

    def release_owner(self, owner_id: int) -> int:
        """Delete every block of one owner (it left); returns the count."""
        keys = [key for key in self._blocks if key[0] == owner_id]
        for key in keys:
            del self._blocks[key]
        return len(keys)

    def blocks_for(self, owner_id: int) -> List[StoredBlock]:
        """All blocks currently held for one owner."""
        return [b for key, b in self._blocks.items() if key[0] == owner_id]

    def owners(self) -> Iterator[int]:
        """Distinct owners with at least one stored block."""
        return iter({key[0] for key in self._blocks})

    def usage_by_owner(self) -> Dict[int, int]:
        """Blocks held per owner (fairness/auditing views)."""
        usage: Dict[int, int] = {}
        for owner_id, _, _ in self._blocks:
            usage[owner_id] = usage.get(owner_id, 0) + 1
        return usage
