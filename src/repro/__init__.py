"""repro — reproduction of Bernard & Le Fessant, "Optimizing peer-to-peer
backup using lifetime estimations" (Damap'09 / EDBT workshops, 2009).

The public API has four layers:

* :mod:`repro.core` — the paper's contribution: the acceptation function,
  age categories, lifetime estimation, partner-selection strategies and
  the threshold-repair policy;
* :mod:`repro.sim` — the round-based simulator used for the evaluation;
* :mod:`repro.erasure`, :mod:`repro.churn`, :mod:`repro.net` — the
  substrates (Reed-Solomon coding, churn models, transport/cost/DHT);
* :mod:`repro.backup` — a byte-level backup client on those substrates;
* :mod:`repro.experiments` — drivers regenerating every figure and table.

Quick start::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig.scaled(population=300, rounds=2000))
    print(result.repair_rates())
"""

# Dependency-free layers first: the registries and the erasure substrate
# import (and work) without numpy.
from .erasure import ArchiveCodec, ReedSolomonCode
from .registry import Registry, UnknownComponentError

try:
    from .core import (
        AcceptancePolicy,
        AgeSelection,
        Candidate,
        RepairPolicy,
        acceptance_probability,
        fit_pareto,
        scaled_threshold,
        strategy_by_name,
    )
    from .net import CostModel, paper_cost_table
    from .scenarios import (
        Scenario,
        available_scenarios,
        register_scenario,
        scenario_by_name,
    )
    from .sim import (
        FIDELITY_BACKENDS,
        PAPER_OBSERVERS,
        ObserverSpec,
        ProtocolSimulation,
        Simulation,
        SimulationConfig,
        SimulationResult,
        available_fidelities,
        run_simulation,
    )
except ImportError as _exc:  # pragma: no cover - exercised with numpy blocked
    # numpy is missing: the simulator, scenarios and analysis layers are
    # unavailable, but the erasure codec (with its pure-python matrix
    # backend) and the registry machinery still work.  Any other import
    # failure is a real bug and must surface.
    if _exc.name != "numpy" and not (_exc.name or "").startswith("numpy."):
        raise

__version__ = "1.0.0"

_ALL_CANDIDATES = [
    "AcceptancePolicy",
    "AgeSelection",
    "Candidate",
    "RepairPolicy",
    "acceptance_probability",
    "fit_pareto",
    "scaled_threshold",
    "strategy_by_name",
    "ArchiveCodec",
    "ReedSolomonCode",
    "Registry",
    "UnknownComponentError",
    "Scenario",
    "available_scenarios",
    "register_scenario",
    "scenario_by_name",
    "CostModel",
    "paper_cost_table",
    "FIDELITY_BACKENDS",
    "PAPER_OBSERVERS",
    "ObserverSpec",
    "ProtocolSimulation",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "available_fidelities",
    "run_simulation",
    "__version__",
]

#: Only names that actually bound (the simulator layer is absent in the
#: numpy-free degraded mode, and star imports must stay valid there).
__all__ = [name for name in _ALL_CANDIDATES if name in globals()]
