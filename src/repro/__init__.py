"""repro — reproduction of Bernard & Le Fessant, "Optimizing peer-to-peer
backup using lifetime estimations" (Damap'09 / EDBT workshops, 2009).

The public API has four layers:

* :mod:`repro.core` — the paper's contribution: the acceptation function,
  age categories, lifetime estimation, partner-selection strategies and
  the threshold-repair policy;
* :mod:`repro.sim` — the round-based simulator used for the evaluation;
* :mod:`repro.erasure`, :mod:`repro.churn`, :mod:`repro.net` — the
  substrates (Reed-Solomon coding, churn models, transport/cost/DHT);
* :mod:`repro.backup` — a byte-level backup client on those substrates;
* :mod:`repro.experiments` — drivers regenerating every figure and table.

Quick start::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig.scaled(population=300, rounds=2000))
    print(result.repair_rates())
"""

from .core import (
    AcceptancePolicy,
    AgeSelection,
    Candidate,
    RepairPolicy,
    acceptance_probability,
    fit_pareto,
    scaled_threshold,
    strategy_by_name,
)
from .erasure import ArchiveCodec, ReedSolomonCode
from .net import CostModel, paper_cost_table
from .sim import (
    PAPER_OBSERVERS,
    ObserverSpec,
    Simulation,
    SimulationConfig,
    SimulationResult,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "AcceptancePolicy",
    "AgeSelection",
    "Candidate",
    "RepairPolicy",
    "acceptance_probability",
    "fit_pareto",
    "scaled_threshold",
    "strategy_by_name",
    "ArchiveCodec",
    "ReedSolomonCode",
    "CostModel",
    "paper_cost_table",
    "PAPER_OBSERVERS",
    "ObserverSpec",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "__version__",
]
