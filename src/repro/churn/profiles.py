"""Peer behaviour profiles (paper section 4.1.1, table T2).

A profile is "a class of peers sharing globally the same behavior": its
life expectancy (how many rounds the peer stays in the system) and its
availability (fraction of its lifetime spent online).  The paper uses four
profiles; their proportions, life-expectancy ranges and availabilities are
reproduced verbatim below.

Rounds are hours (paper section 3.1), so a year is 8760 rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..registry import Registry

#: Rounds (hours) per day / month / year, used throughout the reproduction.
ROUNDS_PER_DAY = 24
ROUNDS_PER_MONTH = 30 * ROUNDS_PER_DAY
ROUNDS_PER_YEAR = 365 * ROUNDS_PER_DAY


@dataclass(frozen=True)
class Profile:
    """A class of peers with a common churn behaviour.

    Attributes
    ----------
    name:
        Human-readable profile name (e.g. ``"Stable"``).
    proportion:
        Fraction of the population drawn from this profile, in ``[0, 1]``.
    life_expectancy:
        ``(low, high)`` bounds in rounds for the peer's total time in the
        system, or ``None`` for an unlimited lifetime (the paper's
        *Durable* profile).  Lifetimes are drawn uniformly in the range,
        matching the paper's "1.5 - 3.5 years"-style specification.
    availability:
        Long-run fraction of the lifetime the peer is online, in
        ``(0, 1]``.
    mean_online_session:
        Mean length, in rounds, of one uninterrupted online session.  The
        paper specifies availability percentages but not session
        granularity; this is a documented free parameter (DESIGN.md
        section 4) whose default keeps session lengths in the
        tens-of-hours range observed in file-sharing measurement studies.
    """

    name: str
    proportion: float
    life_expectancy: Optional[Tuple[int, int]]
    availability: float
    mean_online_session: float = 24.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.proportion <= 1.0:
            raise ValueError(f"proportion must be in [0, 1], got {self.proportion}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {self.availability}"
            )
        if self.mean_online_session <= 0:
            raise ValueError("mean_online_session must be positive")
        if self.life_expectancy is not None:
            low, high = self.life_expectancy
            if low <= 0 or high < low:
                raise ValueError(
                    f"life expectancy bounds must satisfy 0 < low <= high, "
                    f"got ({low}, {high})"
                )

    @property
    def is_durable(self) -> bool:
        """True when the profile never leaves the system."""
        return self.life_expectancy is None

    @property
    def mean_offline_session(self) -> float:
        """Mean offline-session length implied by the availability duty cycle.

        With alternating online/offline sessions of means ``u`` and ``d``,
        the long-run availability is ``u / (u + d)``; solving for ``d``
        gives ``u * (1 - a) / a``.
        """
        a = self.availability
        if a >= 1.0:
            return 0.0
        return self.mean_online_session * (1.0 - a) / a

    def mean_lifetime(self) -> float:
        """Expected total lifetime in rounds (``inf`` for durable profiles)."""
        if self.life_expectancy is None:
            return math.inf
        low, high = self.life_expectancy
        return (low + high) / 2.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe), for config hashing and transport."""
        return {
            "name": self.name,
            "proportion": self.proportion,
            "life_expectancy": (
                None
                if self.life_expectancy is None
                else list(self.life_expectancy)
            ),
            "availability": self.availability,
            "mean_online_session": self.mean_online_session,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Profile":
        """Rebuild a profile from :meth:`to_dict` output."""
        expectancy = data["life_expectancy"]
        return cls(
            name=data["name"],
            proportion=data["proportion"],
            life_expectancy=None if expectancy is None else tuple(expectancy),
            availability=data["availability"],
            mean_online_session=data["mean_online_session"],
        )


#: The paper's four profiles, with the exact proportions, life-expectancy
#: ranges and availabilities of the table in section 4.1.1.
DURABLE = Profile(
    name="Durable",
    proportion=0.10,
    life_expectancy=None,
    availability=0.95,
    mean_online_session=30 * ROUNDS_PER_DAY,
)
STABLE = Profile(
    name="Stable",
    proportion=0.25,
    life_expectancy=(int(1.5 * ROUNDS_PER_YEAR), int(3.5 * ROUNDS_PER_YEAR)),
    availability=0.87,
    mean_online_session=10 * ROUNDS_PER_DAY,
)
UNSTABLE = Profile(
    name="Unstable",
    proportion=0.30,
    life_expectancy=(3 * ROUNDS_PER_MONTH, 18 * ROUNDS_PER_MONTH),
    availability=0.75,
    mean_online_session=4 * ROUNDS_PER_DAY,
)
ERRATIC = Profile(
    name="Erratic",
    proportion=0.35,
    life_expectancy=(1 * ROUNDS_PER_MONTH, 3 * ROUNDS_PER_MONTH),
    availability=0.33,
    mean_online_session=1 * ROUNDS_PER_DAY,
)

PAPER_PROFILES: Tuple[Profile, ...] = (DURABLE, STABLE, UNSTABLE, ERRATIC)


def validate_mix(profiles: Sequence[Profile]) -> None:
    """Check that a profile mix is usable (non-empty, proportions sum to 1)."""
    if not profiles:
        raise ValueError("at least one profile is required")
    names = [p.name for p in profiles]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate profile names in mix: {names}")
    total = sum(p.proportion for p in profiles)
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"profile proportions must sum to 1, got {total}")


#: Registry of named churn mixes (complete profile tuples).  Scenario
#: builders resolve ``with_churn("flash_crowd")``-style names here; a
#: registered mix must pass :func:`validate_mix`.
CHURN_MIXES: Registry[Tuple[Profile, ...]] = Registry("churn mix")


def register_mix(name: str, profiles: Sequence[Profile], *, replace: bool = False):
    """Validate and register a churn mix under a stable name."""
    mix = tuple(profiles)
    validate_mix(mix)
    return CHURN_MIXES.register(name, mix, replace=replace)


def mix_by_name(name: str) -> Tuple[Profile, ...]:
    """The profile tuple registered under ``name``."""
    return CHURN_MIXES.get(name)


register_mix("paper", PAPER_PROFILES)

#: A flash crowd: a thin durable core swamped by a large cohort of
#: short-lived, half-present newcomers that all arrive together.
FLASH_CROWD_PROFILES: Tuple[Profile, ...] = (
    Profile("Core", 0.10, None, 0.95, mean_online_session=30 * ROUNDS_PER_DAY),
    Profile("Regular", 0.15, (30 * ROUNDS_PER_DAY, 90 * ROUNDS_PER_DAY), 0.80,
            mean_online_session=24.0),
    Profile("Crowd", 0.75, (1 * ROUNDS_PER_DAY, 7 * ROUNDS_PER_DAY), 0.60,
            mean_online_session=8.0),
)
register_mix("flash_crowd", FLASH_CROWD_PROFILES)

#: Day/night duty cycles: most peers alternate ~12h online / ~12h
#: offline, a minority only shows up for short evening sessions, and a
#: small always-on server fleet anchors the system.
DIURNAL_PROFILES: Tuple[Profile, ...] = (
    Profile("Office", 0.45, (30 * ROUNDS_PER_DAY, 90 * ROUNDS_PER_DAY), 0.50,
            mean_online_session=12.0),
    Profile("Evening", 0.35, (15 * ROUNDS_PER_DAY, 60 * ROUNDS_PER_DAY), 0.25,
            mean_online_session=6.0),
    Profile("Server", 0.20, None, 0.99, mean_online_session=30 * ROUNDS_PER_DAY),
)
register_mix("diurnal", DIURNAL_PROFILES)

#: Correlated outages: long offline stretches (days of darkness between
#: multi-day sessions) instead of the paper's short disconnections —
#: the regime where grace periods and repair thresholds interact.
CORRELATED_OUTAGE_PROFILES: Tuple[Profile, ...] = (
    Profile("Flaky", 0.60, (30 * ROUNDS_PER_DAY, 120 * ROUNDS_PER_DAY), 0.55,
            mean_online_session=60.0),
    Profile("Transient", 0.25, (3 * ROUNDS_PER_DAY, 30 * ROUNDS_PER_DAY), 0.50,
            mean_online_session=12.0),
    Profile("Anchor", 0.15, None, 0.95, mean_online_session=30 * ROUNDS_PER_DAY),
)
register_mix("correlated_outage", CORRELATED_OUTAGE_PROFILES)

#: Heterogeneous capacity: a donor minority with server-like presence
#: carries a majority of consumers and churners — the workload that
#: stresses quota contention.
HETEROGENEOUS_PROFILES: Tuple[Profile, ...] = (
    Profile("Donor", 0.30, None, 0.90, mean_online_session=10 * ROUNDS_PER_DAY),
    Profile("Consumer", 0.50, (7 * ROUNDS_PER_DAY, 60 * ROUNDS_PER_DAY), 0.50,
            mean_online_session=12.0),
    Profile("Churner", 0.20, (1 * ROUNDS_PER_DAY, 14 * ROUNDS_PER_DAY), 0.40,
            mean_online_session=6.0),
)
register_mix("heterogeneous", HETEROGENEOUS_PROFILES)

#: Slow decay: an old, stable population that erodes over months — the
#: low-churn regime where almost all repairs are avoidable overhead.
SLOW_DECAY_PROFILES: Tuple[Profile, ...] = (
    Profile("Archive", 0.40, None, 0.90, mean_online_session=10 * ROUNDS_PER_DAY),
    Profile("Veteran", 0.45, (90 * ROUNDS_PER_DAY, 365 * ROUNDS_PER_DAY), 0.85,
            mean_online_session=5 * ROUNDS_PER_DAY),
    Profile("Drifter", 0.15, (30 * ROUNDS_PER_DAY, 120 * ROUNDS_PER_DAY), 0.70,
            mean_online_session=2 * ROUNDS_PER_DAY),
)
register_mix("slow_decay", SLOW_DECAY_PROFILES)


def profile_table(profiles: Sequence[Profile] = PAPER_PROFILES) -> Dict[str, Dict]:
    """Return the profile table (T2) as a dict keyed by profile name."""
    table = {}
    for profile in profiles:
        if profile.life_expectancy is None:
            expectancy = "unlimited"
        else:
            low, high = profile.life_expectancy
            expectancy = f"{low}-{high} rounds"
        table[profile.name] = {
            "proportion": profile.proportion,
            "life_expectancy": expectancy,
            "availability": profile.availability,
        }
    return table
