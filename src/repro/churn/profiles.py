"""Peer behaviour profiles (paper section 4.1.1, table T2).

A profile is "a class of peers sharing globally the same behavior": its
life expectancy (how many rounds the peer stays in the system) and its
availability (fraction of its lifetime spent online).  The paper uses four
profiles; their proportions, life-expectancy ranges and availabilities are
reproduced verbatim below.

Rounds are hours (paper section 3.1), so a year is 8760 rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: Rounds (hours) per day / month / year, used throughout the reproduction.
ROUNDS_PER_DAY = 24
ROUNDS_PER_MONTH = 30 * ROUNDS_PER_DAY
ROUNDS_PER_YEAR = 365 * ROUNDS_PER_DAY


@dataclass(frozen=True)
class Profile:
    """A class of peers with a common churn behaviour.

    Attributes
    ----------
    name:
        Human-readable profile name (e.g. ``"Stable"``).
    proportion:
        Fraction of the population drawn from this profile, in ``[0, 1]``.
    life_expectancy:
        ``(low, high)`` bounds in rounds for the peer's total time in the
        system, or ``None`` for an unlimited lifetime (the paper's
        *Durable* profile).  Lifetimes are drawn uniformly in the range,
        matching the paper's "1.5 - 3.5 years"-style specification.
    availability:
        Long-run fraction of the lifetime the peer is online, in
        ``(0, 1]``.
    mean_online_session:
        Mean length, in rounds, of one uninterrupted online session.  The
        paper specifies availability percentages but not session
        granularity; this is a documented free parameter (DESIGN.md
        section 4) whose default keeps session lengths in the
        tens-of-hours range observed in file-sharing measurement studies.
    """

    name: str
    proportion: float
    life_expectancy: Optional[Tuple[int, int]]
    availability: float
    mean_online_session: float = 24.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.proportion <= 1.0:
            raise ValueError(f"proportion must be in [0, 1], got {self.proportion}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {self.availability}"
            )
        if self.mean_online_session <= 0:
            raise ValueError("mean_online_session must be positive")
        if self.life_expectancy is not None:
            low, high = self.life_expectancy
            if low <= 0 or high < low:
                raise ValueError(
                    f"life expectancy bounds must satisfy 0 < low <= high, "
                    f"got ({low}, {high})"
                )

    @property
    def is_durable(self) -> bool:
        """True when the profile never leaves the system."""
        return self.life_expectancy is None

    @property
    def mean_offline_session(self) -> float:
        """Mean offline-session length implied by the availability duty cycle.

        With alternating online/offline sessions of means ``u`` and ``d``,
        the long-run availability is ``u / (u + d)``; solving for ``d``
        gives ``u * (1 - a) / a``.
        """
        a = self.availability
        if a >= 1.0:
            return 0.0
        return self.mean_online_session * (1.0 - a) / a

    def mean_lifetime(self) -> float:
        """Expected total lifetime in rounds (``inf`` for durable profiles)."""
        if self.life_expectancy is None:
            return math.inf
        low, high = self.life_expectancy
        return (low + high) / 2.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe), for config hashing and transport."""
        return {
            "name": self.name,
            "proportion": self.proportion,
            "life_expectancy": (
                None
                if self.life_expectancy is None
                else list(self.life_expectancy)
            ),
            "availability": self.availability,
            "mean_online_session": self.mean_online_session,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Profile":
        """Rebuild a profile from :meth:`to_dict` output."""
        expectancy = data["life_expectancy"]
        return cls(
            name=data["name"],
            proportion=data["proportion"],
            life_expectancy=None if expectancy is None else tuple(expectancy),
            availability=data["availability"],
            mean_online_session=data["mean_online_session"],
        )


#: The paper's four profiles, with the exact proportions, life-expectancy
#: ranges and availabilities of the table in section 4.1.1.
DURABLE = Profile(
    name="Durable",
    proportion=0.10,
    life_expectancy=None,
    availability=0.95,
    mean_online_session=30 * ROUNDS_PER_DAY,
)
STABLE = Profile(
    name="Stable",
    proportion=0.25,
    life_expectancy=(int(1.5 * ROUNDS_PER_YEAR), int(3.5 * ROUNDS_PER_YEAR)),
    availability=0.87,
    mean_online_session=10 * ROUNDS_PER_DAY,
)
UNSTABLE = Profile(
    name="Unstable",
    proportion=0.30,
    life_expectancy=(3 * ROUNDS_PER_MONTH, 18 * ROUNDS_PER_MONTH),
    availability=0.75,
    mean_online_session=4 * ROUNDS_PER_DAY,
)
ERRATIC = Profile(
    name="Erratic",
    proportion=0.35,
    life_expectancy=(1 * ROUNDS_PER_MONTH, 3 * ROUNDS_PER_MONTH),
    availability=0.33,
    mean_online_session=1 * ROUNDS_PER_DAY,
)

PAPER_PROFILES: Tuple[Profile, ...] = (DURABLE, STABLE, UNSTABLE, ERRATIC)


def validate_mix(profiles: Sequence[Profile]) -> None:
    """Check that a profile mix is usable (non-empty, proportions sum to 1)."""
    if not profiles:
        raise ValueError("at least one profile is required")
    names = [p.name for p in profiles]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate profile names in mix: {names}")
    total = sum(p.proportion for p in profiles)
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"profile proportions must sum to 1, got {total}")


def profile_table(profiles: Sequence[Profile] = PAPER_PROFILES) -> Dict[str, Dict]:
    """Return the profile table (T2) as a dict keyed by profile name."""
    table = {}
    for profile in profiles:
        if profile.life_expectancy is None:
            expectancy = "unlimited"
        else:
            low, high = profile.life_expectancy
            expectancy = f"{low}-{high} rounds"
        table[profile.name] = {
            "proportion": profile.proportion,
            "life_expectancy": expectancy,
            "availability": profile.availability,
        }
    return table
