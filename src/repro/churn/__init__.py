"""Churn substrate: behaviour profiles, lifetimes and availability processes."""

from .availability import AvailabilityHistory, SessionProcess
from .generator import ChurnEvent, ChurnTraceGenerator, PeerTrace, draw_profile
from .lifetimes import (
    ImmortalLifetime,
    LifetimeDistribution,
    ParetoLifetime,
    UniformLifetime,
    from_profile,
    mixture_survival,
)
from .profiles import (
    DURABLE,
    ERRATIC,
    PAPER_PROFILES,
    ROUNDS_PER_DAY,
    ROUNDS_PER_MONTH,
    ROUNDS_PER_YEAR,
    STABLE,
    UNSTABLE,
    Profile,
    profile_table,
    validate_mix,
)

__all__ = [
    "AvailabilityHistory",
    "SessionProcess",
    "ChurnEvent",
    "ChurnTraceGenerator",
    "PeerTrace",
    "draw_profile",
    "ImmortalLifetime",
    "LifetimeDistribution",
    "ParetoLifetime",
    "UniformLifetime",
    "from_profile",
    "mixture_survival",
    "DURABLE",
    "ERRATIC",
    "PAPER_PROFILES",
    "ROUNDS_PER_DAY",
    "ROUNDS_PER_MONTH",
    "ROUNDS_PER_YEAR",
    "STABLE",
    "UNSTABLE",
    "Profile",
    "profile_table",
    "validate_mix",
]
