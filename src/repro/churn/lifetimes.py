"""Lifetime distributions for peers.

Two families are provided:

* :class:`UniformLifetime` — what the simulated profiles use; the paper
  specifies life expectancy as a range ("1.5 - 3.5 years") which we read
  as a uniform draw within the range.
* :class:`ParetoLifetime` — the distribution that measurement studies of
  deployed peer-to-peer systems report (paper section 1, citing [5]); it
  is the analytical justification of the age heuristic, because under a
  Pareto law the expected *remaining* lifetime grows linearly with age.

Both expose the same small interface so the churn generator and the
estimation module can mix them freely.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..registry import Registry

#: Registry of lifetime-distribution families.  Entries are classes (or
#: factories) whose constructor parameters describe the distribution;
#: :func:`lifetime_by_name` instantiates them.
LIFETIME_MODELS: Registry[type] = Registry("lifetime model")


class LifetimeDistribution(ABC):
    """Samples total peer lifetimes, in rounds."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one lifetime."""

    @abstractmethod
    def mean(self) -> float:
        """Expected lifetime (may be ``inf``)."""

    @abstractmethod
    def survival(self, age: float) -> float:
        """P(lifetime > age)."""

    def expected_remaining(self, age: float) -> float:
        """E[lifetime - age | lifetime > age], computed numerically by default."""
        if age < 0:
            raise ValueError("age cannot be negative")
        tail = self.survival(age)
        if tail <= 0:
            return 0.0
        # Integrate the conditional survival function; subclasses override
        # with closed forms when available.
        horizon = max(age * 10 + 1.0, 1e4)
        xs = np.linspace(age, age + horizon, 4096)
        values = np.array([self.survival(x) for x in xs]) / tail
        return float(np.trapz(values, xs))


@LIFETIME_MODELS.register("uniform")
class UniformLifetime(LifetimeDistribution):
    """Lifetime uniform in ``[low, high]`` rounds."""

    def __init__(self, low: float, high: float):
        if low <= 0 or high < low:
            raise ValueError(f"need 0 < low <= high, got ({low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def survival(self, age: float) -> float:
        if age < self.low:
            return 1.0
        if age >= self.high:
            return 0.0
        return (self.high - age) / (self.high - self.low)

    def expected_remaining(self, age: float) -> float:
        if age < 0:
            raise ValueError("age cannot be negative")
        if age >= self.high:
            return 0.0
        effective_low = max(age, self.low)
        return (effective_low + self.high) / 2.0 - age

    def __repr__(self) -> str:
        return f"UniformLifetime(low={self.low}, high={self.high})"


@LIFETIME_MODELS.register("immortal")
class ImmortalLifetime(LifetimeDistribution):
    """The durable profile: the peer never leaves."""

    def sample(self, rng: np.random.Generator) -> float:
        return math.inf

    def mean(self) -> float:
        return math.inf

    def survival(self, age: float) -> float:
        return 1.0

    def expected_remaining(self, age: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return "ImmortalLifetime()"


@LIFETIME_MODELS.register("pareto")
class ParetoLifetime(LifetimeDistribution):
    """Pareto (type I) lifetimes: ``P(T > t) = (x_m / t)^alpha`` for ``t >= x_m``.

    The heavy tail is what makes age informative: conditioned on having
    survived to age ``t >= x_m``, the expected remaining lifetime is
    ``t / (alpha - 1)`` (for ``alpha > 1``) — strictly increasing in age.
    """

    def __init__(self, shape: float, scale: float = 1.0):
        if shape <= 0:
            raise ValueError(f"shape alpha must be positive, got {shape}")
        if scale <= 0:
            raise ValueError(f"scale x_m must be positive, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse-CDF sampling: T = x_m * U^(-1/alpha).
        u = rng.random()
        # Guard the measure-zero corner u == 0.
        u = max(u, np.finfo(float).tiny)
        return self.scale * u ** (-1.0 / self.shape)

    def mean(self) -> float:
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.scale / (self.shape - 1.0)

    def survival(self, age: float) -> float:
        if age <= self.scale:
            return 1.0
        return (self.scale / age) ** self.shape

    def expected_remaining(self, age: float) -> float:
        if age < 0:
            raise ValueError("age cannot be negative")
        if self.shape <= 1.0:
            return math.inf
        t = max(age, self.scale)
        # E[T | T > t] = alpha * t / (alpha - 1)  =>  remaining = t/(alpha-1),
        # plus the (t - age) offset when age is still below the scale.
        return self.shape * t / (self.shape - 1.0) - age

    def __repr__(self) -> str:
        return f"ParetoLifetime(shape={self.shape}, scale={self.scale})"


def lifetime_by_name(name: str, **params) -> LifetimeDistribution:
    """Instantiate a lifetime distribution from its registered name."""
    return LIFETIME_MODELS.create(name, **params)


def from_profile(profile) -> LifetimeDistribution:
    """Build the lifetime distribution a profile prescribes."""
    if profile.life_expectancy is None:
        return LIFETIME_MODELS.create("immortal")
    low, high = profile.life_expectancy
    return LIFETIME_MODELS.create("uniform", low=low, high=high)


def mixture_survival(profiles, age: float) -> float:
    """Survival function of the population mixture at a given age.

    Useful to compare the paper's four-profile mixture with a fitted
    Pareto law (the mixture is itself heavy-tailed thanks to the durable
    mass point at infinity).
    """
    total = 0.0
    for profile in profiles:
        total += profile.proportion * from_profile(profile).survival(age)
    return total


def optional_seed_generator(seed: Optional[int]) -> np.random.Generator:
    """Small helper: a numpy generator from an optional seed."""
    # Imported lazily: sim.driver imports this module, so a module-level
    # import of repro.sim would be circular.
    from ..sim.rng import seeded_generator

    return seeded_generator(seed)
