"""On/off availability processes.

The paper models availability as a single percentage per profile (time
spent online).  We realise it as an alternating renewal process: online
sessions and offline gaps with geometric (discrete memoryless) durations
whose means give exactly the requested duty cycle.  Session granularity
(the mean online-session length) is a free parameter of each profile; the
long-run availability does not depend on it, only the *burstiness* does.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

import numpy as np


def session_duration_params(
    availability: float, mean_online: float
) -> Tuple[bool, float, float]:
    """Batch-draw constants for one profile's session process.

    Returns ``(always_online, online_log1mp, offline_log1mp)`` where the
    ``log1mp`` entries are ``log1p(-p)`` for the online/offline geometric
    duration draws fed to
    :func:`repro.sim.rng.geometric_from_uniforms`, or ``NaN`` when the
    corresponding mean is ``<= 1`` round — the scalar path
    (:func:`geometric_duration`) clamps those to a single round *without
    consuming a draw*, and the batched path must match.  Both simulation
    engines derive their per-profile constants here, so the floats (and
    therefore every duration) are bit-identical across backends.
    """
    if not 0.0 < availability <= 1.0:
        raise ValueError(f"availability must be in (0, 1], got {availability}")
    if mean_online <= 0:
        raise ValueError("mean_online must be positive")
    mean_online = float(mean_online)
    if availability >= 1.0:
        mean_offline = 0.0
    else:
        mean_offline = mean_online * (1.0 - availability) / availability
    always_online = mean_offline == 0.0
    online_log1mp = (
        math.log1p(-1.0 / mean_online) if mean_online > 1.0 else math.nan
    )
    offline_mean = max(mean_offline, 1.0)
    offline_log1mp = (
        math.log1p(-1.0 / offline_mean) if offline_mean > 1.0 else math.nan
    )
    return always_online, online_log1mp, offline_log1mp


def geometric_duration(rng: np.random.Generator, mean: float) -> int:
    """One session duration in rounds: geometric with the given mean, >= 1.

    A geometric variable on {1, 2, ...} with success probability
    ``p = 1/mean`` has mean exactly ``mean``; means below 1 clamp to a
    single round.
    """
    if mean <= 1.0:
        return 1
    return int(rng.geometric(1.0 / mean))


class SessionProcess:
    """Alternating online/offline session generator for one peer.

    Parameters
    ----------
    availability:
        Target long-run online fraction in ``(0, 1]``.
    mean_online:
        Mean online-session length in rounds.
    rng:
        Numpy generator; one stream per peer keeps runs reproducible.
    start_online:
        Whether the peer begins its life online.  Fresh peers do (they
        just connected).
    """

    def __init__(
        self,
        availability: float,
        mean_online: float,
        rng: np.random.Generator,
        start_online: bool = True,
    ):
        if not 0.0 < availability <= 1.0:
            raise ValueError(f"availability must be in (0, 1], got {availability}")
        if mean_online <= 0:
            raise ValueError("mean_online must be positive")
        self.availability = availability
        self.mean_online = float(mean_online)
        if availability >= 1.0:
            self.mean_offline = 0.0
        else:
            self.mean_offline = mean_online * (1.0 - availability) / availability
        self._rng = rng
        self.online = start_online

    @property
    def always_online(self) -> bool:
        """True when the duty cycle never produces an offline gap."""
        return self.mean_offline == 0.0

    def next_session_length(self) -> int:
        """Length in rounds of the *current* state before the next toggle."""
        if self.online:
            return geometric_duration(self._rng, self.mean_online)
        return geometric_duration(self._rng, max(self.mean_offline, 1.0))

    def toggle(self) -> bool:
        """Flip the state and return the new value."""
        self.online = not self.online
        return self.online

    def sessions(self, horizon: int) -> Iterator[Tuple[bool, int]]:
        """Yield ``(online, duration)`` pairs covering ``horizon`` rounds."""
        if horizon < 0:
            raise ValueError("horizon cannot be negative")
        elapsed = 0
        while elapsed < horizon:
            duration = self.next_session_length()
            duration = min(duration, horizon - elapsed)
            yield self.online, duration
            elapsed += duration
            if self.always_online:
                # Emit a single covering session and stop toggling.
                if elapsed < horizon:
                    yield True, horizon - elapsed
                return
            self.toggle()


def empirical_availability(timeline: List[Tuple[bool, int]]) -> float:
    """Measured online fraction of a ``(online, duration)`` timeline."""
    total = sum(duration for _, duration in timeline)
    if total == 0:
        return 0.0
    online = sum(duration for is_online, duration in timeline if is_online)
    return online / total


class AvailabilityHistory:
    """Sliding-window uptime record used by the monitoring protocol.

    The paper assumes "a secure monitoring protocol for peer availability:
    any peer can query the availability of any other peer for a given
    period of time, for example the last 90 days" (section 2.1).  This
    class is that record: a ring buffer of per-round online bits.
    """

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._bits = np.zeros(window, dtype=bool)
        self._cursor = 0
        self._recorded = 0

    def record(self, online: bool) -> None:
        """Append one round of observed state."""
        self._bits[self._cursor] = online
        self._cursor = (self._cursor + 1) % self.window
        self._recorded = min(self._recorded + 1, self.window)

    def record_span(self, online: bool, rounds: int) -> None:
        """Append ``rounds`` consecutive rounds in the same state."""
        if rounds < 0:
            raise ValueError("rounds cannot be negative")
        for _ in range(min(rounds, self.window)):
            self.record(online)
        if rounds > self.window:
            # The whole window is now a single state; the skipped rounds
            # would have overwritten everything anyway.
            self._recorded = self.window

    def availability(self) -> float:
        """Observed online fraction over the recorded window."""
        if self._recorded == 0:
            return 0.0
        if self._recorded < self.window:
            start = (self._cursor - self._recorded) % self.window
            indices = [(start + i) % self.window for i in range(self._recorded)]
            return float(np.mean(self._bits[indices]))
        return float(np.mean(self._bits))

    @property
    def observed_rounds(self) -> int:
        """Number of rounds recorded so far (capped at the window size)."""
        return self._recorded
