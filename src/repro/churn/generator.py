"""Standalone churn-trace generation.

The simulator drives churn through events; this module offers the same
stochastic machinery as a reusable component that produces explicit
traces (joins, departures, session toggles), e.g. to feed other
simulators, to validate the availability model, or to fit lifetime
distributions offline (see :mod:`repro.core.lifetime`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .availability import SessionProcess
from .lifetimes import from_profile
from .profiles import PAPER_PROFILES, Profile, validate_mix


@dataclass(frozen=True)
class ChurnEvent:
    """One event of a churn trace."""

    round: int
    peer_id: int
    kind: str  # "join" | "leave" | "online" | "offline"

    def __post_init__(self) -> None:
        if self.kind not in {"join", "leave", "online", "offline"}:
            raise ValueError(f"unknown churn event kind: {self.kind}")


@dataclass
class PeerTrace:
    """The full life of one simulated peer."""

    peer_id: int
    profile: Profile
    join_round: int
    lifetime: float
    events: List[ChurnEvent] = field(default_factory=list)

    @property
    def leave_round(self) -> Optional[int]:
        """Round the peer departs, or ``None`` when it never does."""
        if math.isinf(self.lifetime):
            return None
        return self.join_round + int(self.lifetime)


def draw_profile(rng: np.random.Generator, profiles: Sequence[Profile]) -> Profile:
    """Sample one profile according to the mix proportions."""
    weights = [p.proportion for p in profiles]
    index = int(rng.choice(len(profiles), p=weights))
    return profiles[index]


class ChurnTraceGenerator:
    """Generate joins/leaves/session toggles for a replaced population.

    Mirrors the paper's population model: a fixed-size population where
    "each peer leaving the system is immediately replaced".
    """

    def __init__(
        self,
        population: int,
        horizon: int,
        profiles: Sequence[Profile] = PAPER_PROFILES,
        seed: Optional[int] = None,
    ):
        if population <= 0:
            raise ValueError("population must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        validate_mix(profiles)
        self.population = population
        self.horizon = horizon
        self.profiles = tuple(profiles)
        # Imported lazily: repro.core imports this package while sim's
        # config is still loading repro.core, so a module-level import
        # of repro.sim would be circular.
        from ..sim.rng import seeded_generator

        self._rng = seeded_generator(seed)
        self._next_peer_id = 0

    def _spawn(self, join_round: int) -> PeerTrace:
        profile = draw_profile(self._rng, self.profiles)
        lifetime = from_profile(profile).sample(self._rng)
        trace = PeerTrace(
            peer_id=self._next_peer_id,
            profile=profile,
            join_round=join_round,
            lifetime=lifetime,
        )
        self._next_peer_id += 1
        return trace

    def _fill_sessions(self, trace: PeerTrace) -> None:
        end = trace.leave_round
        stop = self.horizon if end is None else min(end, self.horizon)
        span = stop - trace.join_round
        if span <= 0:
            return
        process = SessionProcess(
            availability=trace.profile.availability,
            mean_online=trace.profile.mean_online_session,
            rng=self._rng,
        )
        clock = trace.join_round
        trace.events.append(ChurnEvent(trace.join_round, trace.peer_id, "join"))
        previous_online = None
        for online, duration in process.sessions(span):
            if online != previous_online:
                kind = "online" if online else "offline"
                # The join itself implies "online"; skip the duplicate.
                if not (clock == trace.join_round and online):
                    trace.events.append(ChurnEvent(clock, trace.peer_id, kind))
                previous_online = online
            clock += duration
        if end is not None and end <= self.horizon:
            trace.events.append(ChurnEvent(end, trace.peer_id, "leave"))

    def generate(self) -> List[PeerTrace]:
        """Produce traces for the whole population over the horizon.

        Departing peers are replaced by fresh ones until the horizon, so
        the number of traces usually exceeds the population size.
        """
        traces: List[PeerTrace] = []
        frontier: List[PeerTrace] = [self._spawn(0) for _ in range(self.population)]
        while frontier:
            trace = frontier.pop()
            self._fill_sessions(trace)
            traces.append(trace)
            leave = trace.leave_round
            if leave is not None and leave < self.horizon:
                frontier.append(self._spawn(leave))
        traces.sort(key=lambda t: (t.join_round, t.peer_id))
        return traces


def observed_lifetimes(traces: Sequence[PeerTrace], horizon: int) -> np.ndarray:
    """Extract completed lifetimes from traces (censored ones excluded).

    These samples are what :func:`repro.core.lifetime.fit_pareto` consumes.
    """
    lifetimes = [
        trace.lifetime
        for trace in traces
        if not math.isinf(trace.lifetime)
        and trace.join_round + trace.lifetime <= horizon
    ]
    return np.asarray(lifetimes, dtype=float)
