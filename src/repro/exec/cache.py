"""Content-addressed on-disk cache of simulation results.

The cache key is the SHA-256 of the canonical JSON serialization of a
:class:`~repro.sim.config.SimulationConfig` — every knob, including the
seed — salted with the package version and a cache schema version, so
cached results never outlive the simulator that produced them.  Two
sweeps that share a cell (e.g. figures 1 and 2, which run the same
threshold grid) therefore share the cached run, and re-running
``repro-experiments`` only simulates cells whose parameters changed.

Payloads are the ``SimulationResult.to_dict()`` dicts, stored as
canonical JSON, so a cache hit is byte-identical to a fresh run's
serialized result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from .. import __version__
from ..sim.config import SimulationConfig

#: Default cache location (relative to the working directory, gitignored).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump whenever simulation semantics or the result schema change
#: without a package-version bump: it invalidates every existing cache
#: entry, so stale results can never masquerade as fresh ones.
CACHE_SCHEMA_VERSION = 1


def canonical_json(payload: object) -> str:
    """Serialize plain data deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(config: SimulationConfig) -> str:
    """The cache key of one cell: SHA-256 over config + code versions."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "package": __version__,
        "config": config.to_dict(),
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """A directory of ``<digest>.json`` result payloads, sharded by prefix.

    Shared deployments (the ``distributed`` execution backend) point
    every worker at one cache directory — typically an NFS mount — and
    use it both as the result store and, via :attr:`lease_root`, as the
    work queue's lock directory (see :mod:`repro.exec.distributed`).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """Where a digest's payload lives (two-character shard directories)."""
        return self.root / digest[:2] / f"{digest}.json"

    @property
    def lease_root(self) -> Path:
        """Where the distributed backend keeps its cell lease files.

        Living inside the cache directory guarantees leases and results
        share one filesystem, so the atomic-rename semantics that the
        cache relies on cover the leases too.
        """
        return self.root / "leases"

    @property
    def service_root(self) -> Path:
        """Where the sweep service keeps its job records and job leases.

        Co-located with the results for the same reason as
        :attr:`lease_root`: one filesystem, one set of atomicity
        guarantees, and a server restarted against the same cache
        directory recovers every job it had accepted.
        """
        return self.root / "service"

    def contains_digest(self, digest: str) -> bool:
        """Whether a result for ``digest`` is stored (cheap existence probe).

        Unlike :meth:`load` this never reads or parses the payload, so
        the sweep service can classify a whole job as a cache hit
        without deserialising every cell.
        """
        return self.path_for(digest).is_file()

    def entry_count(self) -> int:
        """Number of stored result payloads."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        """Total bytes of stored result payloads (excludes leases)."""
        return sum(
            path.stat().st_size for path in self.root.glob("??/*.json")
        )

    def load(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``digest``, or ``None`` on miss/corruption."""
        path = self.path_for(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Missing, truncated or corrupted entries (including invalid
            # UTF-8: UnicodeDecodeError is a ValueError) behave like a
            # miss; the fresh run will overwrite them.
            return None
        return payload if isinstance(payload, dict) else None

    def store(self, digest: str, payload: Dict[str, object]) -> None:
        """Persist a payload atomically (safe under concurrent writers)."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(canonical_json(payload))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, config: SimulationConfig) -> bool:
        return self.load(config_digest(config)) is not None
