"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes a whole sweep — a parameter grid
crossed with replication seeds — as data plus two pure functions: a
``build`` callable mapping one grid point to a
:class:`~repro.sim.config.SimulationConfig`, and an optional ``reduce``
callable collapsing the executed :class:`SweepResult` into the
experiment's artifact (a figure result, an ablation table, ...).

The spec fully determines every cell's randomness: a cell's config is
``build(params).with_seed(seed)``, and the simulation engine derives all
of its RNG streams from ``config.seed`` (see :mod:`repro.sim.rng`).  Two
executions of the same spec therefore produce byte-identical serialized
results regardless of execution order, backend or worker count — which
is what makes the process-pool backend and the on-disk result cache
drop-in replacements for the serial loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult


@dataclass(frozen=True)
class Cell:
    """One executable unit of a sweep: a grid point crossed with a seed."""

    index: int
    params: Tuple[Tuple[str, Any], ...]
    seed: int
    config: SimulationConfig

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The grid-point coordinates as a plain dict."""
        return dict(self.params)

    def param(self, name: str) -> Any:
        """One grid coordinate by axis name."""
        return dict(self.params)[name]

    def label(self) -> str:
        """Human-readable cell description (progress callbacks, logs)."""
        coords = ", ".join(f"{k}={v}" for k, v in self.params)
        prefix = f"[{coords}] " if coords else ""
        return f"{prefix}seed={self.seed}"


@dataclass
class ExperimentSpec:
    """A declarative sweep: grid x seeds, a config builder and a reducer.

    Parameters
    ----------
    name:
        Sweep identifier (progress display and diagnostics only; the
        result cache keys on config content, not on this name).
    build:
        Pure function mapping one grid point (``axis -> value`` dict) to
        the :class:`SimulationConfig` for that point.  The executor
        applies ``.with_seed(seed)`` per replication, so ``build`` need
        not (and should not) vary the seed itself.
    grid:
        Ordered mapping ``axis name -> sequence of values``.  An empty
        grid describes a plain replication study (one config, many
        seeds).
    seeds:
        Replication seeds; every grid point runs once per seed.
    reduce:
        Optional artifact constructor applied to the finished
        :class:`SweepResult` by :func:`repro.exec.run_experiment`.
    """

    name: str
    build: Callable[[Dict[str, Any]], SimulationConfig]
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (0,)
    reduce: Optional[Callable[["SweepResult"], Any]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name cannot be empty")
        self.seeds = tuple(self.seeds)
        if not self.seeds:
            raise ValueError("at least one seed is required")
        self.grid = {axis: tuple(values) for axis, values in self.grid.items()}
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")

    @property
    def cell_count(self) -> int:
        """Number of cells: product of axis sizes times the seed count."""
        count = len(self.seeds)
        for values in self.grid.values():
            count *= len(values)
        return count

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[str],
        seeds: Sequence[int] = (0,),
        name: str = "scenarios",
        reduce: Optional[Callable[["SweepResult"], Any]] = None,
    ) -> "ExperimentSpec":
        """A sweep whose grid axis is the scenario registry.

        Each value of the ``"scenario"`` axis is a registered preset
        name; the builder resolves it through
        :data:`repro.scenarios.SCENARIOS` and builds its config, so
        shipped and user-registered scenarios sweep through the same
        cached, parallel executor as every figure::

            spec = ExperimentSpec.from_scenarios(
                ["flash_crowd", "diurnal"], seeds=(0, 1))
            sweep = SweepExecutor().run(spec)
            by_scenario = sweep.by_axis("scenario")
        """
        # Imported lazily: repro.scenarios builds specs via this module.
        from ..scenarios import scenario_by_name

        names = tuple(scenarios)
        if not names:
            raise ValueError("at least one scenario name is required")
        for scenario in names:  # fail fast, with the registry's message
            scenario_by_name(scenario)

        def build(params: Dict[str, Any]) -> SimulationConfig:
            return scenario_by_name(params["scenario"]).build()

        return cls(
            name=name,
            build=build,
            grid={"scenario": names},
            seeds=tuple(seeds),
            reduce=reduce,
        )

    def cells(self) -> List[Cell]:
        """Materialise every cell, grid axes outermost, seeds innermost.

        The ordering matches the hand-rolled loops this subsystem
        replaced (``for value in axis: for seed in seeds: run(...)``),
        so grouped results keep their historical ordering.
        """
        axes = list(self.grid)
        cells: List[Cell] = []
        index = 0
        for combo in itertools.product(*self.grid.values()):
            params = dict(zip(axes, combo))
            config = self.build(params)
            for seed in self.seeds:
                cells.append(
                    Cell(
                        index=index,
                        params=tuple(params.items()),
                        seed=seed,
                        config=config.with_seed(seed),
                    )
                )
                index += 1
        return cells


@dataclass
class SweepResult:
    """All results of one executed spec, aligned with its cells."""

    spec: ExperimentSpec
    cells: List[Cell]
    results: List[SimulationResult]
    stats: "ExecutionStats"

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Tuple[Cell, SimulationResult]]:
        return iter(zip(self.cells, self.results))

    def replications(self) -> List[SimulationResult]:
        """All results in cell order (the natural view of a gridless spec)."""
        return list(self.results)

    def by_axis(self, axis: str) -> Dict[Any, List[SimulationResult]]:
        """Group results by one grid axis, preserving axis-value order.

        Each value maps to its replications in seed order — the shape
        the aggregation helpers in :mod:`repro.analysis.aggregate`
        consume.
        """
        if axis not in self.spec.grid:
            raise ValueError(
                f"unknown axis {axis!r}; spec axes: {list(self.spec.grid)}"
            )
        grouped: Dict[Any, List[SimulationResult]] = {}
        for cell, result in self:
            grouped.setdefault(cell.param(axis), []).append(result)
        return grouped
