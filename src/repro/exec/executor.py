"""The sweep executor: registered serial/process/distributed backends.

One :class:`SweepExecutor` turns an
:class:`~repro.exec.spec.ExperimentSpec` into a
:class:`~repro.exec.spec.SweepResult`.  How the pending (cache-missed)
cells actually execute is an :class:`ExecutionBackend` resolved by name
through the :data:`EXECUTION_BACKENDS` registry — the same convention
every other swappable component follows (see :mod:`repro.registry`):

* ``serial`` runs cells in-process, one after the other;
* ``process`` fans cells out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` on this host;
* ``distributed`` (:mod:`repro.exec.distributed`) shards cells across
  worker processes on any number of hosts sharing a cache directory.

Every cell — cached, serial, pooled or remote — travels through the
same serialized representation (``SimulationResult.to_dict()``), which
guarantees bit-identical results regardless of backend, worker count or
cache temperature:

* the serial backend round-trips each result through the dict form;
* the process-pool backend ships config dicts to workers and result
  dicts back (no pickling of live simulator objects);
* the cache stores exactly those dicts as canonical JSON, and the
  distributed backend publishes results through nothing but the cache.

Cells are independent simulations, so execution order never affects the
outcome; results are always reassembled in spec cell order.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..registry import Registry
from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult, run_simulation
from .cache import ResultCache, config_digest
from .spec import Cell, ExperimentSpec, SweepResult

#: Progress callback signature: (cells done, cells total, cell, source)
#: where source is ``"cache"`` or ``"run"``.
ProgressCallback = Callable[[int, int, Cell, str], None]

#: Cell-completion callback handed to backends:
#: ``finish(index, payload, source="run", store=True)``.
FinishCallback = Callable[..., None]

#: How a ``SweepExecutor`` executes its pending cells, by stable name.
#: ``serial`` and ``process`` live in this module; importing
#: :mod:`repro.exec` also registers ``distributed``.
EXECUTION_BACKENDS: Registry = Registry("execution backend")


@dataclass
class ExecutionStats:
    """What one ``run()`` (or an executor lifetime) actually did."""

    simulated: int = 0
    cache_hits: int = 0
    wall_clock_seconds: float = 0.0

    @property
    def cells(self) -> int:
        """Total cells accounted for."""
        return self.simulated + self.cache_hits

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another run's stats into this one."""
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.wall_clock_seconds += other.wall_clock_seconds


def _execute_cell(config_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: config dict in, result dict out.

    Module-level (not a closure) so the process-pool backend can pickle
    it; the dict round trip keeps worker transport identical to the
    cache format.
    """
    config = SimulationConfig.from_dict(config_payload)
    return run_simulation(config).to_dict()


class ExecutionBackend:
    """Strategy executing the pending cells of one :meth:`SweepExecutor.run`.

    Backends receive the owning executor (for ``workers``, ``cache`` and
    the distributed knobs), the full cell list, the indices still to
    execute, the per-index config digests, and a ``finish`` callback::

        finish(index, payload, source="run", store=True)

    ``source`` is ``"run"`` for a cell this process simulated and
    ``"cache"`` for one loaded from the shared cache; ``store=False``
    skips the executor's own cache write for backends that already
    published the payload themselves.
    """

    name = "abstract"

    def execute(
        self,
        executor: "SweepExecutor",
        cells: List[Cell],
        pending: List[int],
        digests: Dict[int, str],
        finish: FinishCallback,
    ) -> None:
        raise NotImplementedError


@EXECUTION_BACKENDS.register("serial")
class SerialBackend(ExecutionBackend):
    """All pending cells in-process, one after the other."""

    name = "serial"

    def execute(self, executor, cells, pending, digests, finish):
        for i in pending:
            finish(i, _execute_cell(cells[i].config.to_dict()))


@EXECUTION_BACKENDS.register("process")
class ProcessBackend(ExecutionBackend):
    """Cells fanned out over a process pool on this host."""

    name = "process"

    def execute(self, executor, cells, pending, digests, finish):
        if executor.workers == 1 or len(pending) <= 1:
            # Degenerate case: a pool of one (or one cell) is just the
            # serial loop without the process-spawn overhead.
            SerialBackend().execute(executor, cells, pending, digests, finish)
            return
        max_workers = min(executor.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_cell, cells[i].config.to_dict()): i
                for i in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    finish(futures[future], future.result())


class SweepExecutor:
    """Runs sweep cells through a named execution backend, with caching.

    Parameters
    ----------
    workers:
        Maximum concurrent simulations for the ``process`` backend.
        ``1`` (default) executes in-process.
    cache:
        Optional :class:`~repro.exec.cache.ResultCache`.  When present,
        cells whose config digest is already stored load from disk
        instead of simulating, and fresh results are stored back.
        Mandatory for the ``distributed`` backend, whose workers have no
        other channel.
    progress:
        Optional callback invoked after every finished cell with
        ``(done, total, cell, source)``.
    backend:
        Execution backend name (see :data:`EXECUTION_BACKENDS`).
        ``None`` (default) picks ``process`` when ``workers > 1`` and
        ``serial`` otherwise, preserving the historical behaviour.
    worker_id:
        Stable identity of this worker in the ``distributed`` backend's
        lease files (default: ``<hostname>-<pid>``).
    lease_ttl:
        Seconds without a heartbeat before a ``distributed`` lease is
        considered abandoned and its cell reclaimable.
    poll_interval:
        Seconds the ``distributed`` backend sleeps between passes when
        every remaining cell is leased to other workers.
    heartbeat_interval:
        Seconds between ``distributed`` lease heartbeats (default:
        ``lease_ttl / 4``).

    Independently of the on-disk cache, the executor memoises every
    cell it runs for its own lifetime, so sweeps sharing cells within
    one executor (figures 1 and 2 run the same threshold grid) cost one
    set of simulations even with the disk cache disabled.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        backend: Optional[str] = None,
        worker_id: Optional[str] = None,
        lease_ttl: Optional[float] = None,
        poll_interval: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend is not None:
            EXECUTION_BACKENDS.check(backend)
        if backend == "distributed" and cache is None:
            raise ValueError(
                "the distributed backend publishes results through the "
                "shared result cache; construct the executor with a "
                "ResultCache on a directory all workers can reach"
            )
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.backend = backend
        self.worker_id = worker_id
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        #: Cumulative stats across every run() of this executor.
        self.stats = ExecutionStats()
        # In-process memo (digest -> payload) for this executor's lifetime.
        self._memo: Dict[str, Dict[str, Any]] = {}

    @property
    def backend_name(self) -> str:
        """The resolved backend: explicit, else implied by ``workers``."""
        if self.backend is not None:
            return self.backend
        return "process" if self.workers > 1 else "serial"

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> SweepResult:
        """Execute every cell of ``spec`` and return the aligned results."""
        started = time.perf_counter()
        cells = spec.cells()
        total = len(cells)
        payloads: List[Optional[Dict[str, Any]]] = [None] * total
        run_stats = ExecutionStats()
        done = 0

        pending: List[int] = []
        digests: Dict[int, str] = {}
        for i, cell in enumerate(cells):
            digest = config_digest(cell.config)
            digests[i] = digest
            payload = self._memo.get(digest)
            if payload is None and self.cache is not None:
                payload = self.cache.load(digest)
            if payload is not None:
                payloads[i] = payload
                self._memo[digest] = payload
                run_stats.cache_hits += 1
                done += 1
                self._notify(done, total, cell, "cache")
                continue
            pending.append(i)

        def finish(
            i: int,
            payload: Dict[str, Any],
            source: str = "run",
            store: bool = True,
        ) -> None:
            nonlocal done
            payloads[i] = payload
            self._memo[digests[i]] = payload
            if store and self.cache is not None:
                self.cache.store(digests[i], payload)
            if source == "run":
                run_stats.simulated += 1
            else:
                run_stats.cache_hits += 1
            done += 1
            self._notify(done, total, cells[i], source)

        backend = EXECUTION_BACKENDS.get(self.backend_name)()
        backend.execute(self, cells, pending, digests, finish)

        results = [
            SimulationResult.from_dict(payload) for payload in payloads
        ]
        run_stats.wall_clock_seconds = time.perf_counter() - started
        self.stats.merge(run_stats)
        return SweepResult(
            spec=spec, cells=cells, results=results, stats=run_stats
        )

    # ------------------------------------------------------------------
    def _notify(self, done: int, total: int, cell: Cell, source: str) -> None:
        if self.progress is not None:
            self.progress(done, total, cell, source)


def run_experiment(
    spec: ExperimentSpec, executor: Optional[SweepExecutor] = None
) -> Any:
    """Execute a spec and apply its reducer (if any).

    The one entry point every experiment module funnels through: with a
    ``reduce`` callable the artifact comes back, otherwise the raw
    :class:`~repro.exec.spec.SweepResult`.
    """
    executor = executor if executor is not None else SweepExecutor()
    sweep = executor.run(spec)
    if spec.reduce is None:
        return sweep
    return spec.reduce(sweep)
