"""The sweep executor: pluggable serial and process-pool backends.

One :class:`SweepExecutor` turns an
:class:`~repro.exec.spec.ExperimentSpec` into a
:class:`~repro.exec.spec.SweepResult`.  Every cell — cached, serial or
pooled — travels through the same serialized representation
(``SimulationResult.to_dict()``), which guarantees bit-identical results
regardless of backend, worker count or cache temperature:

* the serial backend round-trips each result through the dict form;
* the process-pool backend ships config dicts to workers and result
  dicts back (no pickling of live simulator objects);
* the cache stores exactly those dicts as canonical JSON.

Cells are independent simulations, so execution order never affects the
outcome; results are always reassembled in spec cell order.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult, run_simulation
from .cache import ResultCache, config_digest
from .spec import Cell, ExperimentSpec, SweepResult

#: Progress callback signature: (cells done, cells total, cell, source)
#: where source is ``"cache"`` or ``"run"``.
ProgressCallback = Callable[[int, int, Cell, str], None]


@dataclass
class ExecutionStats:
    """What one ``run()`` (or an executor lifetime) actually did."""

    simulated: int = 0
    cache_hits: int = 0
    wall_clock_seconds: float = 0.0

    @property
    def cells(self) -> int:
        """Total cells accounted for."""
        return self.simulated + self.cache_hits

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another run's stats into this one."""
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.wall_clock_seconds += other.wall_clock_seconds


def _execute_cell(config_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: config dict in, result dict out.

    Module-level (not a closure) so the process-pool backend can pickle
    it; the dict round trip keeps worker transport identical to the
    cache format.
    """
    config = SimulationConfig.from_dict(config_payload)
    return run_simulation(config).to_dict()


class SweepExecutor:
    """Runs sweep cells serially or across a process pool, with caching.

    Parameters
    ----------
    workers:
        Maximum concurrent simulations.  ``1`` (default) executes
        in-process; larger values fan cells out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    cache:
        Optional :class:`~repro.exec.cache.ResultCache`.  When present,
        cells whose config digest is already stored load from disk
        instead of simulating, and fresh results are stored back.
    progress:
        Optional callback invoked after every finished cell with
        ``(done, total, cell, source)``.

    Independently of the on-disk cache, the executor memoises every
    cell it runs for its own lifetime, so sweeps sharing cells within
    one executor (figures 1 and 2 run the same threshold grid) cost one
    set of simulations even with the disk cache disabled.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        #: Cumulative stats across every run() of this executor.
        self.stats = ExecutionStats()
        # In-process memo (digest -> payload) for this executor's lifetime.
        self._memo: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> SweepResult:
        """Execute every cell of ``spec`` and return the aligned results."""
        started = time.perf_counter()
        cells = spec.cells()
        total = len(cells)
        payloads: List[Optional[Dict[str, Any]]] = [None] * total
        run_stats = ExecutionStats()
        done = 0

        pending: List[int] = []
        digests: Dict[int, str] = {}
        for i, cell in enumerate(cells):
            digest = config_digest(cell.config)
            digests[i] = digest
            payload = self._memo.get(digest)
            if payload is None and self.cache is not None:
                payload = self.cache.load(digest)
            if payload is not None:
                payloads[i] = payload
                self._memo[digest] = payload
                run_stats.cache_hits += 1
                done += 1
                self._notify(done, total, cell, "cache")
                continue
            pending.append(i)

        def finish(i: int, payload: Dict[str, Any]) -> None:
            nonlocal done
            payloads[i] = payload
            self._memo[digests[i]] = payload
            if self.cache is not None:
                self.cache.store(digests[i], payload)
            run_stats.simulated += 1
            done += 1
            self._notify(done, total, cells[i], "run")

        if self.workers == 1 or len(pending) <= 1:
            for i in pending:
                finish(i, _execute_cell(cells[i].config.to_dict()))
        else:
            max_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(_execute_cell, cells[i].config.to_dict()): i
                    for i in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        finish(futures[future], future.result())

        results = [
            SimulationResult.from_dict(payload) for payload in payloads
        ]
        run_stats.wall_clock_seconds = time.perf_counter() - started
        self.stats.merge(run_stats)
        return SweepResult(
            spec=spec, cells=cells, results=results, stats=run_stats
        )

    # ------------------------------------------------------------------
    def _notify(self, done: int, total: int, cell: Cell, source: str) -> None:
        if self.progress is not None:
            self.progress(done, total, cell, source)


def run_experiment(
    spec: ExperimentSpec, executor: Optional[SweepExecutor] = None
) -> Any:
    """Execute a spec and apply its reducer (if any).

    The one entry point every experiment module funnels through: with a
    ``reduce`` callable the artifact comes back, otherwise the raw
    :class:`~repro.exec.spec.SweepResult`.
    """
    executor = executor if executor is not None else SweepExecutor()
    sweep = executor.run(spec)
    if spec.reduce is None:
        return sweep
    return spec.reduce(sweep)
