"""Declarative experiment execution: specs, sweep executor, result cache.

This subsystem factors the sweep machinery out of the individual
experiment modules (in the spirit of factorised query processing): an
experiment is an :class:`ExperimentSpec` — parameter grid x seeds, a
pure ``cell -> SimulationConfig`` builder and a ``results -> artifact``
reducer — and one :class:`SweepExecutor` runs any spec through a named
execution backend (``serial``, ``process`` or ``distributed``; see
:data:`EXECUTION_BACKENDS`), with an optional content-addressed on-disk
:class:`ResultCache`.

Guarantee: for a fixed spec, the serialized results are byte-identical
regardless of backend, worker count, host count or cache temperature.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    canonical_json,
    config_digest,
)
from .executor import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ExecutionStats,
    SweepExecutor,
    run_experiment,
)

# Importing the module registers the "distributed" backend.
from .distributed import (
    DEFAULT_LEASE_TTL,
    DEFAULT_POLL_INTERVAL,
    DistributedBackend,
    LeaseDirectory,
    LeaseInfo,
    default_worker_id,
)
from .spec import Cell, ExperimentSpec, SweepResult

__all__ = [
    "Cell",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_POLL_INTERVAL",
    "DistributedBackend",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionStats",
    "ExperimentSpec",
    "LeaseDirectory",
    "LeaseInfo",
    "ResultCache",
    "SweepExecutor",
    "SweepResult",
    "canonical_json",
    "config_digest",
    "default_worker_id",
    "run_experiment",
]
