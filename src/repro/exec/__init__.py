"""Declarative experiment execution: specs, sweep executor, result cache.

This subsystem factors the sweep machinery out of the individual
experiment modules (in the spirit of factorised query processing): an
experiment is an :class:`ExperimentSpec` — parameter grid x seeds, a
pure ``cell -> SimulationConfig`` builder and a ``results -> artifact``
reducer — and one :class:`SweepExecutor` runs any spec serially or
across a process pool, with an optional content-addressed on-disk
:class:`ResultCache`.

Guarantee: for a fixed spec, the serialized results are byte-identical
regardless of backend, worker count or cache temperature.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    canonical_json,
    config_digest,
)
from .executor import (
    ExecutionStats,
    SweepExecutor,
    run_experiment,
)
from .spec import Cell, ExperimentSpec, SweepResult

__all__ = [
    "Cell",
    "DEFAULT_CACHE_DIR",
    "ExecutionStats",
    "ExperimentSpec",
    "ResultCache",
    "SweepExecutor",
    "SweepResult",
    "canonical_json",
    "config_digest",
    "run_experiment",
]
