"""Coordinator-less distributed sweep backend over a shared cache directory.

Any number of worker processes — on one host or on many hosts sharing a
mount (NFS or anything with atomic ``link``/``rename``) — run the same
:class:`~repro.exec.spec.ExperimentSpec` against the same
:class:`~repro.exec.cache.ResultCache` directory.  There is no network
protocol and no dedicated coordinator: the shared filesystem is the
whole control plane.

* **Claiming.**  A worker claims a cell by writing its lease payload
  to a private file and hard-linking it to
  ``<cache>/leases/<digest>.lease``; ``link(2)`` succeeds for exactly
  one contender, and the lease is only ever visible with full content.
  The content-addressed config digest doubles as the queue key, so
  every worker derives an identical work list from the spec alone.
* **Heartbeating.**  While simulating, a daemon thread rewrites the
  lease every ``ttl / 4`` seconds.  A lease whose heartbeat is older
  than its recorded ``ttl`` is *abandoned*: any worker may steal it by
  renaming it aside (one ``rename`` winner) and re-claiming, so a
  killed worker loses only the cell it was computing.
* **Publishing.**  Finished payloads go through
  :meth:`ResultCache.store` (atomic write + rename) *before* the lease
  is released; other workers pick them up as cache hits.

Correctness never rests on the leases.  Cells are deterministic
functions of their config digest and the cache store is atomic and
last-writer-wins over identical bytes, so the worst a lease race or a
clock-skewed steal can cost is duplicated work — never divergent
results.  That is the invariant that makes cells location-transparent:
serial, process-pool and distributed executions of one spec are
byte-identical (see ``tests/exec/test_distributed.py``).

Operational notes: ``ttl`` must comfortably exceed both one cell's
heartbeat gap and cross-host clock skew (the default of 60 s assumes
NTP-sane hosts); on NFSv3 mount with actimeo small enough that lease
mtimes propagate faster than ``ttl``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .executor import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    _execute_cell,
)

#: Seconds without a heartbeat before a lease counts as abandoned.
DEFAULT_LEASE_TTL = 60.0

#: Seconds a worker sleeps between passes when every remaining cell is
#: leased out to live peers.
DEFAULT_POLL_INTERVAL = 0.2


def default_worker_id() -> str:
    """A worker identity unique per process: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class LeaseInfo:
    """The decoded content of one lease file."""

    worker_id: str
    pid: int
    host: str
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the holder has missed heartbeats for a full TTL.

        Expiry is judged against the TTL *recorded in the lease* (the
        holder's own promise), so workers with different settings agree
        on when a lease is dead.
        """
        now = time.time() if now is None else now  # replint: disable=R001 (lease liveness is wall-clock by design)
        return now > self.heartbeat_at + self.ttl


class LeaseDirectory:
    """Atomic cell leases in a shared directory.

    One instance per worker: ``worker_id`` identifies this process in
    lease files, ``ttl`` is the abandonment promise it records in the
    leases it takes.  All methods are safe under concurrent use from
    any number of workers on any number of hosts sharing the directory.
    """

    def __init__(
        self,
        root: Union[str, Path],
        worker_id: Optional[str] = None,
        ttl: float = DEFAULT_LEASE_TTL,
    ):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.worker_id = worker_id or default_worker_id()
        self.ttl = float(ttl)
        # acquired_at of leases this worker currently holds, so
        # heartbeats preserve the original acquisition time.
        self._held: Dict[str, float] = {}

    def path_for(self, digest: str) -> Path:
        """Where the lease file of one cell digest lives."""
        return self.root / f"{digest}.lease"

    # ------------------------------------------------------------------
    # Claim / release
    # ------------------------------------------------------------------
    def try_acquire(self, digest: str) -> bool:
        """Claim one cell; True when this worker now holds the lease.

        A fresh cell is claimed by hard-linking a fully-written lease
        payload into place (exactly one winner among racing workers).
        A lease whose heartbeat expired — its worker was killed or
        lost the mount — is stolen: the stale file is renamed aside
        (again one winner) and the claim retried.
        """
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Read before writing: polling workers retry leased cells every
        # poll interval, and a live lease must cost one read — not a
        # write-temp/link/unlink cycle of shared-mount metadata traffic.
        info = self.read(digest)
        if info is not None and not info.expired():
            return False
        if info is None:
            # Free (or vanished mid-read): race the claim directly.
            if self._create(digest, path):
                return True
            info = self.read(digest)  # lost the race — to whom?
            if info is not None and not info.expired():
                return False
        # Abandoned (or unreadable) lease: steal it.  Renaming to a
        # unique tombstone arbitrates concurrent stealers — rename(2)
        # succeeds for exactly one of them, the rest lose the source.
        tombstone = path.with_name(f"{path.name}.stale-{uuid.uuid4().hex}")  # replint: disable=R001 (unique cross-host tombstone name)
        try:
            os.rename(path, tombstone)
        except OSError:
            return False  # another worker stole or released it first
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return self._create(digest, path)

    def release(self, digest: str) -> None:
        """Drop this worker's lease on a cell.

        If the lease was stolen while we were (wrongly presumed) dead,
        the file now belongs to another worker and is left alone.
        """
        self._held.pop(digest, None)
        info = self.read(digest)
        if info is not None and info.worker_id != self.worker_id:
            return
        try:
            os.unlink(self.path_for(digest))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def heartbeat(self, digest: str) -> None:
        """Refresh the heartbeat timestamp of a lease this worker holds."""
        path = self.path_for(digest)
        temp = path.with_name(f"{path.name}.hb-{uuid.uuid4().hex}")  # replint: disable=R001 (unique cross-host temp name)
        temp.write_text(self._payload(digest), encoding="utf-8")
        os.replace(temp, path)

    @contextmanager
    def heartbeating(
        self, digest: str, interval: Optional[float] = None
    ) -> Iterator[None]:
        """Context manager beating a held lease from a daemon thread.

        The default interval, ``ttl / 4``, gives a live worker three
        missed beats of slack before anyone may steal its cell.
        """
        interval = interval if interval is not None else self.ttl / 4.0
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.heartbeat(digest)
                except OSError:
                    pass  # mount hiccup; the next beat retries

        thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{digest[:8]}", daemon=True
        )
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def read(self, digest: str) -> Optional[LeaseInfo]:
        """The current lease on a cell, or None if free/corrupt."""
        try:
            raw = json.loads(
                self.path_for(digest).read_text(encoding="utf-8")
            )
            return LeaseInfo(
                worker_id=str(raw["worker_id"]),
                pid=int(raw["pid"]),
                host=str(raw["host"]),
                acquired_at=float(raw["acquired_at"]),
                heartbeat_at=float(raw["heartbeat_at"]),
                ttl=float(raw["ttl"]),
            )
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def held(self) -> List[str]:
        """Digests of the leases this worker believes it holds."""
        return sorted(self._held)

    def scan(self) -> Dict[str, LeaseInfo]:
        """Every readable lease in the directory, keyed by digest.

        The ops surface of the sweep service (queue depth, lease ages)
        is built on this: it is a read-only snapshot and never mutates
        or steals anything.  Corrupt or mid-steal files are skipped,
        exactly as :meth:`read` treats them.
        """
        leases: Dict[str, LeaseInfo] = {}
        try:
            paths = sorted(self.root.glob("*.lease"))
        except OSError:
            return leases
        for path in paths:
            digest = path.name[: -len(".lease")]
            info = self.read(digest)
            if info is not None:
                leases[digest] = info
        return leases

    # ------------------------------------------------------------------
    def _payload(self, digest: str) -> str:
        now = time.time()  # replint: disable=R001 (lease heartbeats are wall-clock by design)
        acquired = self._held.get(digest, now)
        return json.dumps(
            {
                "worker_id": self.worker_id,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": acquired,
                "heartbeat_at": now,
                "ttl": self.ttl,
            },
            sort_keys=True,
        )

    def _create(self, digest: str, path: Path) -> bool:
        # Write-then-link, the classic NFS-safe claim: the payload is
        # written to a private file first and hard-linked into place,
        # so the lease only ever becomes visible with full content.
        # (A bare O_CREAT|O_EXCL + write is NOT enough — a peer reading
        # between creation and write sees an empty "corrupt" lease and
        # steals the cell, duplicating work.)  link(2) fails with
        # EEXIST for all but exactly one contender.
        temp = path.with_name(f"{path.name}.claim-{uuid.uuid4().hex}")  # replint: disable=R001 (unique cross-host temp name)
        self._held[digest] = time.time()  # replint: disable=R001 (lease acquisition is wall-clock by design)
        try:
            temp.write_text(self._payload(digest), encoding="utf-8")
            try:
                os.link(temp, path)
            except FileExistsError:
                self._held.pop(digest, None)
                return False
        except BaseException:
            self._held.pop(digest, None)
            raise
        finally:
            try:
                os.unlink(temp)
            except OSError:
                pass
        return True


@EXECUTION_BACKENDS.register("distributed")
class DistributedBackend(ExecutionBackend):
    """Cells sharded across every worker pointed at one cache directory.

    Each participant loops over its remaining cells: anything another
    worker already published loads from the cache; anything unclaimed
    is leased, simulated under a heartbeat, stored, released.  When all
    remaining cells are leased to live peers the worker sleeps
    ``poll_interval`` and rescans — which is also how it notices (and
    reclaims) cells whose worker died.  The loop ends when every cell
    of the spec has a result, so the caller always receives the full
    sweep regardless of how many peers helped.

    ``workers > 1`` composes the two axes of parallelism: this
    participant claims up to ``workers`` leases at a time and runs
    them on a local process pool (never hoarding more cells than it
    can actually compute), while other hosts shard the rest.
    """

    name = "distributed"

    def execute(self, executor, cells, pending, digests, finish):
        cache = executor.cache
        if cache is None:  # SweepExecutor.__init__ already enforces this
            raise ValueError("distributed backend requires a result cache")
        leases = LeaseDirectory(
            cache.lease_root,
            worker_id=executor.worker_id,
            ttl=executor.lease_ttl or DEFAULT_LEASE_TTL,
        )
        poll = (
            executor.poll_interval
            if executor.poll_interval is not None
            else DEFAULT_POLL_INTERVAL
        )
        if executor.workers > 1 and len(pending) > 1:
            self._drain_pooled(
                executor, cells, pending, digests, finish, cache,
                leases, poll,
            )
        else:
            self._drain_sequential(
                executor, cells, pending, digests, finish, cache,
                leases, poll,
            )

    # ------------------------------------------------------------------
    def _drain_sequential(
        self, executor, cells, pending, digests, finish, cache, leases, poll
    ):
        remaining = list(pending)
        while remaining:
            progressed = False
            deferred: List[int] = []
            for i in remaining:
                digest = digests[i]
                payload = cache.load(digest)
                if payload is not None:  # published by a peer
                    finish(i, payload, source="cache", store=False)
                    progressed = True
                    continue
                if not leases.try_acquire(digest):
                    deferred.append(i)  # a live peer is on it
                    continue
                try:
                    # Re-check under the lease: the cell's worker may
                    # have published and released between our cache
                    # probe and our claim.
                    payload = cache.load(digest)
                    if payload is None:
                        with leases.heartbeating(
                            digest, executor.heartbeat_interval
                        ):
                            payload = _execute_cell(
                                cells[i].config.to_dict()
                            )
                        cache.store(digest, payload)
                        source = "run"
                    else:
                        source = "cache"
                finally:
                    leases.release(digest)
                finish(i, payload, source=source, store=False)
                progressed = True
            remaining = deferred
            if remaining and not progressed:
                time.sleep(poll)

    def _drain_pooled(
        self, executor, cells, pending, digests, finish, cache, leases, poll
    ):
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )
        from contextlib import ExitStack

        remaining = list(pending)
        in_flight: Dict[object, tuple] = {}  # future -> (i, digest, stack)
        with ProcessPoolExecutor(
            max_workers=min(executor.workers, len(pending))
        ) as pool:
            try:
                while remaining or in_flight:
                    progressed = False
                    deferred: List[int] = []
                    for i in remaining:
                        digest = digests[i]
                        # Probe the cache before the capacity gate so
                        # peer-published results are collected even
                        # while our own pool is saturated.
                        payload = cache.load(digest)
                        if payload is not None:
                            finish(i, payload, source="cache", store=False)
                            progressed = True
                            continue
                        if len(in_flight) >= executor.workers:
                            deferred.append(i)
                            continue
                        if not leases.try_acquire(digest):
                            deferred.append(i)
                            continue
                        payload = cache.load(digest)  # re-check (above)
                        if payload is not None:
                            leases.release(digest)
                            finish(i, payload, source="cache", store=False)
                            progressed = True
                            continue
                        stack = ExitStack()
                        stack.enter_context(
                            leases.heartbeating(
                                digest, executor.heartbeat_interval
                            )
                        )
                        future = pool.submit(
                            _execute_cell, cells[i].config.to_dict()
                        )
                        in_flight[future] = (i, digest, stack)
                        progressed = True
                    remaining = deferred
                    if not in_flight:
                        if remaining and not progressed:
                            time.sleep(poll)
                        continue
                    done, _ = wait(
                        set(in_flight),
                        timeout=poll if remaining else None,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        i, digest, stack = in_flight.pop(future)
                        try:
                            payload = future.result()
                            # Publish before releasing, same as the
                            # sequential path, so no peer can reclaim
                            # a cell whose result exists.
                            cache.store(digest, payload)
                        finally:
                            stack.close()
                            leases.release(digest)
                        finish(i, payload, source="run", store=False)
            finally:
                for _, digest, stack in in_flight.values():
                    stack.close()
                    leases.release(digest)
