"""Round-based peer-to-peer simulator (the PeerSim substitute)."""

from .config import PAPER_OBSERVERS, ObserverSpec, SimulationConfig
from .driver import SimulationDriver
from .engine import Simulation, SimulationResult, run_simulation
from .events import Event, EventKind, EventQueue
from .fidelity import FIDELITY_BACKENDS, available_fidelities, simulation_for
from .protocol import ProtocolSimulation
from .metrics import CategoryCounters, MetricsCollector, SeriesPoint
from .network import Population, SampleableSet
from .observers import build_observer_peer, observer_table, scaled_observers
from .peer import ArchiveState, Peer
from .rng import STREAM_NAMES, RngStreams

__all__ = [
    "PAPER_OBSERVERS",
    "ObserverSpec",
    "SimulationConfig",
    "Simulation",
    "SimulationDriver",
    "SimulationResult",
    "ProtocolSimulation",
    "FIDELITY_BACKENDS",
    "available_fidelities",
    "simulation_for",
    "run_simulation",
    "Event",
    "EventKind",
    "EventQueue",
    "CategoryCounters",
    "MetricsCollector",
    "SeriesPoint",
    "Population",
    "SampleableSet",
    "build_observer_peer",
    "observer_table",
    "scaled_observers",
    "ArchiveState",
    "Peer",
    "RngStreams",
    "STREAM_NAMES",
]
