"""Observer peers (paper section 4.2.2, table T4).

"An observer is a special peer, whose age does not increase like the age
of other peers.  Other peers cannot choose an observer as a partner, but
the observer can choose other peers as partners, without however
consuming their quota.  As normal peers, it has to repair if its number
of available blocks decreases below the repair threshold."

Observers are the paper's measurement instrument for figure 3: by
pinning the age, the repair rate *at* that age can be read over the whole
run instead of only during the short window a normal peer spends there.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..churn.profiles import DURABLE, ROUNDS_PER_DAY
from .config import PAPER_OBSERVERS, ObserverSpec
from .peer import Peer


def observer_table(
    specs: Sequence[ObserverSpec] = PAPER_OBSERVERS,
) -> Dict[str, str]:
    """The observer table (T4) as ``name -> age`` strings."""
    def describe(rounds: int) -> str:
        if rounds % (30 * ROUNDS_PER_DAY) == 0 and rounds >= 30 * ROUNDS_PER_DAY:
            return f"{rounds // (30 * ROUNDS_PER_DAY)} month(s)"
        if rounds % (7 * ROUNDS_PER_DAY) == 0 and rounds >= 7 * ROUNDS_PER_DAY:
            return f"{rounds // (7 * ROUNDS_PER_DAY)} week(s)"
        if rounds % ROUNDS_PER_DAY == 0 and rounds >= ROUNDS_PER_DAY:
            return f"{rounds // ROUNDS_PER_DAY} day(s)"
        return f"{rounds} hour(s)"

    return {spec.name: describe(spec.fixed_age) for spec in specs}


def scaled_observers(
    age_scale: float, specs: Sequence[ObserverSpec] = PAPER_OBSERVERS
) -> Tuple[ObserverSpec, ...]:
    """Observers with ages multiplied by ``age_scale`` (min 1 round).

    Used when a scaled run shortens the age cap L: observer ages must
    shrink proportionally to keep their position relative to the cap.
    """
    if age_scale <= 0:
        raise ValueError("age_scale must be positive")
    return tuple(
        ObserverSpec(spec.name, max(int(spec.fixed_age * age_scale), 1))
        for spec in specs
    )


def build_observer_peer(peer_id: int, spec: ObserverSpec, join_round: int) -> Peer:
    """Construct the simulator peer for an observer spec.

    Observers never churn: they are the measurement probe, so they use
    the durable profile, stay online and never die.
    """
    return Peer(
        peer_id=peer_id,
        profile=DURABLE,
        join_round=join_round,
        death_round=None,
        is_observer=True,
        fixed_age=spec.fixed_age,
        observer_name=spec.name,
    )
