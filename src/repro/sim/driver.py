"""The shared round-driving skeleton behind every fidelity backend.

:class:`SimulationDriver` owns everything that makes two fidelities of
the same scenario comparable: the calendar event queue, churn arrivals
and deaths, session toggles, the named RNG streams, the metrics
surface, partner-pool construction (selection strategy + mutual
acceptance) and the consistency audit.  What it deliberately does *not*
decide is how repairs, placements and restores execute — those are the
fidelity axis, supplied by subclasses registered in
:mod:`repro.sim.fidelity`:

* :class:`repro.sim.engine.Simulation` (``abstract``) executes them as
  instantaneous state flips — the fast path behind the figures;
* :class:`repro.sim.protocol.ProtocolSimulation` (``protocol``)
  executes them as real message exchanges gated by the bandwidth model.

Because the driver draws churn, sessions and recruitment from the same
seeded streams regardless of backend, two fidelities of one config
share their churn trajectory, and same-seed runs of either backend are
byte-identical after serialization.

The engine is event-driven internally (a peer only executes when
something it must react to happens) but semantically round-based: every
event carries the round it fires in, ties are broken uniformly at
random, and repairs triggered in round ``t`` execute in round ``t + 1``,
matching the paper's "each round, every peer monitors its partners"
loop without the O(population x rounds) scan.
"""

from __future__ import annotations

import math
from itertools import chain
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..churn.availability import geometric_duration, session_duration_params
from ..churn.lifetimes import from_profile
from ..churn.profiles import Profile
from ..core.acceptance import (
    AcceptancePolicy,
    UniformAcceptancePolicy,
    acceptance_rule,
)
from ..core.adaptive import AdaptiveThreshold
from ..core.policy import RepairPolicy
from ..core.selection import Candidate, SelectionStrategy, strategy_by_name
from .config import SimulationConfig
from .events import Event, EventKind, EventQueue
from .metrics import MetricsCollector
from .network import Population
from .observers import build_observer_peer
from .peer import Peer
from .rng import (
    GEOMETRIC_SCALAR_LIMIT,
    RngStreams,
    geometric_from_uniforms,
    geometric_from_uniforms_scalar,
    pool_chunk_size,
)


class SimulationDriver:
    """Round/event skeleton shared by all fidelity backends.

    Subclasses implement the execution trio — :meth:`_run_placement`,
    :meth:`_run_repair`, :meth:`_handle_top_up` — and may override the
    lifecycle hooks (``_on_peer_spawned`` / ``_on_peer_departed`` /
    ``_on_session_flip`` / ``_sample_extras``) and contribute extra
    event handlers via :meth:`_extra_dispatch`.
    """

    #: The registered fidelity name (informational; dispatch happens
    #: through ``repro.sim.fidelity.FIDELITY_BACKENDS``).
    fidelity = "abstract"

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.policy: RepairPolicy = config.policy()
        self.acceptance = acceptance_rule(config.acceptance_rule, config.age_cap)
        self.strategy: SelectionStrategy = strategy_by_name(config.selection_strategy)
        self.rng = RngStreams(config.seed)
        self.queue = EventQueue(self.rng.ordering)
        self.population = Population()
        self.metrics = MetricsCollector(config.categories, config.warmup_rounds)
        self.round = 0
        # Per-profile session constants (shared with the SoA backend via
        # session_duration_params, so batch-drawn durations stay
        # bit-identical across fidelities) replace the per-peer
        # SessionProcess objects of earlier releases: the peer's current
        # ``online`` flag plus these constants fully determine the next
        # duration draw.
        self._profile_index = {id(p): i for i, p in enumerate(config.profiles)}
        self._session_params = [
            session_duration_params(p.availability, p.mean_online_session)
            for p in config.profiles
        ]
        self._session_draws = self.rng.batched("sessions")
        self._profile_weights = [p.proportion for p in config.profiles]
        self.peers_created = 0
        self.deaths = 0
        # Strategies declare their candidate-data needs (registry-based
        # extension point: third-party strategies get the same service).
        self._needs_oracle = bool(getattr(self.strategy, "needs_oracle", False))
        self._needs_availability = bool(
            getattr(self.strategy, "needs_availability", False)
        )
        # Hot-path state: with no declared data needs the recruitment
        # loop works on plain (peer_id, age) pairs instead of Candidate
        # objects, and the built-in acceptance rules are inlined rather
        # than dispatched per candidate.  Exact type checks: a subclass
        # may override decide() and must keep the generic path.
        self._fast_candidates = not (self._needs_oracle or self._needs_availability)
        if type(self.acceptance) is AcceptancePolicy:
            self._acceptance_kind = "age"
        elif type(self.acceptance) is UniformAcceptancePolicy:
            self._acceptance_kind = "uniform"
        else:
            self._acceptance_kind = "custom"
        self._repair_threshold = self.policy.repair_threshold
        self._selection_draws = self.rng.batched("selection")
        self._acceptance_draws = self.rng.batched("acceptance")
        self._setup()

    # ------------------------------------------------------------------
    # Backend hooks (no-ops at abstract fidelity)
    # ------------------------------------------------------------------
    def _on_peer_spawned(self, peer: Peer) -> None:
        """A normal peer joined and is fully wired into the engine."""

    def _on_peer_departed(self, peer: Peer, now: int) -> None:
        """A peer left definitively; engine-side teardown is complete."""

    def _on_session_flip(self, peer: Peer, now: int) -> None:
        """A peer's online/offline state changed (already propagated)."""

    def _sample_extras(self, now: int) -> None:
        """Extend the periodic metrics census with backend-specific data."""

    def _extra_dispatch(self) -> Dict[EventKind, Callable]:
        """Additional ``EventKind -> handler(now, event)`` entries."""
        return {}

    # ------------------------------------------------------------------
    # Execution trio (the fidelity axis)
    # ------------------------------------------------------------------
    def _run_placement(self, owner: Peer, now: int) -> None:
        """Upload blocks until all n are placed (the initial d = n repair)."""
        raise NotImplementedError

    def _run_repair(self, owner: Peer, now: int) -> None:
        """Decode-and-reupload repair (paper section 2.2.3)."""
        raise NotImplementedError

    def _handle_top_up(self, now: int, peer: Peer) -> None:
        """Proactive-replication tick (baseline A4): keep holders at n."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _setup(self) -> None:
        config = self.config
        for _ in range(config.population):
            if config.staggered_join_rounds:
                join_round = int(
                    self.rng.placement.integers(config.staggered_join_rounds)
                )
            else:
                join_round = 0
            self.queue.schedule(join_round, Event(EventKind.JOIN))
        for spec in config.observers:
            observer = build_observer_peer(self.population.new_id(), spec, 0)
            if config.adaptive_thresholds:
                observer.adaptive = AdaptiveThreshold(self.policy)
            self.population.insert(observer)
            self._schedule_check(observer, 0)
        self.queue.schedule(0, Event(EventKind.SAMPLE))

    def _draw_profile(self) -> Profile:
        index = int(
            self.rng.profiles.choice(len(self.config.profiles), p=self._profile_weights)
        )
        return self.config.profiles[index]

    def _spawn_peer(self, join_round: int) -> Peer:
        profile = self._draw_profile()
        lifetime = from_profile(profile).sample(self.rng.lifetimes)
        death_round: Optional[int] = None
        if not math.isinf(lifetime):
            death_round = join_round + max(int(lifetime), 1)
        peer = Peer(
            peer_id=self.population.new_id(),
            profile=profile,
            join_round=join_round,
            death_round=death_round,
        )
        self.population.insert(peer)
        self.peers_created += 1
        if self.config.adaptive_thresholds:
            peer.adaptive = AdaptiveThreshold(self.policy)
        if death_round is not None:
            self.queue.schedule(death_round, Event(EventKind.DEATH, peer.peer_id))
        self._on_peer_spawned(peer)
        self._schedule_toggle(peer, join_round)
        self._schedule_check(peer, join_round)
        if self.config.proactive_rate > 0:
            self._schedule_top_up(peer, join_round)
        return peer

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def _schedule_toggle(self, peer: Peer, now: int) -> None:
        """File a fresh peer's first toggle (spawn-time, scalar draw).

        Subsequent toggles are rescheduled in bulk by
        :meth:`_process_toggle_batch`; only the spawn draw stays scalar,
        on the same ``sessions`` generator the batch refills come from,
        so the stream interleaves identically in every backend.
        """
        if self._session_params[self._profile_index[id(peer.profile)]][0]:
            return  # always online: no session process
        duration = geometric_duration(
            self.rng.sessions, peer.profile.mean_online_session
        )
        self.queue.schedule_toggle(now + duration, peer.peer_id)

    def _schedule_check(self, peer: Peer, when: int) -> None:
        """Queue a repair/placement check, deduplicating pending ones.

        A check pending for a *later* round is cancelled and replaced:
        a block loss wanting a check next round must not be swallowed by
        a retry sitting further in the future, or the archive would sit
        unmonitored below threshold until that retry fires.
        """
        scheduled = peer.check_scheduled
        if scheduled is not None:
            if when >= scheduled:
                return
            self.queue.cancel(peer.check_handle)
        peer.check_scheduled = when
        peer.check_handle = self.queue.schedule(
            when, Event(EventKind.REPAIR_CHECK, peer.peer_id)
        )

    def _schedule_top_up(self, peer: Peer, now: int) -> None:
        interval = max(int(round(1.0 / self.config.proactive_rate)), 1)
        self.queue.schedule(now + interval, Event(EventKind.TOP_UP, peer.peer_id))

    # ------------------------------------------------------------------
    # Holder/owner mutation helpers (the only places links change)
    # ------------------------------------------------------------------
    def _add_holder(self, owner: Peer, holder: Peer) -> None:
        archive = owner.archive
        archive.holders[holder.peer_id] = None
        archive.visible += 1
        archive.alive += 1
        if owner.is_observer:
            holder.hosted_free.add(owner.peer_id)
        else:
            holder.hosted.add(owner.peer_id)

    def _drop_holder(self, owner: Peer, holder: Peer) -> None:
        """Owner abandons a holder (repair replacement or post-loss reset)."""
        archive = owner.archive
        invisible_since = archive.holders.pop(holder.peer_id)
        if holder.alive:
            archive.alive -= 1
            if invisible_since is None:
                archive.visible -= 1
        if owner.is_observer:
            holder.hosted_free.discard(owner.peer_id)
        else:
            holder.hosted.discard(owner.peer_id)

    def _release_all_holders(self, owner: Peer) -> None:
        for holder_id in list(owner.archive.holders):
            self._drop_holder(owner, self.population.get(holder_id))

    def _needs_repair(self, owner: Peer, visible: int) -> bool:
        """Threshold test, honouring a per-peer adaptive controller (A5)."""
        adaptive = owner.adaptive
        if adaptive is not None:
            return adaptive.needs_repair(visible)
        return visible < self._repair_threshold

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_join(self, now: int) -> None:
        self._spawn_peer(now)

    def _handle_death(self, now: int, peer: Peer) -> None:
        if not peer.alive or peer.is_observer:
            return
        self.deaths += 1
        peer.accumulate_uptime(now)
        self.population.remove(peer)
        peer_id = peer.peer_id
        peers = self.population.peers

        # The departed peer's own blocks disappear from its partners.
        for holder_id in peer.archive.holders:
            peers[holder_id].hosted.discard(peer_id)
        peer.archive.holders.clear()

        # Blocks it hosted for others vanish "immediately" (section 4.1):
        # detach every link first, then evaluate loss/threshold once per
        # surviving owner, so the owner sets are iterated zero-copy and
        # each owner's check runs against its final post-death counters.
        affected: List[Peer] = []
        for owner_id in chain(peer.hosted, peer.hosted_free):
            owner = peers[owner_id]
            if not owner.alive:
                continue
            archive = owner.archive
            invisible_since = archive.holders.pop(peer_id, None)
            archive.alive -= 1
            if invisible_since is None:
                # A None timestamp means the holder was visible (online).
                archive.visible -= 1
            affected.append(owner)
        peer.hosted.clear()
        peer.hosted_free.clear()
        self._on_peer_departed(peer, now)
        for owner in affected:
            self._after_block_loss(owner, now)

        # Immediate replacement by a fresh peer (section 4.1).
        self.queue.schedule(now, Event(EventKind.JOIN))

    def _after_block_loss(self, owner: Peer, now: int) -> None:
        """React to a permanent block disappearance on ``owner``'s archive."""
        archive = owner.archive
        if archive.placed and self.policy.is_lost(archive.alive):
            self._record_loss(owner, now)
            return
        if archive.placed and self._needs_repair(owner, archive.visible):
            self._schedule_check(owner, now + 1)

    def _record_loss(self, owner: Peer, now: int) -> None:
        archive = owner.archive
        archive.lost_count += 1
        self.metrics.record_loss(now, owner.age(now), owner.observer_name)
        self._release_all_holders(owner)
        archive.reset()
        # The user still has local data to back up again: a fresh
        # placement follows (next round at the earliest).
        self._schedule_check(owner, now + 1)

    def _process_toggle_batch(self, now: int, peer_ids: np.ndarray) -> None:
        """Flip every session toggling this round in one batched pass.

        The queue hands over the round's whole toggle bucket (sorted
        ascending by peer id) and the kernel runs six fixed passes:
        filter dead peers, flip states, fan the visibility change out to
        owners, threshold-check affected owners against their *final*
        visible count, self-service checks for peers coming online, and
        one bulk duration draw for the reschedules.  The SoA backend
        implements the identical passes over its columns, which is what
        keeps the two fidelities metric-identical per seed.
        """
        peers = self.population.peers
        batch: List[Peer] = []
        for peer_id in peer_ids.tolist():
            peer = peers[peer_id]
            if peer.alive:
                batch.append(peer)
        if not batch:
            return
        going_offline: List[Peer] = []
        coming_online: List[Peer] = []
        for peer in batch:
            peer.accumulate_uptime(now)
            if peer.online:
                peer.online = False
                self.population.mark_offline(peer)
                going_offline.append(peer)
            else:
                peer.online = True
                self.population.mark_online(peer)
                coming_online.append(peer)
        # Visibility fan-out: owners see disappearances first, then
        # reappearances; repair decisions below read the net result.
        affected: Dict[int, Peer] = {}
        for holder in going_offline:
            holder_id = holder.peer_id
            for owner_id in chain(holder.hosted, holder.hosted_free):
                owner = peers[owner_id]
                if not owner.alive:
                    continue
                archive = owner.archive
                if holder_id not in archive.holders:
                    continue
                archive.holders[holder_id] = now
                archive.visible -= 1
                affected[owner_id] = owner
        for holder in coming_online:
            holder_id = holder.peer_id
            for owner_id in chain(holder.hosted, holder.hosted_free):
                owner = peers[owner_id]
                if not owner.alive:
                    continue
                archive = owner.archive
                if holder_id not in archive.holders:
                    continue
                archive.holders[holder_id] = None
                archive.visible += 1
        threshold = self._repair_threshold
        for owner_id in sorted(affected):
            owner = affected[owner_id]
            archive = owner.archive
            if not archive.placed:
                continue
            adaptive = owner.adaptive
            if (
                adaptive.needs_repair(archive.visible)
                if adaptive is not None
                else archive.visible < threshold
            ):
                self._schedule_check(owner, now + 1)
        for peer in batch:
            if peer.online:
                if peer.pending_check:
                    peer.pending_check = False
                    self._schedule_check(peer, now)
                archive = peer.archive
                if archive.placed and self._needs_repair(peer, archive.visible):
                    self._schedule_check(peer, now)
            self._on_session_flip(peer, now)
        # Bulk reschedule: one uniform per non-degenerate duration, in
        # batch (ascending id) order, inverted through the shared
        # geometric kernel.  Means <= 1 round clamp to a single round
        # without consuming a draw, mirroring geometric_duration.
        params = self._session_params
        index = self._profile_index
        need_ids: List[int] = []
        need_log: List[float] = []
        ones_ids: List[int] = []
        for peer in batch:
            always_online, online_log, offline_log = params[index[id(peer.profile)]]
            if always_online:
                continue
            log1mp = online_log if peer.online else offline_log
            if log1mp == log1mp:  # not NaN: a real geometric draw
                need_ids.append(peer.peer_id)
                need_log.append(log1mp)
            else:
                ones_ids.append(peer.peer_id)
        count = len(need_ids)
        if count:
            if count < GEOMETRIC_SCALAR_LIMIT:
                uniforms = self._session_draws.take(count)
                schedule_toggle = self.queue.schedule_toggle
                for peer_id, duration in zip(
                    need_ids, geometric_from_uniforms_scalar(uniforms, need_log)
                ):
                    schedule_toggle(now + duration, peer_id)
            else:
                uniforms = self._session_draws.take_array(count)
                durations = geometric_from_uniforms(uniforms, np.array(need_log))
                self.queue.schedule_toggle_batch(
                    now + durations, np.array(need_ids, dtype=np.int64)
                )
        for peer_id in ones_ids:
            self.queue.schedule_toggle(now + 1, peer_id)

    def _handle_check(self, now: int, peer: Peer) -> None:
        peer.check_scheduled = None
        peer.check_handle = None
        if not peer.alive:
            return
        if not peer.online:
            peer.pending_check = True
            return
        archive = peer.archive
        if not archive.placed:
            self._run_placement(peer, now)
            return
        if self.policy.is_lost(archive.alive):
            self._record_loss(peer, now)
            return
        if not self._needs_repair(peer, archive.visible):
            if not archive.fully_placed:
                # The initial upload of n blocks has not completed yet
                # (section 3.2: it is one operation that may span rounds
                # when the network is young or partners are scarce).
                # Once it completes, maintenance is threshold-only.
                self._run_placement(peer, now)
            return
        if not self.policy.can_decode(archive.visible):
            archive.blocked_count += 1
            if peer.adaptive is not None:
                peer.adaptive.on_blocked(now)
            self.metrics.record_blocked(now, peer.age(now), peer.observer_name)
            self._schedule_check(peer, now + 1)
            return
        self._run_repair(peer, now)

    # ------------------------------------------------------------------
    # Partner recruitment (pool + mutual acceptance + strategy)
    # ------------------------------------------------------------------
    def _fill_pool(
        self, owner: Peer, now: int, target_size: int, max_examined: int
    ) -> List[Union[Candidate, Tuple[int, int]]]:
        """Fused candidate sampling and mutual acceptance (section 3.2).

        Draws are consumed in *chunks* rather than one at a time: each
        pass takes ``chunk_size`` selection uniforms up front, filters
        the sampled candidates (first occurrence only, not the owner,
        not already a holder, quota not exhausted), then consumes
        exactly two acceptance uniforms per filtered candidate —
        unconditionally, even when the owner's own draw already
        rejected.  Chunked consumption makes the draw count a pure
        function of the chunk's content, which is what lets the SoA
        backend (:mod:`repro.sim.engine_soa`) evaluate whole chunks as
        numpy array operations while replaying the identical stream.
        The chunk is sized so one pass almost always fills the pool;
        candidate *evaluation* (and the ``examined`` count) stops at
        the candidate that fills it, so the reported pool statistics
        stay one-at-a-time semantics even though draw consumption is
        chunk-granular.  The loop bounds are re-checked only between
        chunks.

        When the strategy declares no data needs, no
        :class:`Candidate` object is ever built: the pool is a list of
        ``(peer_id, age)`` pairs.
        """
        population = self.population
        peers = population.peers
        online = population.online_candidates
        selection = self._selection_draws
        acceptance = self._acceptance_draws
        seen = set()
        accepted: List[Union[Candidate, Tuple[int, int]]] = []
        examined = 0
        if online:
            sample_budget = 8 * len(online) + 64
            owner_id = owner.peer_id
            owner_age = owner.age(now)
            holders = owner.archive.holders
            check_quota = not owner.is_observer
            quota = self.config.quota
            fast = self._fast_candidates
            rule = self._acceptance_kind
            if rule == "age":
                cap = self.acceptance.age_cap
                s_owner = owner_age if owner_age < cap else cap
            while (
                sample_budget > 0
                and examined < max_examined
                and len(accepted) < target_size
            ):
                chunk_size = pool_chunk_size(target_size - len(accepted))
                if chunk_size > sample_budget:
                    chunk_size = sample_budget
                sample_budget -= chunk_size
                chunk = online.sample_chunk(selection.take(chunk_size))
                fresh: List[int] = []
                for candidate_id in chunk:
                    if candidate_id in seen:
                        continue
                    seen.add(candidate_id)
                    if candidate_id == owner_id or candidate_id in holders:
                        continue
                    if check_quota and len(peers[candidate_id].hosted) >= quota:
                        continue
                    fresh.append(candidate_id)
                pairs = (
                    acceptance.take(2 * len(fresh))
                    if rule != "uniform"
                    else ()
                )
                for position, candidate_id in enumerate(fresh):
                    if len(accepted) >= target_size:
                        break
                    examined += 1
                    # Candidates are never observers.
                    age = now - peers[candidate_id].join_round
                    if rule == "age":
                        # Inlined AcceptancePolicy: accept iff
                        # u < (L - s1 + s2 + 1)/L (min(p, 1) is free, u < 1).
                        s_cand = age if age < cap else cap
                        if pairs[2 * position] * cap >= cap - s_owner + s_cand + 1:
                            continue  # owner rejects
                        if pairs[2 * position + 1] * cap >= cap - s_cand + s_owner + 1:
                            continue  # candidate rejects
                    elif rule != "uniform":
                        decide = self.acceptance.decide
                        if not decide(owner_age, age, pairs[2 * position]):
                            continue
                        if not decide(age, owner_age, pairs[2 * position + 1]):
                            continue
                    if fast:
                        accepted.append((candidate_id, age))
                    else:
                        accepted.append(
                            self._describe_candidate(peers[candidate_id])
                        )
        del accepted[target_size:]
        self.metrics.record_pool(examined, len(accepted))
        return accepted

    def _describe_candidate(self, candidate: Peer) -> Candidate:
        availability = None
        remaining = None
        if self._needs_availability:
            availability = candidate.measured_availability(self.round)
        if self._needs_oracle:
            remaining = candidate.remaining_lifetime(self.round)
        return Candidate(
            peer_id=candidate.peer_id,
            age=candidate.age(self.round),
            availability=availability,
            true_remaining_lifetime=remaining,
        )

    def _select_candidates(self, owner: Peer, now: int, needed: int) -> List[int]:
        """Pool-build then strategy-select the best ``needed`` partner ids.

        This is the backend-independent half of recruitment: both the
        abstract engine (which then flips counters) and the protocol
        backend (which then sends real store requests) consult the same
        selection strategy and acceptance rule here, drawing from the
        same RNG streams.
        """
        pool_target = int(math.ceil(self.config.pool_factor * needed))
        max_examined = int(self.config.max_examined_factor * needed) + 16
        pool = self._fill_pool(owner, now, pool_target, max_examined)
        if self._fast_candidates:
            return self.strategy.select_pairs(pool, needed, self.rng.selection)
        return self.strategy.select(pool, needed, self.rng.selection)

    def _handle_sample(self, now: int) -> None:
        ages = [peer.age(now) for peer in self.population.alive_normal_peers()]
        self.metrics.sample(now, ages, self.config.sample_interval)
        self._sample_extras(now)
        upcoming = now + self.config.sample_interval
        if upcoming <= self.config.rounds:
            self.queue.schedule(upcoming, Event(EventKind.SAMPLE))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self):
        """Execute the configured number of rounds and return the result."""
        import time

        from .engine import SimulationResult

        started = time.perf_counter()
        dispatch = {
            EventKind.JOIN: lambda now, event: self._handle_join(now),
            EventKind.DEATH: lambda now, event: self._handle_death(
                now, self.population.get(event.peer_id)
            ),
            EventKind.TOGGLE_BATCH: lambda now, event: self._process_toggle_batch(
                now, self.queue.pop_round_batch()
            ),
            EventKind.REPAIR_CHECK: lambda now, event: self._handle_check(
                now, self.population.get(event.peer_id)
            ),
            EventKind.SAMPLE: lambda now, event: self._handle_sample(now),
            EventKind.TOP_UP: lambda now, event: self._handle_top_up(
                now, self.population.get(event.peer_id)
            ),
        }
        dispatch.update(self._extra_dispatch())
        for now, event in self.queue.drain_until(self.config.rounds):
            self.round = now
            handler = dispatch[event.kind]
            handler(now, event)
        self._finalize(self.config.rounds)
        elapsed = time.perf_counter() - started
        return SimulationResult(
            config=self.config,
            metrics=self.metrics,
            final_round=self.config.rounds,
            wall_clock_seconds=elapsed,
            peers_created=self.peers_created,
            deaths=self.deaths,
        )

    def _finalize(self, final_round: int) -> None:
        """Backend hook run after the last event, before result assembly."""

    # ------------------------------------------------------------------
    # Consistency audit (used by integration and property tests)
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Recompute all incremental state from scratch; return violations."""
        problems: List[str] = []
        for peer in self.population.peers.values():
            if not peer.alive:
                continue
            archive = peer.archive
            visible = alive = 0
            for holder_id, invisible_since in archive.holders.items():
                holder = self.population.peers.get(holder_id)
                if holder is None or not holder.alive:
                    problems.append(
                        f"peer {peer.peer_id}: holder {holder_id} is dead or unknown"
                    )
                    continue
                alive += 1
                if holder.online:
                    if invisible_since is not None:
                        problems.append(
                            f"peer {peer.peer_id}: holder {holder_id} online "
                            "but marked invisible"
                        )
                    visible += 1
                mirror = holder.hosted_free if peer.is_observer else holder.hosted
                if peer.peer_id not in mirror:
                    problems.append(
                        f"peer {peer.peer_id}: holder {holder_id} misses back-link"
                    )
            if visible != archive.visible:
                problems.append(
                    f"peer {peer.peer_id}: visible counter {archive.visible} != "
                    f"recount {visible}"
                )
            if alive != archive.alive:
                problems.append(
                    f"peer {peer.peer_id}: alive counter {archive.alive} != "
                    f"recount {alive}"
                )
            if len(peer.hosted) > self.config.quota:
                problems.append(
                    f"peer {peer.peer_id}: quota exceeded "
                    f"({len(peer.hosted)} > {self.config.quota})"
                )
            for owner_id in peer.hosted | peer.hosted_free:
                owner = self.population.peers.get(owner_id)
                if owner is None or not owner.alive:
                    problems.append(
                        f"peer {peer.peer_id}: hosts for dead owner {owner_id}"
                    )
                elif peer.peer_id not in owner.archive.holders:
                    problems.append(
                        f"peer {peer.peer_id}: hosts for {owner_id} without "
                        "forward link"
                    )
        return problems
