"""The fidelity-backend registry: how faithfully a run executes.

Every scenario in this repository is runnable at more than one
*fidelity* — the same churn trajectory, the same seeded RNG streams,
the same metrics surface, but a different answer to "what actually
happens when a peer repairs":

* ``abstract`` (:class:`repro.sim.engine.Simulation`) — the fast path
  behind every figure: peers are counters, repairs and placements are
  instantaneous state flips.  This is the engine the paper's
  quantitative claims are reproduced with.
* ``abstract_soa`` (:class:`repro.sim.engine_soa.SoaSimulation`) — the
  abstract semantics, draw-for-draw, on structure-of-arrays state
  tables: identical metrics, a fraction of the time and memory.  The
  backend for very large populations (10^5-10^6 peers).
* ``protocol`` (:class:`repro.sim.protocol.ProtocolSimulation`) —
  repairs, recruitment and restores execute as real ``StoreRequest`` /
  ``FetchRequest`` exchanges over an in-memory transport, transfer
  completion is gated by the access-link bandwidth model, and the
  backup layer's fairness ledgers are enforced.

Backends register here exactly like every other component registry
(:mod:`repro.registry`): a backend is a ``config -> simulation``
callable whose result exposes ``run() -> SimulationResult``.  The
built-ins live in modules that import :mod:`repro.sim.config`, so the
registry resolves them lazily to keep imports acyclic.
"""

from __future__ import annotations

from ..registry import Registry

#: Registry of fidelity backends: name -> Simulation class (or any
#: ``config -> simulation`` factory).
FIDELITY_BACKENDS: Registry[type] = Registry("fidelity backend")


def _ensure_builtin_backends() -> None:
    """Import the modules that register the built-in backends."""
    from . import engine, engine_soa, protocol  # noqa: F401  (import = registration)


def check_fidelity(name: str) -> None:
    """Validate a fidelity name, with the registry's rich error."""
    _ensure_builtin_backends()
    FIDELITY_BACKENDS.check(name)


def available_fidelities():
    """Names of all registered fidelity backends."""
    _ensure_builtin_backends()
    return FIDELITY_BACKENDS.names()


def simulation_for(config):
    """Instantiate the simulation backend ``config.fidelity`` names."""
    _ensure_builtin_backends()
    return FIDELITY_BACKENDS.get(config.fidelity)(config)
