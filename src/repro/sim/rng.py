"""Deterministic random-number streams for the simulator.

A single root seed fans out into named, independent substreams (numpy
``SeedSequence`` children), so that e.g. churn draws and partner-selection
draws do not perturb each other when a config knob changes.  This is what
makes two runs with the same seed byte-identical and two runs differing
only in, say, the repair threshold still share their churn trajectory.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Draws fetched from the underlying generator per buffer refill.  Large
#: enough to amortise the numpy call, small enough that a run which only
#: needs a handful of draws does not pay for a huge vector.
DEFAULT_BLOCK = 4096


class BatchedDraws:
    """Block-buffered scalar draws from one numpy generator.

    The simulation hot loop consumes random numbers one at a time
    (candidate sampling, acceptance coin flips, intra-round tiebreaks).
    Scalar calls on ``numpy.random.Generator`` cost ~1µs each — dominated
    by call overhead, not by random-bit generation.  This wrapper refills
    a vector of uniforms in blocks and hands them out as plain Python
    floats, turning a million scalar RNG calls into a few hundred
    vectorised ones.

    Determinism: the draw sequence is a pure function of the underlying
    generator's state, so seeded runs stay reproducible.  Mixing batched
    and direct draws on the same generator is safe (refills interleave
    deterministically) but changes the consumption pattern relative to
    purely scalar code — same-seed runs of the *same* code remain
    byte-identical.
    """

    __slots__ = ("_rng", "_block", "_buffer", "_np_buffer", "_position")

    def __init__(self, rng: np.random.Generator, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buffer = ()
        self._np_buffer = np.empty(0)
        self._position = 0

    def _refill(self) -> None:
        # The list view is materialised lazily (`_list_view`): scalar
        # consumers index a list (C-speed float access), but a stream
        # drained purely through :meth:`take_array` never pays the
        # ``tolist``.
        self._np_buffer = self._rng.random(self._block)
        self._buffer = None
        self._position = 0

    def _list_view(self) -> list:
        buffer = self._np_buffer.tolist()
        self._buffer = buffer
        return buffer

    def next_uniform(self) -> float:
        """One uniform float in ``[0, 1)``."""
        position = self._position
        buffer = self._buffer
        if buffer is None:
            buffer = self._list_view()
        if position >= len(buffer):
            self._refill()
            buffer = self._list_view()
            position = 0
        self._position = position + 1
        return buffer[position]

    def next_integer(self, n: int) -> int:
        """One uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        position = self._position
        buffer = self._buffer
        if buffer is None:
            buffer = self._list_view()
        if position >= len(buffer):
            self._refill()
            buffer = self._list_view()
            position = 0
        self._position = position + 1
        value = int(buffer[position] * n)
        # float rounding can land exactly on n for huge n; clamp.
        return value if value < n else n - 1

    def take(self, n: int) -> list:
        """The next ``n`` uniforms in ``[0, 1)`` as one list.

        Chunked consumption for vectorisable consumers (the recruitment
        pool fill): the result is exactly what ``n`` successive
        :meth:`next_uniform` calls would have returned, so scalar and
        chunked consumers of one stream interleave deterministically.
        """
        out: list = []
        position = self._position
        buffer = self._buffer
        if buffer is None:
            buffer = self._list_view()
        length = len(buffer)
        while n > 0:
            if position >= length:
                self._refill()
                buffer = self._list_view()
                length = len(buffer)
                position = 0
            grab = n if n <= length - position else length - position
            out.extend(buffer[position : position + grab])
            position += grab
            n -= grab
        self._position = position
        return out

    def take_array(self, n: int) -> np.ndarray:
        """The next ``n`` uniforms as a numpy vector.

        Same stream position semantics as :meth:`take` — ``take_array(n)``
        and ``take(n)`` return the same values (``tolist`` round-trips
        float64 exactly) — but without the list detour, for consumers
        that feed the result straight into array expressions.  The
        common case (the request fits the current block) returns a
        zero-copy view.
        """
        position = self._position
        buffer = self._np_buffer
        length = len(buffer)
        if 0 < n <= length - position:
            self._position = position + n
            return buffer[position : position + n]
        parts = []
        while n > 0:
            if position >= length:
                self._refill()
                buffer = self._np_buffer
                length = len(buffer)
                position = 0
            grab = n if n <= length - position else length - position
            parts.append(buffer[position : position + grab])
            position += grab
            n -= grab
        self._position = position
        return np.concatenate(parts) if parts else np.empty(0)


def geometric_from_uniforms(uniforms: np.ndarray, log1mp: np.ndarray) -> np.ndarray:
    """Vectorised inverse-CDF geometric draws on ``{1, 2, ...}``.

    ``log1mp`` holds ``log1p(-p)`` per draw (precomputed once per
    profile); ``uniforms`` come from :meth:`BatchedDraws.take_array`.
    Inverting the CDF — ``d = 1 + floor(log1p(-u) / log1p(-p))`` — gives
    the same distribution as ``Generator.geometric`` with mean ``1/p``
    while consuming plain uniforms, which is what lets every engine
    draw a whole toggle batch's durations with one call *and* stay
    bit-identical across backends: both feed the identical uniform
    vector through this one function, so no scalar-vs-SIMD libm
    divergence can creep in.  ``u == 0`` maps to 1 (``floor(-0.0)`` is
    ``-0.0``) and ``u < 1`` always holds for numpy uniforms, so the
    result is a finite integer ``>= 1``.
    """
    return np.floor(np.log1p(-uniforms) / log1mp).astype(np.int64) + 1


def pool_chunk_size(remaining: int) -> int:
    """Selection draws one pool-fill pass takes for ``remaining`` slots.

    Sized so dedup losses and the ~one-half mutual-acceptance rate still
    fill the pool in a single pass almost always, without sampling far
    past what the pass can use (the examined cut stops early anyway).
    Chunk boundaries decide which uniforms map to which candidate, so
    engines only stay draw-identical by sharing this exact formula.
    """
    return 4 * remaining + 16


#: Batches below this many draws invert the geometric CDF with scalar
#: ``math`` calls instead of numpy vectors (``geometric_from_uniforms``
#: pays several microseconds of array dispatch per call, which dominates
#: single-digit batches).  Every engine must branch on the same constant
#: so both sides of an equivalence run take the same code path for the
#: same batch.
GEOMETRIC_SCALAR_LIMIT = 32


def geometric_from_uniforms_scalar(
    uniforms: Sequence[float], log1mp: Sequence[float]
) -> List[int]:
    """Scalar twin of :func:`geometric_from_uniforms` for tiny batches.

    Consumes the same uniforms (from :meth:`BatchedDraws.take`, which
    returns exactly the values ``take_array`` would) and computes the
    same inversion with ``math.log1p`` / ``math.floor``.  Both engines
    route batches under :data:`GEOMETRIC_SCALAR_LIMIT` through this
    function, so the backends stay bit-identical by construction even
    where libm and numpy's vector loops disagree in the last ulp (no
    such disagreement flips a duration in practice: ``floor`` only
    notices when the quotient lands exactly on an integer).
    """
    floor = math.floor
    log1p = math.log1p
    return [floor(log1p(-u) / l) + 1 for u, l in zip(uniforms, log1mp)]


#: Stable stream names used by the engine; listed here so tests can
#: assert the full set.
STREAM_NAMES = (
    "profiles",
    "lifetimes",
    "sessions",
    "acceptance",
    "selection",
    "ordering",
    "placement",
    "impairment",
)


class RngStreams:
    """Named independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        children = self._root.spawn(len(STREAM_NAMES))
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(STREAM_NAMES, children)
        }
        self._batched: Dict[str, BatchedDraws] = {}
        self._extra_spawned = 0

    def stream(self, name: str) -> np.random.Generator:
        """The generator for a named stream."""
        try:
            return self._streams[name]
        except KeyError:
            raise ValueError(
                f"unknown RNG stream {name!r}; available: {sorted(self._streams)}"
            ) from None

    def __getattr__(self, name: str) -> np.random.Generator:
        # Convenience: streams.sessions instead of streams.stream("sessions").
        streams = self.__dict__.get("_streams")
        if streams and name in streams:
            return streams[name]
        raise AttributeError(name)

    def batched(self, name: str, block: int = DEFAULT_BLOCK) -> BatchedDraws:
        """A block-buffered draw source over the named stream (cached).

        Repeated calls with the same name return the same buffer, so all
        consumers of a stream share one refill cursor.
        """
        try:
            return self._batched[name]
        except KeyError:
            draws = BatchedDraws(self.stream(name), block)
            self._batched[name] = draws
            return draws

    def spawn(self) -> np.random.Generator:
        """A fresh independent generator (e.g. one per ad-hoc component)."""
        self._extra_spawned += 1
        (child,) = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(len(STREAM_NAMES) + self._extra_spawned,)
        ).spawn(1)
        return np.random.default_rng(child)


def seed_sequence(seed: Optional[int] = None) -> np.random.SeedSequence:
    """The blessed way to build a ``SeedSequence`` outside this module.

    R001 (rng-discipline) bans direct ``numpy.random.SeedSequence``
    construction in simulation code so every root of randomness is
    greppable in one place; components that manage their own spawn
    hierarchy (e.g. the backup swarm harness) obtain it here.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def seeded_generator(seed=None) -> np.random.Generator:
    """The blessed way to construct a seeded generator outside this module.

    Accepts anything ``numpy.random.default_rng`` accepts (an int seed,
    ``None``, or a ``SeedSequence`` child from :func:`seed_sequence`),
    and returns a bit-identical generator — it exists so R001 can pin
    *where* generators come from without changing what they produce.
    """
    return np.random.default_rng(seed)
