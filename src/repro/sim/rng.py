"""Deterministic random-number streams for the simulator.

A single root seed fans out into named, independent substreams (numpy
``SeedSequence`` children), so that e.g. churn draws and partner-selection
draws do not perturb each other when a config knob changes.  This is what
makes two runs with the same seed byte-identical and two runs differing
only in, say, the repair threshold still share their churn trajectory.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

#: Stable stream names used by the engine; listed here so tests can
#: assert the full set.
STREAM_NAMES = (
    "profiles",
    "lifetimes",
    "sessions",
    "acceptance",
    "selection",
    "ordering",
    "placement",
)


class RngStreams:
    """Named independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        children = self._root.spawn(len(STREAM_NAMES))
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(STREAM_NAMES, children)
        }
        self._extra_spawned = 0

    def stream(self, name: str) -> np.random.Generator:
        """The generator for a named stream."""
        try:
            return self._streams[name]
        except KeyError:
            raise ValueError(
                f"unknown RNG stream {name!r}; available: {sorted(self._streams)}"
            ) from None

    def __getattr__(self, name: str) -> np.random.Generator:
        # Convenience: streams.sessions instead of streams.stream("sessions").
        streams = self.__dict__.get("_streams")
        if streams and name in streams:
            return streams[name]
        raise AttributeError(name)

    def spawn(self) -> np.random.Generator:
        """A fresh independent generator (e.g. one per ad-hoc component)."""
        self._extra_spawned += 1
        (child,) = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(len(STREAM_NAMES) + self._extra_spawned,)
        ).spawn(1)
        return np.random.default_rng(child)
