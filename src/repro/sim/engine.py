"""The round-based simulation engine (PeerSim substitute).

One :class:`Simulation` object runs one configuration end to end:

* churn — joins, definitive departures with immediate replacement
  (paper section 4.1), and availability session toggles;
* the backup protocol — initial placement, per-round monitoring,
  threshold repairs with mutual-acceptance partner recruitment
  (section 3.2);
* metrics — per-category counters and the cumulative series behind
  figures 1-4.

The engine is event-driven internally (a peer only executes when
something it must react to happens) but semantically round-based: every
event carries the round it fires in, ties are broken uniformly at
random, and repairs triggered in round ``t`` execute in round ``t + 1``,
matching the paper's "each round, every peer monitors its partners"
loop without the O(population x rounds) scan.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..churn.availability import SessionProcess
from ..churn.lifetimes import from_profile
from ..churn.profiles import Profile
from ..core.acceptance import acceptance_rule
from ..core.adaptive import AdaptiveThreshold
from ..core.policy import RepairPolicy
from ..core.pool import build_pool
from ..core.selection import Candidate, SelectionStrategy, strategy_by_name
from .config import SimulationConfig
from .events import Event, EventKind, EventQueue
from .metrics import MetricsCollector
from .network import Population
from .observers import build_observer_peer
from .peer import Peer
from .rng import RngStreams


@dataclass
class SimulationResult:
    """Everything a finished run exposes to experiments and tests."""

    config: SimulationConfig
    metrics: MetricsCollector
    final_round: int
    wall_clock_seconds: float
    peers_created: int
    deaths: int

    def repair_rates(self) -> Dict[str, float]:
        """Figure 1's y-values: repairs per round per 1000 peers, by category."""
        return {
            name: self.metrics.repair_rate_per_1000(name)
            for name in self.metrics.by_category
        }

    def loss_rates(self) -> Dict[str, float]:
        """Figure 2's y-values: losses per round per 1000 peers, by category."""
        return {
            name: self.metrics.loss_rate_per_1000(name)
            for name in self.metrics.by_category
        }

    def observer_totals(self) -> Dict[str, int]:
        """Figure 3's endpoints: total repairs per observer."""
        return dict(self.metrics.observer_repairs)

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-data form (JSON-safe) of the run's canonical content.

        ``wall_clock_seconds`` is deliberately excluded: it is a transient
        measurement of the machine, not of the simulation, and its
        exclusion is what makes serialized results byte-identical across
        executor backends and cache round trips.
        """
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
            "final_round": self.final_round,
            "peers_created": self.peers_created,
            "deaths": self.deaths,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (wall clock reads 0)."""
        return cls(
            config=SimulationConfig.from_dict(data["config"]),
            metrics=MetricsCollector.from_dict(data["metrics"]),
            final_round=data["final_round"],
            wall_clock_seconds=0.0,
            peers_created=data["peers_created"],
            deaths=data["deaths"],
        )


class Simulation:
    """One simulation run of the peer-to-peer backup system."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.policy: RepairPolicy = config.policy()
        self.acceptance = acceptance_rule(config.acceptance_rule, config.age_cap)
        self.strategy: SelectionStrategy = strategy_by_name(config.selection_strategy)
        self.rng = RngStreams(config.seed)
        self.queue = EventQueue(self.rng.ordering)
        self.population = Population()
        self.metrics = MetricsCollector(config.categories, config.warmup_rounds)
        self.round = 0
        self._sessions: Dict[int, SessionProcess] = {}
        self._profile_weights = [p.proportion for p in config.profiles]
        self.peers_created = 0
        self.deaths = 0
        # Strategies declare their candidate-data needs (registry-based
        # extension point: third-party strategies get the same service).
        self._needs_oracle = bool(getattr(self.strategy, "needs_oracle", False))
        self._needs_availability = bool(
            getattr(self.strategy, "needs_availability", False)
        )
        self._setup()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _setup(self) -> None:
        config = self.config
        for _ in range(config.population):
            if config.staggered_join_rounds:
                join_round = int(
                    self.rng.placement.integers(config.staggered_join_rounds)
                )
            else:
                join_round = 0
            self.queue.schedule(join_round, Event(EventKind.JOIN))
        for spec in config.observers:
            observer = build_observer_peer(self.population.new_id(), spec, 0)
            if config.adaptive_thresholds:
                observer.adaptive = AdaptiveThreshold(self.policy)
            self.population.insert(observer)
            self._schedule_check(observer, 0)
        self.queue.schedule(0, Event(EventKind.SAMPLE))

    def _draw_profile(self) -> Profile:
        index = int(
            self.rng.profiles.choice(len(self.config.profiles), p=self._profile_weights)
        )
        return self.config.profiles[index]

    def _spawn_peer(self, join_round: int) -> Peer:
        profile = self._draw_profile()
        lifetime = from_profile(profile).sample(self.rng.lifetimes)
        death_round: Optional[int] = None
        if not math.isinf(lifetime):
            death_round = join_round + max(int(lifetime), 1)
        peer = Peer(
            peer_id=self.population.new_id(),
            profile=profile,
            join_round=join_round,
            death_round=death_round,
        )
        self.population.insert(peer)
        self.peers_created += 1
        self._sessions[peer.peer_id] = SessionProcess(
            availability=profile.availability,
            mean_online=profile.mean_online_session,
            rng=self.rng.sessions,
        )
        if self.config.adaptive_thresholds:
            peer.adaptive = AdaptiveThreshold(self.policy)
        if death_round is not None:
            self.queue.schedule(death_round, Event(EventKind.DEATH, peer.peer_id))
        self._schedule_toggle(peer, join_round)
        self._schedule_check(peer, join_round)
        if self.config.proactive_rate > 0:
            self._schedule_top_up(peer, join_round)
        return peer

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def _schedule_toggle(self, peer: Peer, now: int) -> None:
        session = self._sessions[peer.peer_id]
        if session.always_online:
            return
        duration = session.next_session_length()
        self.queue.schedule(now + duration, Event(EventKind.TOGGLE, peer.peer_id))

    def _schedule_check(self, peer: Peer, when: int) -> None:
        """Queue a repair/placement check, deduplicating pending ones."""
        if peer.check_scheduled is not None:
            return
        peer.check_scheduled = when
        self.queue.schedule(when, Event(EventKind.REPAIR_CHECK, peer.peer_id))

    def _schedule_top_up(self, peer: Peer, now: int) -> None:
        interval = max(int(round(1.0 / self.config.proactive_rate)), 1)
        self.queue.schedule(now + interval, Event(EventKind.TOP_UP, peer.peer_id))

    # ------------------------------------------------------------------
    # Holder/owner mutation helpers (the only places links change)
    # ------------------------------------------------------------------
    def _add_holder(self, owner: Peer, holder: Peer) -> None:
        archive = owner.archive
        archive.holders[holder.peer_id] = None
        archive.visible += 1
        archive.alive += 1
        if owner.is_observer:
            holder.hosted_free.add(owner.peer_id)
        else:
            holder.hosted.add(owner.peer_id)

    def _drop_holder(self, owner: Peer, holder: Peer) -> None:
        """Owner abandons a holder (repair replacement or post-loss reset)."""
        archive = owner.archive
        invisible_since = archive.holders.pop(holder.peer_id)
        if holder.alive:
            archive.alive -= 1
            if invisible_since is None:
                archive.visible -= 1
        if owner.is_observer:
            holder.hosted_free.discard(owner.peer_id)
        else:
            holder.hosted.discard(owner.peer_id)

    def _release_all_holders(self, owner: Peer) -> None:
        for holder_id in list(owner.archive.holders):
            self._drop_holder(owner, self.population.get(holder_id))

    def _needs_repair(self, owner: Peer, visible: int) -> bool:
        """Threshold test, honouring a per-peer adaptive controller (A5)."""
        if owner.adaptive is not None:
            return owner.adaptive.needs_repair(visible)
        return self.policy.needs_repair(visible)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_join(self, now: int) -> None:
        self._spawn_peer(now)

    def _handle_death(self, now: int, peer: Peer) -> None:
        if not peer.alive or peer.is_observer:
            return
        self.deaths += 1
        peer.accumulate_uptime(now)
        self.population.remove(peer)

        # The departed peer's own blocks disappear from its partners.
        for holder_id in list(peer.archive.holders):
            holder = self.population.get(holder_id)
            holder.hosted.discard(peer.peer_id)
        peer.archive.holders.clear()

        # Blocks it hosted for others vanish "immediately" (section 4.1).
        for owner_id in list(peer.hosted) + list(peer.hosted_free):
            owner = self.population.get(owner_id)
            if not owner.alive:
                continue
            archive = owner.archive
            invisible_since = archive.holders.pop(peer.peer_id, None)
            archive.alive -= 1
            if invisible_since is None:
                # A None timestamp means the holder was visible (online).
                archive.visible -= 1
            self._after_block_loss(owner, now)
        peer.hosted.clear()
        peer.hosted_free.clear()
        self._sessions.pop(peer.peer_id, None)

        # Immediate replacement by a fresh peer (section 4.1).
        self.queue.schedule(now, Event(EventKind.JOIN))

    def _after_block_loss(self, owner: Peer, now: int) -> None:
        """React to a permanent block disappearance on ``owner``'s archive."""
        archive = owner.archive
        if archive.placed and self.policy.is_lost(archive.alive):
            self._record_loss(owner, now)
            return
        if archive.placed and self._needs_repair(owner, archive.visible):
            self._schedule_check(owner, now + 1)

    def _record_loss(self, owner: Peer, now: int) -> None:
        archive = owner.archive
        archive.lost_count += 1
        self.metrics.record_loss(now, owner.age(now), owner.observer_name)
        self._release_all_holders(owner)
        archive.reset()
        # The user still has local data to back up again: a fresh
        # placement follows (next round at the earliest).
        self._schedule_check(owner, now + 1)

    def _handle_toggle(self, now: int, peer: Peer) -> None:
        if not peer.alive:
            return
        peer.accumulate_uptime(now)
        session = self._sessions[peer.peer_id]
        session.toggle()
        peer.online = session.online
        if peer.online:
            self.population.mark_online(peer)
            self._set_visibility(peer, now, visible=True)
            if peer.pending_check:
                peer.pending_check = False
                self._schedule_check(peer, now)
            if peer.archive.placed and self._needs_repair(peer, peer.archive.visible):
                self._schedule_check(peer, now)
        else:
            self.population.mark_offline(peer)
            self._set_visibility(peer, now, visible=False)
        self._schedule_toggle(peer, now)

    def _set_visibility(self, holder: Peer, now: int, visible: bool) -> None:
        """Propagate a holder's online flip to every owner it stores for."""
        for owner_id in list(holder.hosted) + list(holder.hosted_free):
            owner = self.population.get(owner_id)
            if not owner.alive:
                continue
            archive = owner.archive
            if holder.peer_id not in archive.holders:
                continue
            if visible:
                archive.holders[holder.peer_id] = None
                archive.visible += 1
            else:
                archive.holders[holder.peer_id] = now
                archive.visible -= 1
                if archive.placed and self._needs_repair(owner, archive.visible):
                    self._schedule_check(owner, now + 1)

    def _handle_check(self, now: int, peer: Peer) -> None:
        peer.check_scheduled = None
        if not peer.alive:
            return
        if not peer.online:
            peer.pending_check = True
            return
        archive = peer.archive
        if not archive.placed:
            self._run_placement(peer, now)
            return
        if self.policy.is_lost(archive.alive):
            self._record_loss(peer, now)
            return
        if not self._needs_repair(peer, archive.visible):
            if not archive.fully_placed:
                # The initial upload of n blocks has not completed yet
                # (section 3.2: it is one operation that may span rounds
                # when the network is young or partners are scarce).
                # Once it completes, maintenance is threshold-only.
                self._run_placement(peer, now)
            return
        if not self.policy.can_decode(archive.visible):
            archive.blocked_count += 1
            if peer.adaptive is not None:
                peer.adaptive.on_blocked(now)
            self.metrics.record_blocked(now, peer.age(now), peer.observer_name)
            self._schedule_check(peer, now + 1)
            return
        self._run_repair(peer, now)

    def _run_placement(self, owner: Peer, now: int) -> None:
        """Upload blocks until all n are placed (the initial d = n repair).

        The peer counts as *placed* (included in the network, section
        3.2) once the visible count clears the repair threshold, but the
        upload keeps retrying until all ``n`` holders exist — important
        when the whole population joins in the same round and early
        placers see only a partially built network.
        """
        archive = owner.archive
        needed = self.policy.n - len(archive.holders)
        if needed > 0:
            self._recruit(owner, now, needed)
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if archive.visible >= self.policy.repair_threshold and not archive.placed:
            archive.placed = True
            if not owner.is_observer:
                self.metrics.record_placement(now, owner.age(now))
        if not archive.placed or not archive.fully_placed:
            self._schedule_check(owner, now + 1)

    def _run_repair(self, owner: Peer, now: int) -> None:
        """Decode-and-reupload repair (paper section 2.2.3)."""
        archive = owner.archive
        grace = self.config.grace_rounds
        for holder_id, invisible_since in list(archive.holders.items()):
            if invisible_since is not None and now - invisible_since >= grace:
                self._drop_holder(owner, self.population.get(holder_id))
        needed = self.policy.n - len(archive.holders)
        recruited = self._recruit(owner, now, needed) if needed > 0 else 0
        if recruited > 0:
            archive.repair_count += 1
            if owner.adaptive is not None:
                owner.adaptive.on_repair(now)
            self.metrics.record_repair(
                now, owner.age(now), recruited, owner.observer_name
            )
        else:
            if owner.adaptive is not None:
                owner.adaptive.on_starved(now)
            self.metrics.record_starved()
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if self._needs_repair(owner, archive.visible):
            self._schedule_check(owner, now + 1)

    def _handle_top_up(self, now: int, peer: Peer) -> None:
        """Proactive-replication tick (baseline A4): keep holders at n."""
        if not peer.alive:
            return
        if peer.online and peer.archive.placed:
            missing = self.policy.n - len(peer.archive.holders)
            if missing > 0:
                self._recruit(peer, now, 1)
        self._schedule_top_up(peer, now)

    # ------------------------------------------------------------------
    # Partner recruitment
    # ------------------------------------------------------------------
    def _candidate_stream(self, owner: Peer) -> Iterator[Candidate]:
        """Uniform stream of distinct eligible candidates."""
        seen = set()
        draws = 0
        online = self.population.online_candidates
        max_draws = 8 * len(online) + 64
        check_quota = not owner.is_observer
        while draws < max_draws:
            draws += 1
            candidate_id = online.sample(self.rng.selection)
            if candidate_id is None:
                return
            if candidate_id in seen:
                continue
            seen.add(candidate_id)
            if candidate_id == owner.peer_id:
                continue
            if candidate_id in owner.archive.holders:
                continue
            candidate = self.population.get(candidate_id)
            if check_quota and not candidate.has_free_quota(self.config.quota):
                continue
            yield self._describe_candidate(candidate)

    def _describe_candidate(self, candidate: Peer) -> Candidate:
        availability = None
        remaining = None
        if self._needs_availability:
            availability = candidate.measured_availability(self.round)
        if self._needs_oracle:
            remaining = candidate.remaining_lifetime(self.round)
        return Candidate(
            peer_id=candidate.peer_id,
            age=candidate.age(self.round),
            availability=availability,
            true_remaining_lifetime=remaining,
        )

    def _recruit(self, owner: Peer, now: int, needed: int) -> int:
        """Build a pool, select the best ``needed`` candidates, store blocks."""
        pool_target = int(math.ceil(self.config.pool_factor * needed))
        max_examined = int(self.config.max_examined_factor * needed) + 16
        pool = build_pool(
            owner_age=owner.age(now),
            candidates=self._candidate_stream(owner),
            acceptance=self.acceptance,
            rng=self.rng.acceptance,
            target_size=pool_target,
            max_examined=max_examined,
        )
        self.metrics.record_pool(pool.examined, pool.size)
        chosen = self.strategy.select(pool.accepted, needed, self.rng.selection)
        added = 0
        for candidate_id in chosen:
            holder = self.population.get(candidate_id)
            # Quota could have filled between sampling and selection.
            if not owner.is_observer and not holder.has_free_quota(self.config.quota):
                continue
            self._add_holder(owner, holder)
            added += 1
        return added

    def _handle_sample(self, now: int) -> None:
        ages = [peer.age(now) for peer in self.population.alive_normal_peers()]
        self.metrics.sample(now, ages, self.config.sample_interval)
        upcoming = now + self.config.sample_interval
        if upcoming <= self.config.rounds:
            self.queue.schedule(upcoming, Event(EventKind.SAMPLE))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the configured number of rounds and return the result."""
        started = time.perf_counter()
        dispatch = {
            EventKind.JOIN: lambda now, event: self._handle_join(now),
            EventKind.DEATH: lambda now, event: self._handle_death(
                now, self.population.get(event.peer_id)
            ),
            EventKind.TOGGLE: lambda now, event: self._handle_toggle(
                now, self.population.get(event.peer_id)
            ),
            EventKind.REPAIR_CHECK: lambda now, event: self._handle_check(
                now, self.population.get(event.peer_id)
            ),
            EventKind.SAMPLE: lambda now, event: self._handle_sample(now),
            EventKind.TOP_UP: lambda now, event: self._handle_top_up(
                now, self.population.get(event.peer_id)
            ),
        }
        for now, event in self.queue.drain_until(self.config.rounds):
            self.round = now
            handler = dispatch[event.kind]
            handler(now, event)
        elapsed = time.perf_counter() - started
        return SimulationResult(
            config=self.config,
            metrics=self.metrics,
            final_round=self.config.rounds,
            wall_clock_seconds=elapsed,
            peers_created=self.peers_created,
            deaths=self.deaths,
        )

    # ------------------------------------------------------------------
    # Consistency audit (used by integration and property tests)
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Recompute all incremental state from scratch; return violations."""
        problems: List[str] = []
        for peer in self.population.peers.values():
            if not peer.alive:
                continue
            archive = peer.archive
            visible = alive = 0
            for holder_id, invisible_since in archive.holders.items():
                holder = self.population.peers.get(holder_id)
                if holder is None or not holder.alive:
                    problems.append(
                        f"peer {peer.peer_id}: holder {holder_id} is dead or unknown"
                    )
                    continue
                alive += 1
                if holder.online:
                    if invisible_since is not None:
                        problems.append(
                            f"peer {peer.peer_id}: holder {holder_id} online "
                            "but marked invisible"
                        )
                    visible += 1
                mirror = holder.hosted_free if peer.is_observer else holder.hosted
                if peer.peer_id not in mirror:
                    problems.append(
                        f"peer {peer.peer_id}: holder {holder_id} misses back-link"
                    )
            if visible != archive.visible:
                problems.append(
                    f"peer {peer.peer_id}: visible counter {archive.visible} != "
                    f"recount {visible}"
                )
            if alive != archive.alive:
                problems.append(
                    f"peer {peer.peer_id}: alive counter {archive.alive} != "
                    f"recount {alive}"
                )
            if len(peer.hosted) > self.config.quota:
                problems.append(
                    f"peer {peer.peer_id}: quota exceeded "
                    f"({len(peer.hosted)} > {self.config.quota})"
                )
            for owner_id in peer.hosted | peer.hosted_free:
                owner = self.population.peers.get(owner_id)
                if owner is None or not owner.alive:
                    problems.append(
                        f"peer {peer.peer_id}: hosts for dead owner {owner_id}"
                    )
                elif peer.peer_id not in owner.archive.holders:
                    problems.append(
                        f"peer {peer.peer_id}: hosts for {owner_id} without "
                        "forward link"
                    )
        return problems


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Convenience one-shot: build and run a simulation."""
    return Simulation(config).run()
