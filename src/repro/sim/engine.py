"""The abstract simulation backend (PeerSim substitute) and run results.

One :class:`Simulation` object runs one configuration end to end:

* churn — joins, definitive departures with immediate replacement
  (paper section 4.1), and availability session toggles;
* the backup protocol — initial placement, per-round monitoring,
  threshold repairs with mutual-acceptance partner recruitment
  (section 3.2);
* metrics — per-category counters and the cumulative series behind
  figures 1-4.

The round-driving skeleton (event queue, churn, RNG streams, partner
pools, metrics) lives in :class:`repro.sim.driver.SimulationDriver`;
this module supplies the **abstract** fidelity on top of it: peers are
counters and repairs, placements and proactive top-ups execute as
instantaneous state flips.  It is the fast path behind every figure.
The message-level alternative is :mod:`repro.sim.protocol`; both are
registered in :data:`repro.sim.fidelity.FIDELITY_BACKENDS` and
:func:`run_simulation` dispatches on ``config.fidelity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import SimulationConfig
from .driver import SimulationDriver
from .fidelity import FIDELITY_BACKENDS
from .metrics import MetricsCollector
from .peer import Peer


@dataclass
class SimulationResult:
    """Everything a finished run exposes to experiments and tests."""

    config: SimulationConfig
    metrics: MetricsCollector
    final_round: int
    wall_clock_seconds: float
    peers_created: int
    deaths: int

    def repair_rates(self) -> Dict[str, float]:
        """Figure 1's y-values: repairs per round per 1000 peers, by category."""
        return {
            name: self.metrics.repair_rate_per_1000(name)
            for name in self.metrics.by_category
        }

    def loss_rates(self) -> Dict[str, float]:
        """Figure 2's y-values: losses per round per 1000 peers, by category."""
        return {
            name: self.metrics.loss_rate_per_1000(name)
            for name in self.metrics.by_category
        }

    def observer_totals(self) -> Dict[str, int]:
        """Figure 3's endpoints: total repairs per observer."""
        return dict(self.metrics.observer_repairs)

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-data form (JSON-safe) of the run's canonical content.

        ``wall_clock_seconds`` is deliberately excluded: it is a transient
        measurement of the machine, not of the simulation, and its
        exclusion is what makes serialized results byte-identical across
        executor backends and cache round trips.
        """
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
            "final_round": self.final_round,
            "peers_created": self.peers_created,
            "deaths": self.deaths,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (wall clock reads 0)."""
        return cls(
            config=SimulationConfig.from_dict(data["config"]),
            metrics=MetricsCollector.from_dict(data["metrics"]),
            final_round=data["final_round"],
            wall_clock_seconds=0.0,
            peers_created=data["peers_created"],
            deaths=data["deaths"],
        )


@FIDELITY_BACKENDS.register("abstract")
class Simulation(SimulationDriver):
    """The abstract fidelity: repairs as instantaneous state flips."""

    fidelity = "abstract"

    # ------------------------------------------------------------------
    # Execution trio
    # ------------------------------------------------------------------
    def _run_placement(self, owner: Peer, now: int) -> None:
        """Upload blocks until all n are placed (the initial d = n repair).

        The peer counts as *placed* (included in the network, section
        3.2) once the visible count clears the repair threshold, but the
        upload keeps retrying until all ``n`` holders exist — important
        when the whole population joins in the same round and early
        placers see only a partially built network.
        """
        archive = owner.archive
        needed = self.policy.n - len(archive.holders)
        if needed > 0:
            self._recruit(owner, now, needed)
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if archive.visible >= self.policy.repair_threshold and not archive.placed:
            archive.placed = True
            if not owner.is_observer:
                self.metrics.record_placement(now, owner.age(now))
        if not archive.placed or not archive.fully_placed:
            self._schedule_check(owner, now + 1)

    def _run_repair(self, owner: Peer, now: int) -> None:
        """Decode-and-reupload repair (paper section 2.2.3)."""
        archive = owner.archive
        grace = self.config.grace_rounds
        for holder_id, invisible_since in list(archive.holders.items()):
            if invisible_since is not None and now - invisible_since >= grace:
                self._drop_holder(owner, self.population.get(holder_id))
        needed = self.policy.n - len(archive.holders)
        recruited = self._recruit(owner, now, needed) if needed > 0 else 0
        if recruited > 0:
            archive.repair_count += 1
            if owner.adaptive is not None:
                owner.adaptive.on_repair(now)
            self.metrics.record_repair(
                now, owner.age(now), recruited, owner.observer_name
            )
        else:
            if owner.adaptive is not None:
                owner.adaptive.on_starved(now)
            self.metrics.record_starved()
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if self._needs_repair(owner, archive.visible):
            self._schedule_check(owner, now + 1)

    def _handle_top_up(self, now: int, peer: Peer) -> None:
        """Proactive-replication tick (baseline A4): keep holders at n."""
        if not peer.alive:
            return
        if peer.online and peer.archive.placed:
            missing = self.policy.n - len(peer.archive.holders)
            if missing > 0:
                self._recruit(peer, now, 1)
        self._schedule_top_up(peer, now)

    def _recruit(self, owner: Peer, now: int, needed: int) -> int:
        """Select the best ``needed`` candidates and store blocks instantly."""
        chosen = self._select_candidates(owner, now, needed)
        added = 0
        for candidate_id in chosen:
            holder = self.population.get(candidate_id)
            # Quota could have filled between sampling and selection.
            if not owner.is_observer and not holder.has_free_quota(self.config.quota):
                continue
            self._add_holder(owner, holder)
            added += 1
        return added


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run the backend ``config.fidelity`` selects, one shot."""
    from .fidelity import simulation_for

    return simulation_for(config).run()
