"""Peer and archive state inside the simulator.

State is kept deliberately mutable and slotted: a full-scale run touches
these objects hundreds of millions of times.  All invariants that matter
("the owner's holder set and the holder's hosted set mirror each other",
"the visible counter equals the recount") are enforced by the engine's
mutation helpers and verified by integration tests via
:func:`repro.sim.engine.Simulation.audit`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..churn.profiles import Profile


class ArchiveState:
    """The owner-side view of one backed-up archive.

    ``holders`` maps each partner id to the round it was last seen going
    *invisible* (``None`` while it is visible): that timestamp implements
    the optional grace period before a repair abandons the partner.

    ``visible`` counts holders that are alive *and* online; ``alive``
    counts holders that have not left the system.  Both counters are
    maintained incrementally by the engine.
    """

    __slots__ = (
        "holders",
        "visible",
        "alive",
        "placed",
        "fully_placed",
        "lost_count",
        "repair_count",
        "blocked_count",
    )

    def __init__(self):
        self.holders: Dict[int, Optional[int]] = {}
        self.visible = 0
        self.alive = 0
        #: the peer is "included in the network" (visible >= threshold).
        self.placed = False
        #: the initial upload of all n blocks completed at least once;
        #: from then on maintenance is strictly threshold-driven.
        self.fully_placed = False
        self.lost_count = 0
        self.repair_count = 0
        self.blocked_count = 0

    def reset(self) -> None:
        """Forget all placement state after a loss (fresh backup follows)."""
        self.holders.clear()
        self.visible = 0
        self.alive = 0
        self.placed = False
        self.fully_placed = False


class Peer:
    """One simulated peer.

    Observers (paper section 4.2.2) are peers whose age is pinned to
    ``fixed_age``, that other peers can never pick as partners, and whose
    blocks do not consume their holders' quota.
    """

    __slots__ = (
        "peer_id",
        "profile",
        "join_round",
        "death_round",
        "online",
        "alive",
        "archive",
        "hosted",
        "hosted_free",
        "is_observer",
        "fixed_age",
        "observer_name",
        "check_scheduled",
        "check_handle",
        "pending_check",
        "last_state_change",
        "online_rounds",
        "adaptive",
    )

    def __init__(
        self,
        peer_id: int,
        profile: Profile,
        join_round: int,
        death_round: Optional[int] = None,
        is_observer: bool = False,
        fixed_age: Optional[int] = None,
        observer_name: Optional[str] = None,
    ):
        self.peer_id = peer_id
        self.profile = profile
        self.join_round = join_round
        self.death_round = death_round
        self.online = True
        self.alive = True
        self.archive = ArchiveState()
        #: owners (normal peers) whose block this peer stores; counts quota.
        self.hosted: set = set()
        #: observer owners whose block this peer stores; free of quota.
        self.hosted_free: set = set()
        self.is_observer = is_observer
        self.fixed_age = fixed_age
        self.observer_name = observer_name
        #: round for which a REPAIR_CHECK is already queued (dedup).
        self.check_scheduled: Optional[int] = None
        #: queue handle of that check, so an earlier check can cancel it.
        self.check_handle = None
        #: a check was wanted while the peer was offline.
        self.pending_check = False
        #: bookkeeping for the measured-availability baseline.
        self.last_state_change = join_round
        self.online_rounds = 0
        #: per-peer adaptive threshold controller (A5), or None.
        self.adaptive = None

    def age(self, current_round: int) -> float:
        """Age in rounds (pinned for observers)."""
        if self.fixed_age is not None:
            return float(self.fixed_age)
        return float(max(current_round - self.join_round, 0))

    def stored_blocks(self) -> int:
        """Blocks currently hosted that count against the quota."""
        return len(self.hosted)

    def has_free_quota(self, quota: int) -> bool:
        """Whether this peer can accept one more quota-counted block."""
        return len(self.hosted) < quota

    def remaining_lifetime(self, current_round: int) -> float:
        """True rounds left before departure (oracle-only knowledge)."""
        if self.death_round is None:
            return math.inf
        return float(max(self.death_round - current_round, 0))

    def accumulate_uptime(self, current_round: int) -> None:
        """Fold the elapsed span into the online-rounds counter."""
        if self.online:
            self.online_rounds += current_round - self.last_state_change
        self.last_state_change = current_round

    def measured_availability(self, current_round: int) -> Optional[float]:
        """Lifetime online fraction, or ``None`` for a brand-new peer.

        This stands in for the monitoring protocol's windowed query; over
        windows shorter than the peer's age the lifetime average converges
        to the same duty cycle.
        """
        span = current_round - self.join_round
        if span <= 0:
            return None
        online = self.online_rounds
        if self.online:
            online += current_round - self.last_state_change
        return min(online / span, 1.0)

    def __repr__(self) -> str:
        flags = []
        if self.is_observer:
            flags.append(f"observer={self.observer_name}")
        if not self.alive:
            flags.append("dead")
        if not self.online:
            flags.append("offline")
        suffix = (" " + " ".join(flags)) if flags else ""
        return f"Peer(id={self.peer_id}, profile={self.profile.name}{suffix})"
