"""Population management: who exists, who is online, who can be sampled.

The engine needs two things fast: uniform random sampling of online
candidate partners (for pool building) and O(1) membership updates on
every session toggle and death.  :class:`SampleableSet` provides both
with the classic swap-pop/index-map construction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from .peer import Peer
from .rng import BatchedDraws


class SampleableSet:
    """A set of ints supporting O(1) add/remove/uniform-sample."""

    def __init__(self):
        self._items: List[int] = []
        self._index: Dict[int, int] = {}

    def add(self, item: int) -> None:
        """Insert (idempotent)."""
        if item in self._index:
            return
        self._index[item] = len(self._items)
        self._items.append(item)

    def discard(self, item: int) -> None:
        """Remove (idempotent) by swapping with the tail."""
        position = self._index.pop(item, None)
        if position is None:
            return
        tail = self._items.pop()
        if tail != item:
            self._items[position] = tail
            self._index[tail] = position

    def sample(self, rng: np.random.Generator) -> Optional[int]:
        """One uniform element, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items[int(rng.integers(len(self._items)))]

    def sample_with(self, draws: BatchedDraws) -> Optional[int]:
        """Like :meth:`sample` but fed from a batched draw buffer.

        The engine's recruitment loop samples candidates hundreds of
        thousands of times per run; the buffered index draw avoids a
        scalar ``Generator.integers`` call (~1µs of pure call overhead)
        per sample.
        """
        items = self._items
        if not items:
            return None
        return items[draws.next_integer(len(items))]

    def sample_chunk(self, uniforms: List[float]) -> List[int]:
        """One uniform element per entry of ``uniforms`` (with replacement).

        The chunked counterpart of :meth:`sample_with`, used by the pool
        fill: the index arithmetic is identical (``int(u * n)``, clamped),
        one element per uniform, in order.  The caller guarantees the set
        is non-empty.
        """
        items = self._items
        n = len(items)
        result: List[int] = []
        append = result.append
        for u in uniforms:
            index = int(u * n)
            append(items[index if index < n else n - 1])
        return result

    def __contains__(self, item: int) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)


class Population:
    """All peers of a run, plus the online candidate index.

    Observers live in ``peers`` like everyone else but are never added to
    the candidate index: the paper forbids other peers from choosing an
    observer as a partner.
    """

    def __init__(self):
        self.peers: Dict[int, Peer] = {}
        self.online_candidates = SampleableSet()
        self._next_id = 0
        self.alive_count = 0

    def new_id(self) -> int:
        """Allocate the next peer id."""
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def insert(self, peer: Peer) -> None:
        """Register a freshly joined peer."""
        if peer.peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer.peer_id}")
        self.peers[peer.peer_id] = peer
        if not peer.is_observer:
            self.alive_count += 1
            if peer.online:
                self.online_candidates.add(peer.peer_id)

    def mark_online(self, peer: Peer) -> None:
        """Reflect a peer coming online in the candidate index."""
        if not peer.is_observer and peer.alive:
            self.online_candidates.add(peer.peer_id)

    def mark_offline(self, peer: Peer) -> None:
        """Reflect a peer going offline in the candidate index."""
        self.online_candidates.discard(peer.peer_id)

    def remove(self, peer: Peer) -> None:
        """A peer left the system definitively."""
        self.online_candidates.discard(peer.peer_id)
        if not peer.is_observer and peer.alive:
            self.alive_count -= 1
        peer.alive = False
        peer.online = False

    def get(self, peer_id: int) -> Peer:
        """Look up a peer by id (KeyError when unknown)."""
        return self.peers[peer_id]

    def alive_normal_peers(self) -> Iterator[Peer]:
        """All living non-observer peers."""
        for peer in self.peers.values():
            if peer.alive and not peer.is_observer:
                yield peer

    def observers(self) -> Iterator[Peer]:
        """All observer peers."""
        for peer in self.peers.values():
            if peer.is_observer:
                yield peer

    def __len__(self) -> int:
        return self.alive_count
