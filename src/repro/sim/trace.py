"""Export of simulation results to plain data structures and CSV text.

Experiments persist their outputs through these helpers so that
EXPERIMENTS.md and external plotting tools consume one stable format.
No third-party serialisation is involved: rows are lists, tables are
dicts, CSV is text.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence, Tuple

from .engine import SimulationResult


def result_summary(result: SimulationResult) -> Dict[str, object]:
    """Flat summary of one run (config echo + headline metrics)."""
    config = result.config
    return {
        "population": config.population,
        "rounds": config.rounds,
        "k": config.data_blocks,
        "n": config.total_blocks,
        "repair_threshold": config.repair_threshold,
        "quota": config.quota,
        "strategy": config.selection_strategy,
        "seed": config.seed,
        "peers_created": result.peers_created,
        "deaths": result.deaths,
        "total_repairs": result.metrics.total_repairs,
        "total_losses": result.metrics.total_losses,
        "total_placements": result.metrics.total_placements,
        "starved_repairs": result.metrics.starved_repairs,
        "wall_clock_seconds": round(result.wall_clock_seconds, 3),
    }


def rates_rows(result: SimulationResult) -> List[List[object]]:
    """Per-category rate rows: category, repairs/1000, losses/1000, counts."""
    rows = []
    for name, values in result.metrics.rates_table().items():
        rows.append(
            [
                name,
                round(values["repairs_per_1000"], 5),
                round(values["losses_per_1000"], 5),
                int(values["repairs"]),
                int(values["losses"]),
                int(values["blocked"]),
            ]
        )
    return rows


def series_to_csv(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as CSV text (comma-separated, newline-terminated)."""
    if any(len(row) != len(header) for row in rows):
        raise ValueError("every row must match the header length")
    buffer = io.StringIO()
    buffer.write(",".join(str(column) for column in header) + "\n")
    for row in rows:
        buffer.write(",".join(str(column) for column in row) + "\n")
    return buffer.getvalue()


def observer_series_rows(
    result: SimulationResult, observer_names: Sequence[str]
) -> List[List[object]]:
    """Figure 3 rows: round, then one cumulative-repairs column per observer."""
    by_observer: Dict[str, Dict[int, int]] = {
        name: dict(result.metrics.observer_series(name)) for name in observer_names
    }
    rounds = sorted({point.round for point in result.metrics.series})
    rows = []
    for round_number in rounds:
        row: List[object] = [round_number]
        for name in observer_names:
            row.append(by_observer[name].get(round_number, 0))
        rows.append(row)
    return rows


def category_loss_rows(result: SimulationResult) -> List[List[object]]:
    """Figure 4 rows: round, then cumulative losses-per-peer per category."""
    names = result.config.categories.names()
    series: Dict[str, Dict[int, float]] = {
        name: dict(result.metrics.losses_per_peer_series(name)) for name in names
    }
    rounds = sorted({point.round for point in result.metrics.series})
    rows = []
    for round_number in rounds:
        row: List[object] = [round_number]
        for name in names:
            row.append(round(series[name].get(round_number, 0.0), 6))
        rows.append(row)
    return rows


def threshold_sweep_rows(
    results_by_threshold: Dict[int, SimulationResult], metric: str
) -> Tuple[List[str], List[List[object]]]:
    """Figure 1/2 rows: threshold, then one rate column per category.

    ``metric`` selects ``"repairs"`` (figure 1) or ``"losses"`` (figure 2).
    """
    if metric not in {"repairs", "losses"}:
        raise ValueError(f"metric must be 'repairs' or 'losses', got {metric!r}")
    any_result = next(iter(results_by_threshold.values()))
    names = any_result.config.categories.names()
    header = ["threshold"] + [f"{name} /1000" for name in names]
    rows = []
    for threshold in sorted(results_by_threshold):
        result = results_by_threshold[threshold]
        rates = (
            result.repair_rates() if metric == "repairs" else result.loss_rates()
        )
        rows.append([threshold] + [round(rates[name], 5) for name in names])
    return header, rows
