"""Event queue of the round-based simulator.

PeerSim (the paper's simulator) executes peers sequentially inside each
round, in an order re-randomised every round.  Earlier versions
reproduced that with a binary heap keyed by ``(round, random_tiebreak,
sequence)`` — one scalar RNG call and one rich-compare dataclass per
``schedule``, plus ``O(log n)`` comparisons per push/pop.  The calendar
queue here keeps the same semantics at a fraction of the cost:

* events land in a per-round *bucket* (``dict`` keyed by integer round);
* when a round becomes current its bucket is shuffled **once** with a
  batched permutation (one vectorised RNG call per round instead of one
  scalar draw per event);
* events scheduled into the round currently executing are inserted at a
  uniformly random position among the not-yet-executed events (the heap
  gave late arrivals a mild bias toward running sooner; uniform is the
  cleaner semantics and trajectories are re-seeded this PR anyway);
* cancellation stays lazy: a cancelled handle is skipped when reached.

A small heap of *distinct round numbers* (not events) provides the
"earliest non-empty bucket" lookup; its size is bounded by the number of
future rounds that have events, so its cost is negligible.

Session toggles — the dominant event kind — additionally get a *dense
lane*: :meth:`EventQueue.schedule_toggle` /
:meth:`EventQueue.schedule_toggle_batch` file bare peer ids into
per-round integer buckets (no ``Event``, no ``_Handle``, no per-event
heap traffic), and when such a round activates the queue emits a single
``TOGGLE_BATCH`` sentinel event *before* the round's shuffled generic
events.  The consumer must then call :meth:`EventQueue.pop_round_batch`
to drain the whole batch as one sorted id array.  Toggles are
order-independent within a round (the engines process the batch as one
transaction over final state), are never cancelled, and are always
scheduled at least one round ahead, which is what makes the dense
representation safe.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .rng import BatchedDraws


class EventKind(Enum):
    """All event types the engine knows how to dispatch."""

    JOIN = auto()            # a fresh peer enters the system
    DEATH = auto()           # a peer leaves definitively
    TOGGLE = auto()          # a peer's online/offline session flips
    PLACEMENT = auto()       # initial (or post-loss) upload of all n blocks
    REPAIR_CHECK = auto()    # re-evaluate an archive against the threshold
    SAMPLE = auto()          # periodic metrics sampling
    TOP_UP = auto()          # proactive-replication baseline (A4) top-up tick
    TRANSFER_DONE = auto()   # a protocol-fidelity transfer finished
    TOGGLE_BATCH = auto()    # sentinel: drain the round's dense toggle lane


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    ``peer_id`` is the subject peer (ignored for SAMPLE events).
    """

    kind: EventKind
    peer_id: int = -1


class _Handle:
    """A scheduled event plus its dead flag.

    ``cancelled`` is set both by :meth:`EventQueue.cancel` and when the
    event is popped (executed), so cancelling an already-consumed handle
    is a safe no-op instead of corrupting the queue's live accounting.

    ``key`` is the canonical intra-bucket sort key — ``(kind, peer_id)``
    packed into one integer so :meth:`EventQueue._activate` sorts on a
    C-compared int instead of calling a Python key function per element.
    Handles tie only when their events are value-identical (same kind,
    same peer) and therefore interchangeable: live events are unique per
    (kind, peer) — the engines deduplicate checks and schedule at most
    one toggle/death per peer — and the exceptions (JOIN and SAMPLE with
    ``peer_id == -1``, protocol transfer completions) carry no payload
    beyond the key, so any tie order is unobservable.
    """

    __slots__ = ("round", "event", "cancelled", "key")

    def __init__(self, round_number: int, event: Event):
        self.round = round_number
        self.event = event
        self.cancelled = False
        # kind value <= 8 and peer_id >= -1; 2**40 clears any realistic
        # population size.  ``_value_`` skips the enum's
        # DynamicClassAttribute descriptor (this runs once per schedule).
        self.key = event.kind._value_ * 1099511627776 + event.peer_id + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"_Handle(round={self.round}, event={self.event}{state})"


_HANDLE_KEY = operator.attrgetter("key")

#: The one sentinel instance handed out for every dense toggle round
#: (events are frozen value objects, so sharing it is invisible).
_TOGGLE_BATCH_EVENT = Event(EventKind.TOGGLE_BATCH)
_EMPTY_BATCH = np.empty(0, dtype=np.int64)


class EventQueue:
    """Calendar queue of events with random intra-round ordering."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._draws = BatchedDraws(rng)
        #: future rounds -> unshuffled buckets of handles.
        self._buckets: Dict[int, List[_Handle]] = {}
        #: future rounds -> dense toggle lane (bare peer ids, no handles).
        self._toggle_buckets: Dict[int, List[int]] = {}
        #: distinct bucket rounds (exactly one heap entry per round that
        #: has a generic and/or toggle bucket).
        self._round_heap: List[int] = []
        #: live (non-cancelled) *generic* events per round, bucket or
        #: current.  Dense toggles are not counted: they cannot be
        #: cancelled, so a round with a toggle bucket is live by
        #: construction and the lane skips the accounting entirely.
        self._live: Dict[int, int] = {}
        #: the active round's shuffled remainder, consumed from the end.
        self._current: List[_Handle] = []
        #: the active round's undelivered toggle batch (sorted), if any.
        self._current_toggles: Optional[List[int]] = None
        self._current_round: Optional[int] = None
        self._size = 0

    def schedule(self, round_number: int, event: Event) -> _Handle:
        """Add an event; returns a handle usable with :meth:`cancel`."""
        if round_number < 0:
            raise ValueError("cannot schedule in a negative round")
        handle = _Handle(round_number, event)
        if round_number == self._current_round:
            # The round is executing: insert at a uniform position among
            # the remaining events (the end of the list runs first, so
            # every slot of the remainder is equally likely).
            current = self._current
            if current:
                current.insert(self._draws.next_integer(len(current) + 1), handle)
            else:
                current.append(handle)
        else:
            bucket = self._buckets.get(round_number)
            if bucket is None:
                self._buckets[round_number] = [handle]
                if round_number not in self._toggle_buckets:
                    heapq.heappush(self._round_heap, round_number)
            else:
                bucket.append(handle)
        self._live[round_number] = self._live.get(round_number, 0) + 1
        self._size += 1
        return handle

    def schedule_toggle(self, round_number: int, peer_id: int) -> None:
        """File one peer id into the dense toggle lane of a future round.

        No handle is returned: dense toggles cannot be cancelled (the
        engines never cancel toggles — stale ones are filtered against
        the live column when the batch drains).  Scheduling into the
        round currently executing is an error: the batch for that round
        has already been delivered (or is being delivered) as one
        transaction, and durations are always ``>= 1`` round anyway.
        """
        if round_number < 0:
            raise ValueError("cannot schedule in a negative round")
        if round_number == self._current_round:
            raise ValueError(
                "cannot schedule a dense toggle into the executing round"
            )
        bucket = self._toggle_buckets.get(round_number)
        if bucket is None:
            self._toggle_buckets[round_number] = [peer_id]
            if round_number not in self._buckets:
                heapq.heappush(self._round_heap, round_number)
        else:
            bucket.append(peer_id)
        self._size += 1

    def schedule_toggle_batch(self, rounds, peer_ids) -> None:
        """Bulk-file dense toggles: one target round per peer id.

        ``rounds`` and ``peer_ids`` are equally long integer arrays (or
        sequences).  Large batches are grouped per round with one argsort
        instead of a scalar filing per event; the per-bucket append
        order is irrelevant because :meth:`_activate` sorts each toggle
        bucket before delivery.
        """
        count = len(rounds)
        if count == 0:
            return
        if count <= 32:
            for round_number, peer_id in zip(
                np.asarray(rounds).tolist(), np.asarray(peer_ids).tolist()
            ):
                self.schedule_toggle(round_number, peer_id)
            return
        rounds = np.asarray(rounds)
        peer_ids = np.asarray(peer_ids)
        order = np.argsort(rounds, kind="stable")
        rounds = rounds[order]
        peer_ids = peer_ids[order]
        starts = np.flatnonzero(rounds[1:] != rounds[:-1]) + 1
        round_list = rounds[np.concatenate(([0], starts))].tolist()
        bounds = starts.tolist() + [count]
        id_list = peer_ids.tolist()
        begin = 0
        for round_number, end in zip(round_list, bounds):
            self._file_toggles(round_number, id_list[begin:end])
            begin = end

    def _file_toggles(self, round_number: int, ids: List[int]) -> None:
        if round_number < 0:
            raise ValueError("cannot schedule in a negative round")
        if round_number == self._current_round:
            raise ValueError(
                "cannot schedule a dense toggle into the executing round"
            )
        bucket = self._toggle_buckets.get(round_number)
        if bucket is None:
            self._toggle_buckets[round_number] = list(ids)
            if round_number not in self._buckets:
                heapq.heappush(self._round_heap, round_number)
        else:
            bucket.extend(ids)
        self._size += len(ids)

    def cancel(self, handle: _Handle) -> None:
        """Lazily cancel a scheduled event (skipped when reached)."""
        if not handle.cancelled:
            handle.cancelled = True
            self._size -= 1
            self._live[handle.round] -= 1

    def _next_bucket_round(self) -> Optional[int]:
        """Earliest bucket round with live events, purging dead buckets."""
        heap = self._round_heap
        while heap:
            round_number = heap[0]
            if (
                round_number in self._toggle_buckets
                or self._live.get(round_number, 0) > 0
            ):
                return round_number
            heapq.heappop(heap)
            self._buckets.pop(round_number, None)
            self._toggle_buckets.pop(round_number, None)
            self._live.pop(round_number, None)
        return None

    def _activate(self, round_number: int) -> None:
        """Make ``round_number``'s bucket the current (shuffled) round."""
        heapq.heappop(self._round_heap)  # == round_number by construction
        bucket = self._buckets.pop(round_number, None)
        toggles = self._toggle_buckets.pop(round_number, None)
        previous = self._current_round
        push_back = False
        if self._current:
            # An earlier round was scheduled while ``previous`` was still
            # executing: push the remainder back as a future bucket (it
            # is re-shuffled on reactivation, which keeps the intra-round
            # order uniform).
            self._buckets[previous] = self._current
            push_back = True
        if self._current_toggles is not None:
            # Same preemption case for an undelivered toggle batch: it
            # returns to the dense lane untouched (re-sorted on
            # reactivation, which is a no-op).
            self._toggle_buckets[previous] = self._current_toggles
            push_back = True
        if push_back:
            heapq.heappush(self._round_heap, previous)
        elif previous is not None and self._live.get(previous) == 0:
            del self._live[previous]
        if bucket is None:
            bucket = []
        elif len(bucket) > 1:
            # Canonicalise before shuffling: the execution order must be
            # a pure function of the bucket's *content* (plus the one
            # permutation draw), never of the order the events happened
            # to be appended in.  Appending order leaks the engine's
            # internal iteration order (e.g. over a peer's partner sets),
            # so without this sort two state representations of the same
            # simulation could diverge while being semantically
            # identical.  Ties are unobservable (see ``_Handle.key``).
            bucket.sort(key=_HANDLE_KEY)
            order = self._rng.permutation(len(bucket))
            bucket = [bucket[i] for i in order]
        self._current = bucket
        if toggles is not None:
            # Canonical batch order: ascending peer id.  The batch is
            # processed as one transaction, so any fixed order works —
            # sorting makes it a pure function of the bucket's content,
            # like the generic shuffle (without consuming a draw).
            toggles.sort()
        self._current_toggles = toggles
        self._current_round = round_number

    def pop(self) -> Optional[Tuple[int, Event]]:
        """Remove and return the next live event as ``(round, event)``.

        A round with a dense toggle bucket yields one ``TOGGLE_BATCH``
        sentinel *before* its generic events; the caller must drain it
        with :meth:`pop_round_batch` before popping again.
        """
        while True:
            upcoming = self._next_bucket_round()
            current = self._current
            in_round = self._current_toggles is not None or bool(current)
            if in_round and (upcoming is None or self._current_round <= upcoming):
                if self._current_toggles is not None:
                    return self._current_round, _TOGGLE_BATCH_EVENT
                handle = current.pop()
                if handle.cancelled:
                    continue
                handle.cancelled = True  # consumed: late cancel() is a no-op
                self._size -= 1
                self._live[handle.round] -= 1
                return handle.round, handle.event
            if upcoming is None:
                return None
            self._activate(upcoming)

    def pop_until(self, last_round: int) -> Optional[Tuple[int, Event]]:
        """Pop the next live event, or ``None`` if it is past ``last_round``.

        Fuses :meth:`peek_round` and :meth:`pop` for the engines' main
        loops, and skips the earliest-bucket lookup entirely while the
        current round still has events: buckets are keyed by the round
        they will execute in, and :meth:`schedule` only ever files into
        the current round's remainder (``d == 0``) or a future bucket
        (``d >= 1``), so while the current round is non-empty every
        bucket in the heap is strictly later than the current round.
        (Scheduling into a *past* round mid-execution would break this;
        use :meth:`pop` for that exotic case.)  Events past
        ``last_round`` stay in the queue untouched.

        Like :meth:`pop`, a round with dense toggles yields one
        ``TOGGLE_BATCH`` sentinel first; the caller must drain it with
        :meth:`pop_round_batch` before the next ``pop_until`` call.
        """
        live = self._live
        while True:
            if self._current_toggles is not None:
                if self._current_round > last_round:
                    return None
                return self._current_round, _TOGGLE_BATCH_EVENT
            current = self._current
            if current:
                if self._current_round > last_round:
                    return None
                handle = current.pop()
                if handle.cancelled:
                    continue
                handle.cancelled = True  # consumed: late cancel() is a no-op
                self._size -= 1
                live[handle.round] -= 1
                return handle.round, handle.event
            upcoming = self._next_bucket_round()
            if upcoming is None or upcoming > last_round:
                return None
            self._activate(upcoming)

    def pop_round_batch(self) -> np.ndarray:
        """Drain the delivered toggle batch as one sorted id array.

        Valid right after :meth:`pop` / :meth:`pop_until` returned the
        ``TOGGLE_BATCH`` sentinel; returns an empty array when no batch
        is pending.  The ids are ascending and unique (at most one
        pending toggle per peer, an engine invariant).
        """
        toggles = self._current_toggles
        if toggles is None:
            return _EMPTY_BATCH
        self._current_toggles = None
        self._size -= len(toggles)
        return np.array(toggles, dtype=np.int64)

    def peek_round(self) -> Optional[int]:
        """Round of the next live event without removing it."""
        upcoming = self._next_bucket_round()
        if self._current_toggles is not None or (
            self._current and self._live.get(self._current_round, 0) > 0
        ):
            if upcoming is None or self._current_round <= upcoming:
                return self._current_round
        return upcoming

    def drain_until(self, last_round: int) -> Iterator[Tuple[int, Event]]:
        """Yield events up to and including ``last_round``, in order."""
        while True:
            item = self.pop_until(last_round)
            if item is None:
                return
            yield item

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
