"""Event queue of the round-based simulator.

PeerSim (the paper's simulator) executes peers sequentially inside each
round, in an order re-randomised every round.  We reproduce that with a
priority queue keyed by ``(round, random_tiebreak, sequence)``: all
events scheduled for the same round run in a random order, and the
sequence number keeps the heap total-ordered even on tiebreak collisions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator, Optional, Tuple

import numpy as np


class EventKind(Enum):
    """All event types the engine knows how to dispatch."""

    JOIN = auto()            # a fresh peer enters the system
    DEATH = auto()           # a peer leaves definitively
    TOGGLE = auto()          # a peer's online/offline session flips
    PLACEMENT = auto()       # initial (or post-loss) upload of all n blocks
    REPAIR_CHECK = auto()    # re-evaluate an archive against the threshold
    SAMPLE = auto()          # periodic metrics sampling
    TOP_UP = auto()          # proactive-replication baseline (A4) top-up tick


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    ``peer_id`` is the subject peer (ignored for SAMPLE events).
    """

    kind: EventKind
    peer_id: int = -1


@dataclass(order=True)
class _QueueEntry:
    round: int
    tiebreak: float
    sequence: int
    event: Event = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Min-heap of events with random intra-round ordering."""

    def __init__(self, rng: np.random.Generator):
        self._heap: list = []
        self._rng = rng
        self._sequence = itertools.count()
        self._size = 0

    def schedule(self, round_number: int, event: Event) -> _QueueEntry:
        """Add an event; returns a handle usable with :meth:`cancel`."""
        if round_number < 0:
            raise ValueError("cannot schedule in a negative round")
        entry = _QueueEntry(
            round=round_number,
            tiebreak=float(self._rng.random()),
            sequence=next(self._sequence),
            event=event,
        )
        heapq.heappush(self._heap, entry)
        self._size += 1
        return entry

    def cancel(self, entry: _QueueEntry) -> None:
        """Lazily cancel a scheduled event (skipped when popped)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._size -= 1

    def pop(self) -> Optional[Tuple[int, Event]]:
        """Remove and return the next live event as ``(round, event)``."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._size -= 1
            return entry.round, entry.event
        return None

    def peek_round(self) -> Optional[int]:
        """Round of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].round

    def drain_until(self, last_round: int) -> Iterator[Tuple[int, Event]]:
        """Yield events up to and including ``last_round``, in order."""
        while True:
            upcoming = self.peek_round()
            if upcoming is None or upcoming > last_round:
                return
            item = self.pop()
            if item is not None:
                yield item

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
