"""Metric collection for simulation runs.

Everything figures 1-4 plot comes out of this module:

* per-category counters (repairs, losses, blocked repairs, placements)
  and per-category peer-round exposure, giving the "per 1000 peers"
  rates of figures 1 and 2;
* per-category cumulative time series (figure 4);
* per-observer cumulative repair series (figure 3).

Rates are expressed per peer-round: "repairs per 1000 peers" in the
paper's y-axis is the average number of repairs one round of 1000 peers
performs, i.e. ``1000 x repairs / peer_rounds``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.categories import CategoryScheme


@dataclass
class CategoryCounters:
    """Event counters for one age category."""

    repairs: int = 0
    losses: int = 0
    blocked: int = 0
    placements: int = 0
    regenerated_blocks: int = 0
    peer_rounds: float = 0.0


@dataclass
class SeriesPoint:
    """One sampled point of the cumulative time series."""

    round: int
    population: Dict[str, int] = field(default_factory=dict)
    cumulative_repairs: Dict[str, int] = field(default_factory=dict)
    cumulative_losses: Dict[str, int] = field(default_factory=dict)
    observer_repairs: Dict[str, int] = field(default_factory=dict)


class MetricsCollector:
    """Accumulates counters and time series during a run."""

    def __init__(self, categories: CategoryScheme, warmup_rounds: int = 0):
        self.categories = categories
        self.warmup_rounds = warmup_rounds
        self.by_category: Dict[str, CategoryCounters] = {
            name: CategoryCounters() for name in categories.names()
        }
        self.observer_repairs: Dict[str, int] = defaultdict(int)
        self.observer_losses: Dict[str, int] = defaultdict(int)
        self.observer_blocked: Dict[str, int] = defaultdict(int)
        self.series: List[SeriesPoint] = []
        self.total_repairs = 0
        self.total_losses = 0
        self.total_placements = 0
        self.pool_examined = 0
        self.pool_accepted = 0
        self.starved_repairs = 0
        #: Protocol-fidelity counters (transfers, queue delays, fairness
        #: refusals, ...).  Empty for abstract runs — and *only then
        #: absent from* :meth:`to_dict` — so abstract-mode payloads stay
        #: byte-identical to earlier releases.
        self.protocol: Dict[str, float] = {}
        #: Protocol-fidelity time series, sampled on the same cadence as
        #: :attr:`series` (in-flight transfers, cumulative queue delay).
        self.protocol_series: List[Dict[str, float]] = []

    def _category_name(self, age: float) -> str:
        return self.categories.classify(age).name

    def _counters(self, age: float) -> CategoryCounters:
        return self.by_category[self._category_name(age)]

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def record_repair(
        self,
        round_number: int,
        age: float,
        regenerated: int,
        observer_name: Optional[str] = None,
    ) -> None:
        """One completed repair that regenerated ``regenerated`` blocks."""
        if observer_name is not None:
            self.observer_repairs[observer_name] += 1
            return
        self.total_repairs += 1
        if round_number >= self.warmup_rounds:
            counters = self._counters(age)
            counters.repairs += 1
            counters.regenerated_blocks += regenerated

    def record_loss(
        self, round_number: int, age: float, observer_name: Optional[str] = None
    ) -> None:
        """One permanently lost archive."""
        if observer_name is not None:
            self.observer_losses[observer_name] += 1
            return
        self.total_losses += 1
        if round_number >= self.warmup_rounds:
            self._counters(age).losses += 1

    def record_blocked(
        self, round_number: int, age: float, observer_name: Optional[str] = None
    ) -> None:
        """One repair attempt that could not gather k blocks."""
        if observer_name is not None:
            self.observer_blocked[observer_name] += 1
            return
        if round_number >= self.warmup_rounds:
            self._counters(age).blocked += 1

    def record_placement(self, round_number: int, age: float) -> None:
        """One initial or post-loss full placement."""
        self.total_placements += 1
        if round_number >= self.warmup_rounds:
            self._counters(age).placements += 1

    def record_pool(self, examined: int, accepted: int) -> None:
        """Pool-building effort (for protocol-cost analyses)."""
        self.pool_examined += examined
        self.pool_accepted += accepted

    def record_starved(self) -> None:
        """A repair that found no recruitable partner at all."""
        self.starved_repairs += 1

    def bump(self, counter: str, amount: float = 1) -> None:
        """Accumulate one protocol-fidelity counter.

        Counters appear lazily: only keys actually bumped are
        serialized, so two protocol runs with different feature sets
        (say, with and without fairness) stay individually canonical.
        """
        self.protocol[counter] = self.protocol.get(counter, 0) + amount

    def sample_protocol(self, round_number: int, **values: float) -> None:
        """Record one point of the protocol-fidelity time series."""
        point: Dict[str, float] = {"round": round_number}
        point.update(values)
        self.protocol_series.append(point)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        round_number: int,
        ages: List[float],
        interval: int,
    ) -> None:
        """Record a census: population per category plus cumulative counts.

        ``ages`` are the current ages of all living normal peers; the
        census also accrues ``interval`` rounds of peer-round exposure to
        each category (used as the rate denominator).
        """
        population: Dict[str, int] = {name: 0 for name in self.by_category}
        for age in ages:
            population[self._category_name(age)] += 1
        self.sample_counts(round_number, population, interval)

    def sample_counts(
        self,
        round_number: int,
        population: Dict[str, int],
        interval: int,
    ) -> None:
        """Record a census from pre-computed per-category counts.

        Same semantics as :meth:`sample` with the classification already
        done: the SoA backend computes the counts in one vectorised pass
        instead of classifying peers one at a time.  ``population`` must
        hold one entry per category, in category order.
        """
        if round_number >= self.warmup_rounds:
            for name, count in population.items():
                self.by_category[name].peer_rounds += count * interval
        point = SeriesPoint(
            round=round_number,
            population=population,
            cumulative_repairs={
                name: counters.repairs for name, counters in self.by_category.items()
            },
            cumulative_losses={
                name: counters.losses for name, counters in self.by_category.items()
            },
            observer_repairs=dict(self.observer_repairs),
        )
        self.series.append(point)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Stable plain-data form of all counters and series (JSON-safe).

        Everything figures 1-4 consume survives the round trip through
        :meth:`from_dict`; the sweep executor uses it to move results
        across process boundaries and into the on-disk cache.
        """
        data: Dict[str, object] = {
            "categories": self.categories.to_dict(),
            "warmup_rounds": self.warmup_rounds,
            "by_category": {
                name: {
                    "repairs": counters.repairs,
                    "losses": counters.losses,
                    "blocked": counters.blocked,
                    "placements": counters.placements,
                    "regenerated_blocks": counters.regenerated_blocks,
                    "peer_rounds": counters.peer_rounds,
                }
                for name, counters in self.by_category.items()
            },
            "observer_repairs": dict(self.observer_repairs),
            "observer_losses": dict(self.observer_losses),
            "observer_blocked": dict(self.observer_blocked),
            "series": [
                {
                    "round": point.round,
                    "population": dict(point.population),
                    "cumulative_repairs": dict(point.cumulative_repairs),
                    "cumulative_losses": dict(point.cumulative_losses),
                    "observer_repairs": dict(point.observer_repairs),
                }
                for point in self.series
            ],
            "total_repairs": self.total_repairs,
            "total_losses": self.total_losses,
            "total_placements": self.total_placements,
            "pool_examined": self.pool_examined,
            "pool_accepted": self.pool_accepted,
            "starved_repairs": self.starved_repairs,
        }
        # Protocol-fidelity extras only when present: abstract-mode
        # payloads (and therefore their cached bytes) must not change
        # shape when the protocol backend is merely available.
        if self.protocol:
            data["protocol"] = dict(self.protocol)
        if self.protocol_series:
            data["protocol_series"] = [
                dict(point) for point in self.protocol_series
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsCollector":
        """Rebuild a collector from :meth:`to_dict` output."""
        from ..core.categories import CategoryScheme

        collector = cls(
            CategoryScheme.from_dict(data["categories"]),
            data["warmup_rounds"],
        )
        for name, values in data["by_category"].items():
            collector.by_category[name] = CategoryCounters(
                repairs=values["repairs"],
                losses=values["losses"],
                blocked=values["blocked"],
                placements=values["placements"],
                regenerated_blocks=values["regenerated_blocks"],
                peer_rounds=values["peer_rounds"],
            )
        collector.observer_repairs.update(data["observer_repairs"])
        collector.observer_losses.update(data["observer_losses"])
        collector.observer_blocked.update(data["observer_blocked"])
        collector.series = [
            SeriesPoint(
                round=point["round"],
                population=dict(point["population"]),
                cumulative_repairs=dict(point["cumulative_repairs"]),
                cumulative_losses=dict(point["cumulative_losses"]),
                observer_repairs=dict(point["observer_repairs"]),
            )
            for point in data["series"]
        ]
        collector.total_repairs = data["total_repairs"]
        collector.total_losses = data["total_losses"]
        collector.total_placements = data["total_placements"]
        collector.pool_examined = data["pool_examined"]
        collector.pool_accepted = data["pool_accepted"]
        collector.starved_repairs = data["starved_repairs"]
        collector.protocol = dict(data.get("protocol", {}))
        collector.protocol_series = [
            dict(point) for point in data.get("protocol_series", [])
        ]
        return collector

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    def repair_rate_per_1000(self, category: str) -> float:
        """Average repairs per round per 1000 peers of a category."""
        counters = self.by_category[category]
        if counters.peer_rounds == 0:
            return 0.0
        return 1000.0 * counters.repairs / counters.peer_rounds

    def loss_rate_per_1000(self, category: str) -> float:
        """Average archive losses per round per 1000 peers of a category."""
        counters = self.by_category[category]
        if counters.peer_rounds == 0:
            return 0.0
        return 1000.0 * counters.losses / counters.peer_rounds

    def rates_table(self) -> Dict[str, Dict[str, float]]:
        """All per-category rates in one structure (report-friendly)."""
        table: Dict[str, Dict[str, float]] = {}
        for name, counters in self.by_category.items():
            table[name] = {
                "repairs_per_1000": self.repair_rate_per_1000(name),
                "losses_per_1000": self.loss_rate_per_1000(name),
                "repairs": float(counters.repairs),
                "losses": float(counters.losses),
                "blocked": float(counters.blocked),
                "peer_rounds": counters.peer_rounds,
            }
        return table

    def observer_series(self, observer_name: str) -> List[tuple]:
        """``(round, cumulative repairs)`` points for one observer."""
        return [
            (point.round, point.observer_repairs.get(observer_name, 0))
            for point in self.series
        ]

    def category_loss_series(self, category: str) -> List[tuple]:
        """``(round, cumulative losses)`` points for one category."""
        return [
            (point.round, point.cumulative_losses.get(category, 0))
            for point in self.series
        ]

    def losses_per_peer_series(self, category: str) -> List[tuple]:
        """Figure 4's y-axis: cumulative losses / current category population."""
        series = []
        for point in self.series:
            population = point.population.get(category, 0)
            losses = point.cumulative_losses.get(category, 0)
            value = losses / population if population else 0.0
            series.append((point.round, value))
        return series
