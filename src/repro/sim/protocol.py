"""The protocol fidelity backend: repairs as real message exchanges.

Where the abstract engine flips counters, this backend executes the
backup protocol's data plane for every normal peer:

* each peer owns a transport endpoint
  (:class:`repro.net.transport.InMemoryTransport`), a quota-bounded
  :class:`repro.backup.store.BlockStore` and a pairwise
  :class:`repro.backup.fairness.ExchangeLedger`;
* placements and repairs issue real ``FetchRequest`` / ``StoreRequest``
  exchanges — a repair first downloads ``k`` blocks from visible
  holders, then uploads regenerated blocks to partners recruited
  through the *same* selection strategy and acceptance rule the
  abstract engine consults;
* transfer completion is gated by the access-link bandwidth model
  (:class:`repro.net.bandwidth.LinkScheduler`): the repair's archive
  links only materialise when its ``TRANSFER_DONE`` event fires, and
  concurrent transfers on one link queue behind each other;
* when configured (``SimulationConfig.fairness_factor``), partners
  refuse to store for peers whose lifetime consumption exceeds the
  factor times their contribution (the section 2.2.1 direct-exchange
  policy, enforced through the backup layer's fairness accounting);
* a loss is confirmed by an actual restore attempt — fetch probes to
  the surviving holders — before the archive resets.

Everything upstream of execution is shared with the abstract backend
via :class:`repro.sim.driver.SimulationDriver`: churn trajectory, RNG
streams, metrics surface and the event clock.  Same-seed protocol runs
are therefore byte-identical after serialization, across repeated runs
and across all sweep-executor backends.

Deliberate simplifications, documented rather than hidden:

* block payloads are empty sentinels — transfer *times* come from the
  cost model (``archive_bytes / k`` per block), not from shipping real
  megabytes through the heap;
* the transfer occupies the repairing owner's link (the paper's
  owner-centric ``delta_repair = delta_download + delta_upload`` cost
  model); in addition each download source's uplink serves a block, and
  every block leg is priced at the pairwise gated rate ``min(sender
  uplink, receiver downlink)`` — partner downlinks gate uploads;
* exchanges cross the impairment layer
  (``SimulationConfig.impairment_profile``): a dropped exchange loses
  the whole round trip before any recipient-side effect, the sender
  observes a timeout and retries with capped exponential backoff up to
  ``retry_budget`` attempts, then gives up gracefully (the operation
  re-enqueues as an ordinary check);
* observers (the paper's measurement probes) keep the abstract
  instantaneous path: they are instruments, not workload, and must not
  perturb quota, fairness or bandwidth accounting;
* proactive replication (baseline A4) is not supported at this
  fidelity.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set

from ..backup.fairness import ExchangeLedger, GlobalFairness
from ..backup.store import BlockStore
from ..erasure.codec import CodedBlock
from ..net.bandwidth import LINK_PROFILES, CostModel, LinkScheduler
from ..net.impairment import IMPAIRMENT_PROFILES
from ..net.message import (
    FetchReply,
    FetchRequest,
    Message,
    ReleaseNotice,
    StoreReply,
    StoreRequest,
)
from ..net.transport import (
    DroppedMessageError,
    InMemoryTransport,
    TransportError,
)
from .config import SimulationConfig
from .engine import Simulation
from .events import Event, EventKind
from .fidelity import FIDELITY_BACKENDS
from .peer import Peer

#: SHA-256 of the empty sentinel payload every simulated block carries.
_EMPTY_CHECKSUM = hashlib.sha256(b"").hexdigest()


class _PendingTransfer:
    """One in-flight placement or repair on an owner's access link.

    ``blocks`` maps each recruited holder to the block index it already
    accepted (the negotiation happened at initiation; the *data* is
    what takes time).  Holders that die mid-flight are removed, so at
    completion only surviving recruits become archive links.
    """

    __slots__ = ("owner_id", "kind", "blocks", "transfer", "handle")

    def __init__(self, owner_id, kind, blocks, transfer, handle):
        self.owner_id = owner_id
        self.kind = kind  # "placement" | "repair"
        self.blocks: Dict[int, int] = blocks
        self.transfer = transfer
        self.handle = handle


@FIDELITY_BACKENDS.register("protocol")
class ProtocolSimulation(Simulation):
    """Message-level fidelity over the shared simulation driver."""

    fidelity = "protocol"

    def __init__(self, config: SimulationConfig):
        if config.proactive_rate > 0:
            raise ValueError(
                "the protocol fidelity backend does not support proactive "
                "replication (proactive_rate > 0); run baseline A4 at "
                "fidelity 'abstract'"
            )
        # Protocol state must exist before the driver's _setup spawns
        # peers (the spawn hook wires each peer into it).
        self.transport = InMemoryTransport()
        self.link = LINK_PROFILES.get(config.link_profile)
        self.cost_model = CostModel(
            archive_size=config.archive_bytes,
            data_blocks=config.data_blocks,
            link=self.link,
        )
        self.links = LinkScheduler(round_seconds=config.round_seconds)
        self._stores: Dict[int, BlockStore] = {}
        self._ledgers: Dict[int, ExchangeLedger] = {}
        self._fairness = GlobalFairness()
        #: Lifetime blocks a peer may consume beyond ``factor x
        #: contributed``: one archive's worth, so newcomers can place
        #: their first backup (the bootstrap concern the acceptation
        #: function's 1/L floor addresses at the partnership level).
        self._fairness_grace = config.data_blocks + config.parity_blocks
        self._pending: Dict[int, _PendingTransfer] = {}
        self._pending_by_holder: Dict[int, Set[int]] = {}
        #: owner -> holder -> block index (the owner-side manifest).
        self._manifest: Dict[int, Dict[int, int]] = {}
        self._next_index: Dict[int, int] = {}
        self._messages = 0
        self.impairment = IMPAIRMENT_PROFILES.get(config.impairment_profile)
        #: Exchanges lost to the impairment layer so far (operations
        #: snapshot it to tell a transient timeout from a dead partner).
        self._drop_count = 0
        #: Impairment latency accrued by the current operation's
        #: negotiation exchanges; folded into its transfer finish time.
        self._latency_pool = 0.0
        #: owner -> consecutive timed-out attempts of its current
        #: placement/repair operation (the per-exchange retry budget).
        self._attempts: Dict[int, int] = {}
        super().__init__(config)
        # Installed only for non-clean profiles: a clean run never
        # consumes the dedicated "impairment" stream, so pre-impairment
        # trajectories stay byte-identical.
        if not self.impairment.is_clean:
            self.transport.set_impairment(
                self.impairment.sampler(self.rng.batched("impairment"))
            )

    # ------------------------------------------------------------------
    # Messaging plumbing
    # ------------------------------------------------------------------
    def _send(self, message: Message):
        """Deliver one message; returns ``(reply, delivered)``.

        Every failure mode — departed recipient, offline endpoint — is a
        typed :class:`TransportError`, which at this fidelity is the
        moral equivalent of the real system's timeout.  Drops from the
        impairment layer are counted separately (``drops``): they are
        the *transient* timeouts the retry machinery exists for, unlike
        a departed partner which no retry can bring back.
        """
        self._messages += 1
        try:
            reply = self.transport.send(message)
        except DroppedMessageError:
            self._drop_count += 1
            self.metrics.bump("drops")
            return None, False
        except TransportError:
            return None, False
        delay = self.transport.last_delay_seconds
        if delay > 0.0:
            self._latency_pool += delay
            self.metrics.bump("impairment_delay_seconds", delay)
        return reply, True

    def _make_handler(self, peer_id: int) -> Callable[[Message], Optional[Message]]:
        def handle(message: Message) -> Optional[Message]:
            if isinstance(message, StoreRequest):
                return self._handle_store_request(peer_id, message)
            if isinstance(message, FetchRequest):
                store = self._stores[peer_id]
                block = store.fetch(
                    message.sender, message.archive_id, message.block_index
                )
                return FetchReply(
                    sender=peer_id,
                    recipient=message.sender,
                    archive_id=message.archive_id,
                    block_index=message.block_index,
                    payload=block.payload if block else None,
                )
            if isinstance(message, ReleaseNotice):
                self._release_stored(peer_id, message.sender, message.block_index)
                return None
            return None

        return handle

    def _handle_store_request(
        self, holder_id: int, message: StoreRequest
    ) -> StoreReply:
        """Holder-side store decision: fairness ledger, then quota."""
        owner_id = message.sender

        def refuse(reason: str) -> StoreReply:
            return StoreReply(
                sender=holder_id,
                recipient=owner_id,
                archive_id=message.archive_id,
                block_index=message.block_index,
                accepted=False,
                reason=reason,
            )

        factor = self.config.fairness_factor
        if factor is not None:
            # Both accountings of repro.backup.fairness are enforced:
            # the pairwise Samsara-style ledger (this holder refuses an
            # owner already deep in direct-exchange debt with it) and
            # the [7]-style global policy (an owner whose lifetime
            # consumption exceeds ``factor x contribution`` plus one
            # archive of bootstrap grace is refused by everyone).  In
            # the one-archive-per-peer topology the global cap is the
            # one that bites; the pairwise cap matters once a pair
            # exchanges several blocks.
            if self._ledgers[holder_id].would_exceed_debt(owner_id, factor):
                self.metrics.bump("fairness_refusals")
                return refuse("fairness: pairwise exchange debt exceeded")
            consumed = self._fairness.consumed.get(owner_id, 0)
            contributed = self._fairness.contributed.get(owner_id, 0)
            if consumed + 1 > factor * contributed + self._fairness_grace:
                self.metrics.bump("fairness_refusals")
                return refuse("fairness: global exchange debt exceeded")
        store = self._stores[holder_id]
        if not store.can_store():
            self.metrics.bump("store_refusals")
            return refuse("quota full")
        store.store(
            owner_id,
            message.archive_id,
            CodedBlock(
                index=message.block_index,
                payload=message.payload,
                checksum=_EMPTY_CHECKSUM,
            ),
        )
        self._ledgers[holder_id].record_stored_for(owner_id)
        owner_ledger = self._ledgers.get(owner_id)
        if owner_ledger is not None:
            owner_ledger.record_stored_by(holder_id)
        self._fairness.record_hosting(holder_id)
        self._fairness.record_placement(owner_id)
        return StoreReply(
            sender=holder_id,
            recipient=owner_id,
            archive_id=message.archive_id,
            block_index=message.block_index,
            accepted=True,
        )

    def _release_stored(
        self, holder_id: int, owner_id: int, block_index: int
    ) -> None:
        """Holder-side release: drop the block, settle the ledgers."""
        store = self._stores.get(holder_id)
        if store is None:
            return
        if store.release(owner_id, self._archive_id(owner_id), block_index):
            self._ledgers[holder_id].record_released_for(owner_id)
            owner_ledger = self._ledgers.get(owner_id)
            if owner_ledger is not None:
                owner_ledger.record_released_by(holder_id)

    @staticmethod
    def _archive_id(owner_id: int) -> str:
        """One archive per peer; block indices never recycle across losses."""
        return f"a{owner_id}"

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    def _on_peer_spawned(self, peer: Peer) -> None:
        peer_id = peer.peer_id
        self._stores[peer_id] = BlockStore(self.config.quota)
        self._ledgers[peer_id] = ExchangeLedger()
        self._manifest[peer_id] = {}
        self._next_index[peer_id] = 0
        self.transport.register(peer_id, self._make_handler(peer_id))

    def _on_session_flip(self, peer: Peer, now: int) -> None:
        self.transport.set_online(peer.peer_id, peer.online)

    def _on_peer_departed(self, peer: Peer, now: int) -> None:
        peer_id = peer.peer_id
        # Its own in-flight transfer dies with it, releasing the link
        # (cancel_peer must run before _cancel_pending marks the
        # transfer complete, or the release accounting sees nothing).
        cancelled = self.links.cancel_peer(peer_id)
        if cancelled:
            self.metrics.bump(
                "link_seconds_released", sum(t.seconds for t in cancelled)
            )
        pending = self._pending.pop(peer_id, None)
        if pending is not None:
            self._cancel_pending(pending, release_blocks=True)
        # Mid-retry churn: a backed-off operation whose owner dies must
        # not leave retry state behind (its pending check is swallowed
        # by the driver's alive guard).
        self._attempts.pop(peer_id, None)
        # It can no longer become a holder for anyone's pending transfer.
        for owner_id in sorted(self._pending_by_holder.pop(peer_id, ())):
            waiting = self._pending.get(owner_id)
            if waiting is not None and waiting.blocks.pop(peer_id, None) is not None:
                self.metrics.bump("blocks_cancelled")
        # Blocks it held vanish with its store; owners forget the entry.
        store = self._stores.pop(peer_id, None)
        if store is not None:
            for owner_id in store.owners():
                manifest = self._manifest.get(owner_id)
                if manifest is not None:
                    manifest.pop(peer_id, None)
        # Blocks it placed elsewhere are garbage: free the partners' quota.
        for holder_id in self._manifest.pop(peer_id, {}):
            holder_store = self._stores.get(holder_id)
            if holder_store is not None:
                holder_store.release_owner(peer_id)
        self._ledgers.pop(peer_id, None)
        self._next_index.pop(peer_id, None)
        self.transport.unregister(peer_id)

    def _sample_extras(self, now: int) -> None:
        protocol = self.metrics.protocol
        self.metrics.sample_protocol(
            now,
            in_flight=len(self._pending),
            queue_delay_seconds=protocol.get("queue_delay_seconds", 0),
            transfers_completed=protocol.get("transfers_completed", 0),
            messages=self._messages,
        )

    def _extra_dispatch(self):
        return {
            EventKind.TRANSFER_DONE: lambda now, event: (
                self._handle_transfer_done(now, event.peer_id)
            ),
        }

    def _finalize(self, final_round: int) -> None:
        # Always stamp the message counter so protocol-mode payloads are
        # recognisable even for degenerate runs with zero traffic.
        self.metrics.bump("messages_sent", self._messages)

    # ------------------------------------------------------------------
    # Timeout / retry machinery
    # ------------------------------------------------------------------
    def _retry_after_timeout(self, owner: Peer, now: int) -> None:
        """An operation lost exchanges to the network; retry or give up.

        Retries back off exponentially (``retry_backoff_base`` rounds,
        doubling per attempt, capped at ``retry_backoff_cap``) up to
        ``retry_budget`` attempts.  Exhaustion degrades gracefully: the
        operation re-enqueues as an ordinary next-round check — the
        archive keeps being maintained, it just stops being treated as
        a transient network hiccup.
        """
        owner_id = owner.peer_id
        self.metrics.bump("timeouts")
        attempts = self._attempts.get(owner_id, 0)
        if attempts >= self.config.retry_budget:
            self._attempts.pop(owner_id, None)
            self.metrics.bump("gave_up")
            self._schedule_check(owner, now + 1)
            return
        self._attempts[owner_id] = attempts + 1
        self.metrics.bump("retries")
        backoff = min(
            self.config.retry_backoff_base << attempts,
            self.config.retry_backoff_cap,
        )
        self._schedule_check(owner, now + backoff)

    # ------------------------------------------------------------------
    # Execution trio, message-level
    # ------------------------------------------------------------------
    def _run_placement(self, owner: Peer, now: int) -> None:
        if owner.is_observer:
            return super()._run_placement(owner, now)
        if owner.peer_id in self._pending:
            return  # upload in flight; bookkeeping happens on completion
        archive = owner.archive
        needed = self.policy.n - len(archive.holders)
        if needed > 0:
            drops_before = self._drop_count
            self._latency_pool = 0.0
            placed = self._store_blocks(owner, now, needed)
            if placed:
                self._attempts.pop(owner.peer_id, None)
                self._begin_transfer(
                    owner, now, kind="placement", blocks=placed, sources=()
                )
                return
            if self._drop_count > drops_before:
                # Nothing placed and the network ate at least one store
                # exchange: a transient failure, not a refusal.
                self._retry_after_timeout(owner, now)
                return
        self._placement_bookkeeping(owner, now)

    def _placement_bookkeeping(self, owner: Peer, now: int) -> None:
        """The abstract engine's post-upload placement accounting."""
        archive = owner.archive
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if archive.visible >= self.policy.repair_threshold and not archive.placed:
            archive.placed = True
            self.metrics.record_placement(now, owner.age(now))
        if not archive.placed or not archive.fully_placed:
            self._schedule_check(owner, now + 1)

    def _run_repair(self, owner: Peer, now: int) -> None:
        if owner.is_observer:
            return super()._run_repair(owner, now)
        if owner.peer_id in self._pending:
            return  # one transfer at a time per archive
        archive = owner.archive
        grace = self.config.grace_rounds
        for holder_id, invisible_since in list(archive.holders.items()):
            if invisible_since is not None and now - invisible_since >= grace:
                self._drop_holder(owner, self.population.get(holder_id))
        # Download phase: fetch any k blocks from visible holders, as
        # real exchanges (the driver's can_decode pre-check said this
        # should succeed; a shortfall means the stack lost a block —
        # or, under impairment, that the network ate some fetches).
        fetch_drops_before = self._drop_count
        self._latency_pool = 0.0
        sources = self._collect_blocks(owner)
        if len(sources) < self.policy.k:
            archive.blocked_count += 1
            if owner.adaptive is not None:
                owner.adaptive.on_blocked(now)
            self.metrics.record_blocked(now, owner.age(now), owner.observer_name)
            if self._drop_count > fetch_drops_before:
                self._retry_after_timeout(owner, now)
                return
            self.metrics.bump("fetch_shortfalls")
            self._schedule_check(owner, now + 1)
            return
        needed = self.policy.n - len(archive.holders)
        store_drops_before = self._drop_count
        placed = self._store_blocks(owner, now, needed) if needed > 0 else {}
        if not placed:
            if self._drop_count > store_drops_before:
                # Every would-be recruit exchange drowned; the selection
                # pool itself may be fine, so back off and retry.
                self._retry_after_timeout(owner, now)
                return
            if owner.adaptive is not None:
                owner.adaptive.on_starved(now)
            self.metrics.record_starved()
            if self._needs_repair(owner, archive.visible):
                self._schedule_check(owner, now + 1)
            return
        self._attempts.pop(owner.peer_id, None)
        self._begin_transfer(
            owner,
            now,
            kind="repair",
            blocks=placed,
            sources=sources,
        )

    def _record_loss(self, owner: Peer, now: int) -> None:
        if owner.is_observer:
            return super()._record_loss(owner, now)
        # A loss aborts any in-flight transfer for the dead archive.
        # The owner is still alive, so its link watermark stays: the
        # aborted transfer's bytes were already committed to the wire,
        # and the uplink may also owe serve time to other peers'
        # repairs — neither is reclaimable (unlike a death, where
        # cancel_peer releases the whole link).
        pending = self._pending.pop(owner.peer_id, None)
        if pending is not None:
            self._cancel_pending(pending, release_blocks=True)
        # The dead archive's retry state dies with it.
        self._attempts.pop(owner.peer_id, None)
        # Restore attempt: the owner only accepts the loss after real
        # fetch exchanges against the remaining holders come back short.
        # A restore is a one-shot event (there is no later round to back
        # off to), so dropped probes are re-sent immediately, up to the
        # retry budget per holder.
        for holder_id in list(owner.archive.holders):
            index = self._manifest.get(owner.peer_id, {}).get(holder_id)
            if index is None:
                continue
            probe = FetchRequest(
                sender=owner.peer_id,
                recipient=holder_id,
                archive_id=self._archive_id(owner.peer_id),
                block_index=index,
            )
            attempts = 0
            while True:
                drops_before = self._drop_count
                _, delivered = self._send(probe)
                if delivered or self._drop_count == drops_before:
                    break  # delivered, or a dead endpoint retries can't fix
                if attempts >= self.config.retry_budget:
                    self.metrics.bump("timeouts")
                    break
                attempts += 1
                self.metrics.bump("retries")
        self.metrics.bump("restore_attempts")
        super()._record_loss(owner, now)

    def _drop_holder(self, owner: Peer, holder: Peer) -> None:
        super()._drop_holder(owner, holder)
        if owner.is_observer:
            return
        manifest = self._manifest.get(owner.peer_id)
        index = manifest.pop(holder.peer_id, None) if manifest else None
        if index is None:
            return
        # Real release exchange when the holder is reachable; direct
        # cleanup otherwise (the real system garbage-collects the block
        # on next contact — modelled as immediate for quota accounting).
        _, delivered = self._send(
            ReleaseNotice(
                sender=owner.peer_id,
                recipient=holder.peer_id,
                archive_id=self._archive_id(owner.peer_id),
                block_index=index,
            )
        )
        if not delivered:
            self._release_stored(holder.peer_id, owner.peer_id, index)

    # ------------------------------------------------------------------
    # Transfer mechanics
    # ------------------------------------------------------------------
    def _collect_blocks(self, owner: Peer) -> List[int]:
        """Fetch up to ``k`` blocks from visible holders.

        Returns the holders that actually served a block — they are the
        repair's download *sources*, whose uplinks the transfer also
        occupies (see :meth:`_begin_transfer`).
        """
        archive = owner.archive
        manifest = self._manifest[owner.peer_id]
        archive_id = self._archive_id(owner.peer_id)
        sources: List[int] = []
        for holder_id, invisible_since in archive.holders.items():
            if len(sources) >= self.policy.k:
                break
            if invisible_since is not None:
                continue  # invisible holder: not a download source
            index = manifest.get(holder_id)
            if index is None:
                continue
            reply, delivered = self._send(
                FetchRequest(
                    sender=owner.peer_id,
                    recipient=holder_id,
                    archive_id=archive_id,
                    block_index=index,
                )
            )
            if (
                delivered
                and isinstance(reply, FetchReply)
                and reply.payload is not None
            ):
                sources.append(holder_id)
        return sources

    def _store_blocks(
        self, owner: Peer, now: int, needed: int
    ) -> Dict[int, int]:
        """Recruit partners and place blocks on them, as real exchanges.

        Selection and mutual acceptance run through the shared driver
        (:meth:`SimulationDriver._select_candidates`); each chosen
        candidate then receives a ``StoreRequest`` whose holder-side
        handler enforces quota and the fairness policy.  Returns
        ``holder -> block index`` for every accepted block.
        """
        owner_id = owner.peer_id
        archive_id = self._archive_id(owner_id)
        manifest = self._manifest[owner_id]
        quota = self.config.quota
        placed: Dict[int, int] = {}
        for candidate_id in self._select_candidates(owner, now, needed):
            holder = self.population.get(candidate_id)
            # Quota could have filled between sampling and selection.
            if not holder.has_free_quota(quota):
                continue
            index = self._next_index[owner_id]
            reply, delivered = self._send(
                StoreRequest(
                    sender=owner_id,
                    recipient=candidate_id,
                    archive_id=archive_id,
                    block_index=index,
                    payload=b"",
                )
            )
            if (
                delivered
                and isinstance(reply, StoreReply)
                and reply.accepted
            ):
                self._next_index[owner_id] = index + 1
                placed[candidate_id] = index
                manifest[candidate_id] = index
                self._pending_by_holder.setdefault(candidate_id, set()).add(
                    owner_id
                )
        return placed

    def _begin_transfer(
        self,
        owner: Peer,
        now: int,
        kind: str,
        blocks: Dict[int, int],
        sources,
    ) -> None:
        """Occupy the links involved and schedule the completion event.

        The owner's asymmetric link carries the whole repair
        (``delta_download + delta_upload``, the paper's cost model); in
        addition each download *source* serves one block over its own
        uplink.  Every block leg is priced at the pairwise gated rate
        ``min(sender uplink, receiver downlink)`` — a recruited
        partner's starved downlink slows the owner's upload exactly as
        a slow source uplink slows a serve.  The transfer completes
        when the slowest involved link frees — which is where real
        queueing appears: concurrent repairs fetching from the same
        stable elder serialise on its uplink.  Impairment latency
        accrued by the operation's negotiation exchanges defers the
        completion signal without occupying any link.
        """
        block_size = self.cost_model.block_size
        now_second = now * self.links.round_seconds
        block_seconds = self.cost_model.block_transfer_seconds()
        seconds = (
            len(sources) * block_size / self.link.download_bps
            + len(blocks) * block_seconds
        )
        latency = self._latency_pool
        self._latency_pool = 0.0
        transfer = self.links.schedule(
            owner.peer_id, seconds, now, latency_seconds=latency
        )
        delay = transfer.queue_delay(now_second)
        finish_second = transfer.finish_second
        for source_id in sources:
            serve = self.links.schedule(source_id, block_seconds, now)
            delay += serve.queue_delay(now_second)
            if serve.finish_second > finish_second:
                finish_second = serve.finish_second
            # The serve's queueing effect lives in the source's
            # busy_until watermark; drop the record itself so long-lived
            # popular holders do not accumulate bookkeeping.  A source
            # death still releases its link via cancel_peer.
            self.links.complete(serve)
        finish = self.links.round_for(finish_second, now)
        handle = self.queue.schedule(
            finish, Event(EventKind.TRANSFER_DONE, owner.peer_id)
        )
        self._pending[owner.peer_id] = _PendingTransfer(
            owner.peer_id, kind, blocks, transfer, handle
        )
        self.metrics.bump("transfers_started")
        self.metrics.bump("transfer_seconds", seconds)
        self.metrics.bump("queue_delay_seconds", delay)

    def _cancel_pending(
        self, pending: _PendingTransfer, release_blocks: bool
    ) -> None:
        """Abort an in-flight transfer (owner died or archive was lost)."""
        self.queue.cancel(pending.handle)
        self.links.complete(pending.transfer)
        owner_id = pending.owner_id
        for holder_id, index in pending.blocks.items():
            waiters = self._pending_by_holder.get(holder_id)
            if waiters is not None:
                waiters.discard(owner_id)
                if not waiters:
                    del self._pending_by_holder[holder_id]
            if release_blocks:
                manifest = self._manifest.get(owner_id)
                if manifest is not None:
                    manifest.pop(holder_id, None)
                self._release_stored(holder_id, owner_id, index)
        self.metrics.bump("transfers_cancelled")

    def _handle_transfer_done(self, now: int, owner_id: int) -> None:
        pending = self._pending.pop(owner_id, None)
        if pending is None:
            return  # cancelled (lazily) before firing
        self.links.complete(pending.transfer)
        owner = self.population.peers.get(owner_id)
        if owner is None or not owner.alive:
            return  # departed owners cancel in the death hook; defensive
        archive = owner.archive
        attached = 0
        for holder_id, _index in pending.blocks.items():
            waiters = self._pending_by_holder.get(holder_id)
            if waiters is not None:
                waiters.discard(owner_id)
                if not waiters:
                    del self._pending_by_holder[holder_id]
            holder = self.population.peers.get(holder_id)
            if holder is None or not holder.alive:
                continue  # removed on death; defensive
            self._attach_holder(owner, holder, now)
            attached += 1
        self.metrics.bump("transfers_completed")
        if pending.kind == "placement":
            self._placement_bookkeeping(owner, now)
            return
        if attached > 0:
            archive.repair_count += 1
            if owner.adaptive is not None:
                owner.adaptive.on_repair(now)
            self.metrics.record_repair(
                now, owner.age(now), attached, owner.observer_name
            )
        else:
            if owner.adaptive is not None:
                owner.adaptive.on_starved(now)
            self.metrics.record_starved()
        if len(archive.holders) >= self.policy.n:
            archive.fully_placed = True
        if self._needs_repair(owner, archive.visible):
            self._schedule_check(owner, now + 1)

    def _attach_holder(self, owner: Peer, holder: Peer, now: int) -> None:
        """Materialise one transferred block as an archive link.

        Unlike the abstract :meth:`_add_holder`, the holder may have
        gone offline while the transfer was in flight — it then joins
        as an invisible holder, exactly as if it had toggled right after
        an instantaneous store.
        """
        archive = owner.archive
        if holder.peer_id in archive.holders:
            return
        if holder.online:
            archive.holders[holder.peer_id] = None
            archive.visible += 1
        else:
            archive.holders[holder.peer_id] = now
        archive.alive += 1
        holder.hosted.add(owner.peer_id)

    # ------------------------------------------------------------------
    # Consistency audit, extended to the data plane
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Driver audit plus store/manifest/link mirror checks."""
        problems = super().audit()
        for peer in self.population.peers.values():
            if not peer.alive or peer.is_observer:
                continue
            manifest = self._manifest.get(peer.peer_id, {})
            pending = self._pending.get(peer.peer_id)
            pending_holders = set(pending.blocks) if pending else set()
            for holder_id in peer.archive.holders:
                index = manifest.get(holder_id)
                if index is None:
                    problems.append(
                        f"peer {peer.peer_id}: holder {holder_id} has no "
                        "manifest entry"
                    )
                    continue
                store = self._stores.get(holder_id)
                if store is None or store.fetch(
                    peer.peer_id, self._archive_id(peer.peer_id), index
                ) is None:
                    problems.append(
                        f"peer {peer.peer_id}: block {index} missing from "
                        f"holder {holder_id}'s store"
                    )
            for holder_id in manifest:
                if (
                    holder_id not in peer.archive.holders
                    and holder_id not in pending_holders
                ):
                    problems.append(
                        f"peer {peer.peer_id}: manifest entry for "
                        f"{holder_id} matches neither a link nor a "
                        "pending transfer"
                    )
        for peer_id, store in self._stores.items():
            if len(store) > self.config.quota:
                problems.append(
                    f"peer {peer_id}: block store over quota "
                    f"({len(store)} > {self.config.quota})"
                )
        for owner_id in sorted(self._attempts):
            peer = self.population.peers.get(owner_id)
            if peer is None or not peer.alive:
                problems.append(
                    f"peer {owner_id}: retry state outlived its owner"
                )
        return problems
