"""Simulation configuration.

One frozen dataclass collects every knob of the reproduction; the paper's
full-scale parameters (section 4.1) and the scaled laptop defaults both
come from here.  ``SimulationConfig.paper()`` returns the exact published
setting; ``SimulationConfig.scaled()`` returns the default used by the
test-suite and benchmarks, with the repair threshold mapped through
:func:`repro.core.policy.scaled_threshold`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from ..churn.profiles import PAPER_PROFILES, ROUNDS_PER_DAY, Profile, validate_mix
from ..core.acceptance import ACCEPTANCE_RULES, DEFAULT_AGE_CAP
from ..core.categories import DEFAULT_SCHEME, CategoryScheme
from ..core.policy import RepairPolicy, scaled_threshold
from ..core.selection import SELECTION_STRATEGIES
from ..net.bandwidth import LINK_PROFILES, MEGABYTE
from ..net.impairment import IMPAIRMENT_PROFILES

#: The fidelity whose serialized form is the historical one.  Configs at
#: this fidelity omit every fidelity-related key from ``to_dict`` so
#: their cache digests stay byte-identical across releases.
DEFAULT_FIDELITY = "abstract"


@dataclass(frozen=True)
class ObserverSpec:
    """A fixed-age observer peer (paper section 4.2.2)."""

    name: str
    fixed_age: int

    def __post_init__(self) -> None:
        if self.fixed_age < 0:
            raise ValueError("observer age cannot be negative")

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe)."""
        return {"name": self.name, "fixed_age": self.fixed_age}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ObserverSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(name=data["name"], fixed_age=data["fixed_age"])


#: The paper's five observers: Elder (3 months = the cap L), Senior
#: (1 month), Adult (1 week), Teenager (1 day), Baby (1 hour).
PAPER_OBSERVERS: Tuple[ObserverSpec, ...] = (
    ObserverSpec("Elder", 90 * ROUNDS_PER_DAY),
    ObserverSpec("Senior", 30 * ROUNDS_PER_DAY),
    ObserverSpec("Adult", 7 * ROUNDS_PER_DAY),
    ObserverSpec("Teenager", 1 * ROUNDS_PER_DAY),
    ObserverSpec("Baby", 1),
)


@dataclass(frozen=True)
class SimulationConfig:
    """Every parameter of one simulation run."""

    population: int = 1000
    rounds: int = 10_000
    data_blocks: int = 16            # k
    parity_blocks: int = 16          # m
    repair_threshold: int = 18       # k'
    quota: int = 48                  # hosted blocks per peer (paper: 384 = 1.5 n)
    age_cap: int = DEFAULT_AGE_CAP   # L of the acceptation function
    profiles: Tuple[Profile, ...] = PAPER_PROFILES
    categories: CategoryScheme = field(default_factory=lambda: DEFAULT_SCHEME)
    selection_strategy: str = "age"
    acceptance_rule: str = "age"   # "age" (the paper's f) or "uniform" (blind)
    observers: Tuple[ObserverSpec, ...] = ()
    seed: Optional[int] = 0
    # --- secondary knobs -------------------------------------------------
    pool_factor: float = 1.5         # pool target = pool_factor * d
    max_examined_factor: float = 6.0  # candidate budget = factor * d + 16
    sample_interval: int = ROUNDS_PER_DAY  # metrics sampling cadence
    warmup_rounds: int = 0           # rounds excluded from rate metrics
    grace_rounds: int = 0            # A3: retain invisible holders this long
    staggered_join_rounds: int = 0   # 0 = everyone joins at round 0
    proactive_rate: float = 0.0      # A4: extra blocks per round per archive
    adaptive_thresholds: bool = False  # A5: per-peer threshold adaptation (paper future work)
    # --- fidelity backend (PR 5) -----------------------------------------
    #: Which simulation backend executes the run: "abstract" (peers as
    #: counters, repairs instantaneous) or "protocol" (repairs as real
    #: message exchanges with bandwidth-gated completion).  Resolved
    #: through ``repro.sim.fidelity.FIDELITY_BACKENDS``.
    fidelity: str = DEFAULT_FIDELITY
    #: Access-link profile gating protocol-mode transfer times
    #: (``repro.net.bandwidth.LINK_PROFILES`` name).
    link_profile: str = "paper-dsl"
    #: Wall-clock seconds per simulation round (the paper: one hour).
    round_seconds: int = 3600
    #: Bytes per archive for the protocol-mode cost model (paper: 128 MB).
    archive_bytes: int = 128 * MEGABYTE
    #: Pairwise-exchange fairness cap enforced by protocol-mode block
    #: stores (``None`` disables enforcement; see repro.backup.fairness).
    fairness_factor: Optional[float] = None
    #: Netem-style link condition applied to protocol-mode exchanges
    #: (``repro.net.impairment.IMPAIRMENT_PROFILES`` name).  "clean"
    #: leaves the transport untouched and consumes no RNG draws.
    impairment_profile: str = "clean"
    #: How many times a placement/repair/restore exchange is retried
    #: after an impairment-layer timeout before the operation gives up
    #: and re-enqueues as an ordinary check.
    retry_budget: int = 3
    #: Rounds to wait before the first retry of a timed-out exchange;
    #: doubles per attempt (capped below).
    retry_backoff_base: int = 1
    #: Ceiling on the exponential retry backoff, in rounds.
    retry_backoff_cap: int = 8

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ValueError("population must be positive")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.quota <= 0:
            raise ValueError(
                f"quota must be positive, got {self.quota}: every peer "
                "must be able to host at least one block, or no archive "
                "can ever be placed"
            )
        if self.data_blocks < 1:
            raise ValueError(f"data_blocks (k) must be >= 1, got {self.data_blocks}")
        if self.parity_blocks < 0:
            raise ValueError(
                f"parity_blocks (m) cannot be negative, got {self.parity_blocks}"
            )
        total = self.data_blocks + self.parity_blocks
        if self.repair_threshold > total:
            raise ValueError(
                f"repair_threshold={self.repair_threshold} exceeds "
                f"data_blocks + parity_blocks = {total}: a repair can "
                "never place more than n blocks, so the archive would "
                "repair forever — lower repair_threshold or widen the code"
            )
        if self.repair_threshold < self.data_blocks:
            raise ValueError(
                f"repair_threshold={self.repair_threshold} is below "
                f"data_blocks = {self.data_blocks}: fewer than k visible "
                "blocks cannot decode, so repairs would trigger only "
                "after the archive is already lost — raise repair_threshold"
            )
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if not 0 <= self.warmup_rounds < self.rounds:
            raise ValueError("warmup_rounds must lie in [0, rounds)")
        if self.pool_factor < 1.0:
            raise ValueError("pool_factor must be >= 1")
        if self.max_examined_factor <= 0:
            raise ValueError("max_examined_factor must be positive")
        if self.grace_rounds < 0:
            raise ValueError("grace_rounds cannot be negative")
        if self.staggered_join_rounds < 0:
            raise ValueError("staggered_join_rounds cannot be negative")
        if self.proactive_rate < 0:
            raise ValueError("proactive_rate cannot be negative")
        if self.round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        if self.archive_bytes <= 0:
            raise ValueError("archive_bytes must be positive")
        if self.fairness_factor is not None and self.fairness_factor <= 0:
            raise ValueError("fairness_factor must be positive (or None)")
        if self.retry_budget < 0:
            raise ValueError("retry_budget cannot be negative")
        if self.retry_backoff_base < 1:
            raise ValueError("retry_backoff_base must be at least one round")
        if self.retry_backoff_cap < self.retry_backoff_base:
            raise ValueError(
                "retry_backoff_cap cannot be below retry_backoff_base"
            )
        # Component names resolve through the registries, so a typo (or a
        # strategy that was never registered) fails here with the list of
        # valid choices instead of deep inside Simulation._setup.
        SELECTION_STRATEGIES.check(self.selection_strategy)
        ACCEPTANCE_RULES.check(self.acceptance_rule)
        LINK_PROFILES.check(self.link_profile)
        IMPAIRMENT_PROFILES.check(self.impairment_profile)
        # Imported lazily: the fidelity registry's built-in backends live
        # in modules that themselves import this one.
        from .fidelity import check_fidelity

        check_fidelity(self.fidelity)
        validate_mix(self.profiles)

    def policy(self) -> RepairPolicy:
        """The repair policy implied by k, m and the threshold."""
        return RepairPolicy(
            data_blocks=self.data_blocks,
            total_blocks=self.data_blocks + self.parity_blocks,
            repair_threshold=self.repair_threshold,
        )

    @property
    def total_blocks(self) -> int:
        """``n = k + m``."""
        return self.data_blocks + self.parity_blocks

    def to_dict(self) -> Dict[str, object]:
        """Stable plain-data form of every knob (JSON-safe).

        This is the canonical content of a configuration: the sweep
        executor hashes it for the on-disk result cache and ships it to
        worker processes, so the field set must round-trip exactly
        through :meth:`from_dict`.

        Fidelity keys are emitted **only** for non-abstract configs:
        abstract-mode dicts (and therefore their cache digests) are
        byte-identical to releases that predate the fidelity axis, while
        protocol-mode configs hash every knob that changes their
        semantics.
        """
        data: Dict[str, object] = {
            "population": self.population,
            "rounds": self.rounds,
            "data_blocks": self.data_blocks,
            "parity_blocks": self.parity_blocks,
            "repair_threshold": self.repair_threshold,
            "quota": self.quota,
            "age_cap": self.age_cap,
            "profiles": [profile.to_dict() for profile in self.profiles],
            "categories": self.categories.to_dict(),
            "selection_strategy": self.selection_strategy,
            "acceptance_rule": self.acceptance_rule,
            "observers": [observer.to_dict() for observer in self.observers],
            "seed": self.seed,
            "pool_factor": self.pool_factor,
            "max_examined_factor": self.max_examined_factor,
            "sample_interval": self.sample_interval,
            "warmup_rounds": self.warmup_rounds,
            "grace_rounds": self.grace_rounds,
            "staggered_join_rounds": self.staggered_join_rounds,
            "proactive_rate": self.proactive_rate,
            "adaptive_thresholds": self.adaptive_thresholds,
        }
        if self.fidelity != DEFAULT_FIDELITY:
            data["fidelity"] = self.fidelity
            data["link_profile"] = self.link_profile
            data["round_seconds"] = self.round_seconds
            data["archive_bytes"] = self.archive_bytes
            data["fairness_factor"] = self.fairness_factor
            data["impairment_profile"] = self.impairment_profile
            data["retry_budget"] = self.retry_budget
            data["retry_backoff_base"] = self.retry_backoff_base
            data["retry_backoff_cap"] = self.retry_backoff_cap
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationConfig":
        """Rebuild (and re-validate) a config from :meth:`to_dict` output."""
        return cls(
            population=data["population"],
            rounds=data["rounds"],
            data_blocks=data["data_blocks"],
            parity_blocks=data["parity_blocks"],
            repair_threshold=data["repair_threshold"],
            quota=data["quota"],
            age_cap=data["age_cap"],
            profiles=tuple(
                Profile.from_dict(entry) for entry in data["profiles"]
            ),
            categories=CategoryScheme.from_dict(data["categories"]),
            selection_strategy=data["selection_strategy"],
            acceptance_rule=data["acceptance_rule"],
            observers=tuple(
                ObserverSpec.from_dict(entry) for entry in data["observers"]
            ),
            seed=data["seed"],
            pool_factor=data["pool_factor"],
            max_examined_factor=data["max_examined_factor"],
            sample_interval=data["sample_interval"],
            warmup_rounds=data["warmup_rounds"],
            grace_rounds=data["grace_rounds"],
            staggered_join_rounds=data["staggered_join_rounds"],
            proactive_rate=data["proactive_rate"],
            adaptive_thresholds=data["adaptive_thresholds"],
            fidelity=data.get("fidelity", DEFAULT_FIDELITY),
            link_profile=data.get("link_profile", "paper-dsl"),
            round_seconds=data.get("round_seconds", 3600),
            archive_bytes=data.get("archive_bytes", 128 * MEGABYTE),
            fairness_factor=data.get("fairness_factor"),
            impairment_profile=data.get("impairment_profile", "clean"),
            retry_budget=data.get("retry_budget", 3),
            retry_backoff_base=data.get("retry_backoff_base", 1),
            retry_backoff_cap=data.get("retry_backoff_cap", 8),
        )

    def with_threshold(self, repair_threshold: int) -> "SimulationConfig":
        """Copy with a different repair threshold (threshold sweeps)."""
        return replace(self, repair_threshold=repair_threshold)

    def with_seed(self, seed: Optional[int]) -> "SimulationConfig":
        """Copy with a different seed (replications)."""
        return replace(self, seed=seed)

    @classmethod
    def paper(
        cls,
        repair_threshold: int = 148,
        observers: Sequence[ObserverSpec] = (),
        seed: Optional[int] = 0,
    ) -> "SimulationConfig":
        """The exact full-scale setting of section 4.1.

        25 000 peers, k = m = 128, quota = 384, 50 000 one-hour rounds.
        Running this in pure Python takes hours; it exists so the scaled
        runs have an explicit, executable reference point.
        """
        return cls(
            population=25_000,
            rounds=50_000,
            data_blocks=128,
            parity_blocks=128,
            repair_threshold=repair_threshold,
            quota=384,
            observers=tuple(observers),
            seed=seed,
        )

    @classmethod
    def scaled(
        cls,
        paper_threshold: int = 148,
        population: int = 1000,
        rounds: int = 10_000,
        data_blocks: int = 16,
        parity_blocks: int = 16,
        observers: Sequence[ObserverSpec] = (),
        seed: Optional[int] = 0,
        **overrides,
    ) -> "SimulationConfig":
        """Laptop-scale configuration preserving the paper's ratios.

        * the erasure-code rate stays 1/2 (m = k);
        * the quota stays 1.5 x n (paper: 384 = 1.5 x 256);
        * the repair threshold keeps its slack fraction
          ``(k' - k)/(n - k)`` (148 -> 18 for k=16, n=32).
        """
        total = data_blocks + parity_blocks
        threshold = scaled_threshold(
            paper_threshold,
            paper_k=128,
            paper_n=256,
            target_k=data_blocks,
            target_n=total,
        )
        quota = overrides.pop("quota", int(total * 1.5))
        return cls(
            population=population,
            rounds=rounds,
            data_blocks=data_blocks,
            parity_blocks=parity_blocks,
            repair_threshold=threshold,
            quota=quota,
            observers=tuple(observers),
            seed=seed,
            **overrides,
        )
