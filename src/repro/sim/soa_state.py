"""Structure-of-arrays state tables for the ``abstract_soa`` backend.

The object-graph engine (:mod:`repro.sim.peer`) keeps one ``Peer`` plus
one ``ArchiveState`` per peer — ~15 heap objects and dict slots per
simulated participant.  That layout is pleasant to mutate but costs an
attribute walk per touch and roughly 5 KB per peer, which caps practical
populations around 10^5.  This module re-lays the same state as parallel
columns indexed by peer id:

* **scalar columns** are plain Python lists (``join``, ``online``,
  ``alive``, ``visible``, ``placed`` ...): the simulation's hot handlers
  touch a handful of scalars per event, where a C-backed list index is
  several times cheaper than numpy element access *and* than a slotted
  attribute load;
* **placement links** are two ragged adjacency tables: ``holders[o]``
  lists the peers storing owner ``o``'s blocks, and ``owners_of[h]``
  lists the owners peer ``h`` stores for (the reverse index that makes
  session toggles O(links-of-one-peer));
* **census mirrors** (``join_np`` / ``census_alive``) are numpy arrays
  maintained alongside the lists so the periodic metrics census is one
  vectorised mask-subtract-searchsorted instead of a Python loop over
  the whole population.

Invariants (checked by ``SoaSimulation.audit``):

* peer ids are allocated monotonically and never recycled — identical
  to ``Population.new_id``, which is what lets the two backends share a
  churn trajectory draw for draw;
* observers occupy ids ``0 .. n_observers-1`` (they are created before
  any JOIN event fires), so "is this peer an observer" is an id
  comparison instead of a column;
* ``holders`` rows contain **live peers only**: a death removes the
  dead peer from every row it appears in, so a row's length *is* the
  archive's live-holder count (``ArchiveState.alive`` in the object
  engine);
* ``visible[o]`` counts the online entries of ``holders[o]``, updated
  incrementally on toggles, recruitment, drops and deaths;
* the per-link "invisible since" timestamp of ``ArchiveState.holders``
  is derived, not stored: links are only ever formed to online peers
  and die with their holder, so a holder ``h`` is invisible exactly
  when ``online[h]`` is false, and the round it disappeared is
  ``last_offline[h]``;
* ``quota_used[h]`` counts the links of ``h`` whose owner is a normal
  peer (observer-owned blocks are quota-free, paper section 4.2.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class StateTables:
    """All per-peer simulation state as parallel columns.

    One instance holds every peer of a run — observers first, then
    normal peers in spawn order.  ``add_observer`` / ``add_peer`` return
    the allocated id; columns grow in lockstep.
    """

    __slots__ = (
        "n_observers",
        "count",
        # scalar columns (Python lists, hot)
        "join",
        "death",
        "profile",
        "online",
        "alive",
        "last_offline",
        "last_state_change",
        "online_rounds",
        "quota_used",
        # archive columns
        "visible",
        "placed",
        "fully_placed",
        "pending_check",
        "check_scheduled",
        "check_handle",
        # ragged link tables
        "holders",
        "owners_of",
        # observer side tables (indexed by id < n_observers)
        "fixed_age",
        "observer_name",
        # numpy mirrors (grown amortised): join rounds + census flags
        # feed the vectorised census; quota feeds the vectorised pool
        # filter (kept in lockstep with ``quota_used`` by the engine).
        "_join_np",
        "_census_alive",
        "quota_np",
        "_capacity",
    )

    def __init__(self, initial_capacity: int = 1024):
        self.n_observers = 0
        self.count = 0
        self.join: List[int] = []
        self.death: List[Optional[int]] = []
        self.profile: List[int] = []
        self.online: List[int] = []
        self.alive: List[int] = []
        self.last_offline: List[int] = []
        self.last_state_change: List[int] = []
        self.online_rounds: List[int] = []
        self.quota_used: List[int] = []
        self.visible: List[int] = []
        self.placed: List[int] = []
        self.fully_placed: List[int] = []
        self.pending_check: List[int] = []
        self.check_scheduled: List[Optional[int]] = []
        self.check_handle: List[object] = []
        self.holders: List[List[int]] = []
        self.owners_of: List[List[int]] = []
        self.fixed_age: List[int] = []
        self.observer_name: List[str] = []
        capacity = max(int(initial_capacity), 16)
        self._join_np = np.zeros(capacity, dtype=np.int64)
        self._census_alive = np.zeros(capacity, dtype=bool)
        self.quota_np = np.zeros(capacity, dtype=np.int64)
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _append_common(self, join_round: int) -> int:
        peer_id = self.count
        if peer_id >= self._capacity:
            capacity = self._capacity * 2
            join_np = np.zeros(capacity, dtype=np.int64)
            join_np[: self._capacity] = self._join_np
            census = np.zeros(capacity, dtype=bool)
            census[: self._capacity] = self._census_alive
            quota_np = np.zeros(capacity, dtype=np.int64)
            quota_np[: self._capacity] = self.quota_np
            self._join_np = join_np
            self._census_alive = census
            self.quota_np = quota_np
            self._capacity = capacity
        self.count = peer_id + 1
        self.join.append(join_round)
        self.online.append(1)
        self.alive.append(1)
        self.last_offline.append(-1)
        self.last_state_change.append(join_round)
        self.online_rounds.append(0)
        self.quota_used.append(0)
        self.visible.append(0)
        self.placed.append(0)
        self.fully_placed.append(0)
        self.pending_check.append(0)
        self.check_scheduled.append(None)
        self.check_handle.append(None)
        self.holders.append([])
        self.owners_of.append([])
        self._join_np[peer_id] = join_round
        return peer_id

    def add_observer(self, fixed_age: int, name: str, join_round: int = 0) -> int:
        """Register one observer peer; must precede every ``add_peer``."""
        if self.n_observers != self.count:
            raise ValueError("observers must be added before normal peers")
        peer_id = self._append_common(join_round)
        self.death.append(None)
        self.profile.append(-1)
        self.fixed_age.append(fixed_age)
        self.observer_name.append(name)
        self.n_observers += 1
        # Observers are excluded from the census (they are the probe,
        # not the population), so their census flag stays False.
        return peer_id

    def add_peer(
        self, profile_index: int, join_round: int, death_round: Optional[int]
    ) -> int:
        """Register one normal peer, returning its id."""
        peer_id = self._append_common(join_round)
        self.death.append(death_round)
        self.profile.append(profile_index)
        self._census_alive[peer_id] = True
        return peer_id

    def mark_dead(self, peer_id: int) -> None:
        """Flip the scalar and census life flags for a departing peer."""
        self.alive[peer_id] = 0
        self.online[peer_id] = 0
        self._census_alive[peer_id] = False

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def census_counts(self, now: int, category_uppers: np.ndarray) -> np.ndarray:
        """Population count per age category over live normal peers.

        ``category_uppers`` holds the finite upper bounds of every
        category but the last; with half-open contiguous brackets,
        ``searchsorted(uppers, age, side="right")`` is exactly
        ``CategoryScheme.classify`` vectorised.
        """
        count = self.count
        mask = self._census_alive[:count]
        ages = now - self._join_np[:count][mask]
        indices = np.searchsorted(category_uppers, ages, side="right")
        return np.bincount(indices, minlength=len(category_uppers) + 1)
