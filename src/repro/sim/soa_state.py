"""Structure-of-arrays state tables for the ``abstract_soa`` backend.

The object-graph engine (:mod:`repro.sim.peer`) keeps one ``Peer`` plus
one ``ArchiveState`` per peer — ~15 heap objects and dict slots per
simulated participant.  That layout is pleasant to mutate but costs an
attribute walk per touch and roughly 5 KB per peer, which caps practical
populations around 10^5.  This module re-lays the same state as parallel
columns indexed by peer id:

* **scalar columns** are plain Python lists (``join``, ``online``,
  ``alive``, ``placed`` ...): the simulation's hot handlers touch a
  handful of scalars per event, where a C-backed list index is several
  times cheaper than numpy element access *and* than a slotted
  attribute load;
* **adaptive columns** (``visible``, ``placed``) switch representation
  with the population scale (``vector_columns``): numpy vectors at
  swarm scale, where the round-batched toggle kernel updates them with
  scatter-adds and masked compares over thousands of ids per round;
  plain lists at ordinary scale, where a round toggles a handful of
  peers and C-backed element access wins;
* **placement links**: ``holders[o]`` stays a ragged Python list (rows
  mutate one link at a time from scalar handlers); the reverse index
  ``owners_of`` — the toggle fan-out's input — is adaptive like the
  archive columns: ragged lists at ordinary scale (iteration and
  ``list.remove`` are the hot operations there), and at swarm scale a
  CSR slab — one ``int64`` data array plus per-row ``start``/``len``/
  ``cap`` bookkeeping — so the kernel can gather every owner touched
  by a toggle batch with one fancy-index instead of chaining thousands
  of little lists;
* **census mirrors** (``join_np`` / ``census_alive``) are numpy arrays
  maintained alongside the lists so the periodic metrics census is one
  vectorised mask-subtract-searchsorted instead of a Python loop over
  the whole population.

CSR slab mechanics: a row grows by relocating to the end of the slab
with doubled capacity (the old copy becomes garbage); removals swap-pop
inside the row (row order is irrelevant — the engines only ever consume
rows as unordered sets); when the slab must grow while at least half of
it is garbage, it is compacted in one vectorised pass instead.  Peer
ids are never recycled, so ``start``/``cap`` entries stay valid
forever.

Invariants (checked by ``SoaSimulation.audit``):

* peer ids are allocated monotonically and never recycled — identical
  to ``Population.new_id``, which is what lets the two backends share a
  churn trajectory draw for draw;
* observers occupy ids ``0 .. n_observers-1`` (they are created before
  any JOIN event fires), so "is this peer an observer" is an id
  comparison instead of a column;
* ``holders`` rows contain **live peers only**: a death removes the
  dead peer from every row it appears in, so a row's length *is* the
  archive's live-holder count (``ArchiveState.alive`` in the object
  engine);
* ``visible[o]`` counts the online entries of ``holders[o]``, updated
  incrementally on toggles, recruitment, drops and deaths;
* the per-link "invisible since" timestamp of ``ArchiveState.holders``
  is derived, not stored: links are only ever formed to online peers
  and die with their holder, so a holder ``h`` is invisible exactly
  when ``online[h]`` is false, and the round it disappeared is
  ``last_offline[h]``;
* ``quota_used[h]`` counts the links of ``h`` whose owner is a normal
  peer (observer-owned blocks are quota-free, paper section 4.2.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class StateTables:
    """All per-peer simulation state as parallel columns.

    One instance holds every peer of a run — observers first, then
    normal peers in spawn order.  ``add_observer`` / ``add_peer`` return
    the allocated id; columns grow in lockstep.
    """

    __slots__ = (
        "n_observers",
        "count",
        "vector_columns",
        # scalar columns (Python lists, hot)
        "join",
        "death",
        "profile",
        "online",
        "alive",
        "last_offline",
        "last_state_change",
        "online_rounds",
        "quota_used",
        # archive columns (visible/placed are numpy: the toggle kernel
        # scatter-adds visible and mask-compares both in bulk)
        "visible",
        "placed",
        "fully_placed",
        "pending_check",
        "check_scheduled",
        "check_handle",
        # ragged link table (owner -> holders)
        "holders",
        # reverse index (holder -> owners): ragged lists at ordinary
        # scale, CSR slab at swarm scale (see class docstring)
        "owners_of",
        "_own_data",
        "_own_start",
        "_own_len",
        "_own_cap",
        "_own_used",
        "_own_garbage",
        # observer side tables (indexed by id < n_observers)
        "fixed_age",
        "observer_name",
        # numpy mirrors (grown amortised): join rounds + census flags
        # feed the vectorised census; quota feeds the vectorised pool
        # filter (kept in lockstep with ``quota_used`` by the engine).
        "_join_np",
        "_census_alive",
        "quota_np",
        "_capacity",
    )

    def __init__(self, initial_capacity: int = 1024, vector_columns: bool = False):
        self.n_observers = 0
        self.count = 0
        self.vector_columns = vector_columns
        self.join: List[int] = []
        self.death: List[Optional[int]] = []
        self.profile: List[int] = []
        self.online: List[int] = []
        self.alive: List[int] = []
        self.last_offline: List[int] = []
        self.last_state_change: List[int] = []
        self.online_rounds: List[int] = []
        self.quota_used: List[int] = []
        self.fully_placed: List[int] = []
        self.pending_check: List[int] = []
        self.check_scheduled: List[Optional[int]] = []
        self.check_handle: List[object] = []
        self.holders: List[List[int]] = []
        self.fixed_age: List[int] = []
        self.observer_name: List[str] = []
        capacity = max(int(initial_capacity), 16)
        self._join_np = np.zeros(capacity, dtype=np.int64)
        self._census_alive = np.zeros(capacity, dtype=bool)
        self.quota_np = np.zeros(capacity, dtype=np.int64)
        # ``visible``/``placed`` carry the toggle kernel's state.  At
        # swarm scale they are numpy columns (the kernel scatter-adds
        # and mask-compares whole batches); at ordinary populations the
        # batches are a handful of peers per round and C-backed lists
        # win — the scalar handlers touch these columns one element at
        # a time either way.
        if vector_columns:
            self.visible = np.zeros(capacity, dtype=np.int64)
            self.placed = np.zeros(capacity, dtype=np.int8)
        else:
            self.visible = []
            self.placed = []
        self._capacity = capacity
        # Reverse index, same adaptivity: ragged lists below the vector
        # threshold, CSR slab above it.
        if vector_columns:
            self.owners_of = None
            self._own_data = np.zeros(1024, dtype=np.int64)
        else:
            self.owners_of: List[List[int]] = []
            self._own_data = _EMPTY_IDS
        self._own_start: List[int] = []
        self._own_len: List[int] = []
        self._own_cap: List[int] = []
        self._own_used = 0
        self._own_garbage = 0

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _append_common(self, join_round: int) -> int:
        peer_id = self.count
        if peer_id >= self._capacity:
            capacity = self._capacity * 2
            join_np = np.zeros(capacity, dtype=np.int64)
            join_np[: self._capacity] = self._join_np
            census = np.zeros(capacity, dtype=bool)
            census[: self._capacity] = self._census_alive
            quota_np = np.zeros(capacity, dtype=np.int64)
            quota_np[: self._capacity] = self.quota_np
            if self.vector_columns:
                visible = np.zeros(capacity, dtype=np.int64)
                visible[: self._capacity] = self.visible
                placed = np.zeros(capacity, dtype=np.int8)
                placed[: self._capacity] = self.placed
                self.visible = visible
                self.placed = placed
            self._join_np = join_np
            self._census_alive = census
            self.quota_np = quota_np
            self._capacity = capacity
        self.count = peer_id + 1
        self.join.append(join_round)
        self.online.append(1)
        self.alive.append(1)
        self.last_offline.append(-1)
        self.last_state_change.append(join_round)
        self.online_rounds.append(0)
        self.quota_used.append(0)
        if not self.vector_columns:
            self.visible.append(0)
            self.placed.append(0)
        self.fully_placed.append(0)
        self.pending_check.append(0)
        self.check_scheduled.append(None)
        self.check_handle.append(None)
        self.holders.append([])
        if self.vector_columns:
            self._own_start.append(0)
            self._own_len.append(0)
            self._own_cap.append(0)
        else:
            self.owners_of.append([])
        self._join_np[peer_id] = join_round
        return peer_id

    def add_observer(self, fixed_age: int, name: str, join_round: int = 0) -> int:
        """Register one observer peer; must precede every ``add_peer``."""
        if self.n_observers != self.count:
            raise ValueError("observers must be added before normal peers")
        peer_id = self._append_common(join_round)
        self.death.append(None)
        self.profile.append(-1)
        self.fixed_age.append(fixed_age)
        self.observer_name.append(name)
        self.n_observers += 1
        # Observers are excluded from the census (they are the probe,
        # not the population), so their census flag stays False.
        return peer_id

    def add_peer(
        self, profile_index: int, join_round: int, death_round: Optional[int]
    ) -> int:
        """Register one normal peer, returning its id."""
        peer_id = self._append_common(join_round)
        self.death.append(death_round)
        self.profile.append(profile_index)
        self._census_alive[peer_id] = True
        return peer_id

    def mark_dead(self, peer_id: int) -> None:
        """Flip the scalar and census life flags for a departing peer."""
        self.alive[peer_id] = 0
        self.online[peer_id] = 0
        self._census_alive[peer_id] = False

    # ------------------------------------------------------------------
    # owners_of reverse index (ragged lists / CSR slab, see docstring)
    # ------------------------------------------------------------------
    def owners_row(self, peer_id: int) -> Sequence[int]:
        """The owners peer ``peer_id`` stores for.

        A plain list at ordinary scale, a slab view at swarm scale.
        Callers must treat the row as read-only and unordered, and must
        not hold a slab view across mutations (append/remove/compaction
        may relocate the row).
        """
        if not self.vector_columns:
            return self.owners_of[peer_id]
        start = self._own_start[peer_id]
        return self._own_data[start : start + self._own_len[peer_id]]

    def owners_append(self, holder_id: int, owner_id: int) -> None:
        """Record that ``holder_id`` now stores a block of ``owner_id``."""
        if not self.vector_columns:
            self.owners_of[holder_id].append(owner_id)
            return
        count = self._own_len[holder_id]
        if count == self._own_cap[holder_id]:
            self._relocate_row(holder_id, count)
        self._own_data[self._own_start[holder_id] + count] = owner_id
        self._own_len[holder_id] = count + 1

    def owners_remove(self, holder_id: int, owner_id: int) -> None:
        """Drop one ``owner_id`` entry from ``holder_id``'s row.

        ValueError on a missing owner is deliberate in both modes: the
        link tables would be corrupt, and audit() wants to hear about
        it loudly.
        """
        if not self.vector_columns:
            self.owners_of[holder_id].remove(owner_id)
            return
        start = self._own_start[holder_id]
        count = self._own_len[holder_id]
        row = self._own_data[start : start + count]
        position = row.tolist().index(owner_id)
        last = count - 1
        if position != last:
            row[position] = row[last]
        self._own_len[holder_id] = last

    def owners_clear(self, peer_id: int) -> List[int]:
        """Empty ``peer_id``'s row (on death), returning the old owners."""
        if not self.vector_columns:
            owners = self.owners_of[peer_id]
            self.owners_of[peer_id] = []
            return owners
        start = self._own_start[peer_id]
        count = self._own_len[peer_id]
        owners = self._own_data[start : start + count].tolist()
        self._own_len[peer_id] = 0
        self._own_garbage += self._own_cap[peer_id]
        self._own_cap[peer_id] = 0
        return owners

    def owners_concat(self, peer_ids: Sequence[int]) -> np.ndarray:
        """All owners stored by the given peers, rows concatenated.

        The vector toggle kernel's gather: one flat ``int64`` vector
        (with repeats — an owner stored by two toggling holders appears
        twice) ready for ``np.add.at`` scatter updates of ``visible``.
        Slab mode only; the list-mode kernel iterates rows directly.
        """
        starts = self._own_start
        lens = self._own_len
        data = self._own_data
        if len(peer_ids) < 16:
            out: List[int] = []
            for peer_id in peer_ids:
                count = lens[peer_id]
                if count:
                    start = starts[peer_id]
                    out.extend(data[start : start + count].tolist())
            return np.array(out, dtype=np.int64) if out else _EMPTY_IDS
        n = len(peer_ids)
        s = np.fromiter((starts[p] for p in peer_ids), dtype=np.int64, count=n)
        c = np.fromiter((lens[p] for p in peer_ids), dtype=np.int64, count=n)
        total = int(c.sum())
        if total == 0:
            return _EMPTY_IDS
        ends = np.cumsum(c)
        indices = np.repeat(s - (ends - c), c) + np.arange(total)
        return data[indices]

    def _relocate_row(self, holder_id: int, count: int) -> None:
        cap = self._own_cap[holder_id]
        new_cap = cap * 2 if cap else 4
        if self._own_used + new_cap > len(self._own_data):
            self._ensure_own_capacity(new_cap)
        data = self._own_data
        used = self._own_used
        start = self._own_start[holder_id]
        if count:
            data[used : used + count] = data[start : start + count]
        self._own_start[holder_id] = used
        self._own_cap[holder_id] = new_cap
        self._own_used = used + new_cap
        self._own_garbage += cap

    def _ensure_own_capacity(self, extra: int) -> None:
        # Compact before growing: growth holds the old and new slabs
        # simultaneously, so reclaiming abandoned row copies first —
        # when they are at least a quarter of the consumed slab — often
        # makes the allocation unnecessary and caps peak memory at
        # swarm scale (a doubling-only policy let the slab overshoot
        # the live entries ~3.5x on the million-peer run).
        if self._own_used + extra > len(self._own_data):
            if self._own_garbage * 4 >= self._own_used:
                self._compact_owners()
        elif self._own_garbage * 2 >= self._own_used:
            self._compact_owners()
        needed = self._own_used + extra
        size = len(self._own_data)
        if needed <= size:
            return
        while size < needed:
            size += (size >> 1) or 1
        try:
            # In-place realloc: for slab-sized blocks the allocator
            # remaps pages instead of copying, so growth does not hold
            # two slabs.  Grown slots arrive zeroed.
            self._own_data.resize(size, refcheck=True)
        except ValueError:  # an outstanding view pins the buffer
            data = np.zeros(size, dtype=np.int64)
            data[: self._own_used] = self._own_data[: self._own_used]
            self._own_data = data

    def _compact_owners(self) -> None:
        """Pack live rows to the front of the slab, in place.

        Rows move in ascending start order with zero slack, so every
        destination lies at or before its source and no live slot is
        overwritten before it has moved.  No second slab is allocated:
        compaction exists to cap peak memory at swarm scale, so it must
        not itself hold two slabs.  Packed rows end with ``cap == len``
        — the next append to one relocates it to the tail like any
        full row.
        """
        data = self._own_data
        starts = self._own_start
        lens = self._own_len
        caps = self._own_cap
        order = sorted(range(self.count), key=starts.__getitem__)
        cursor = 0
        for peer_id in order:
            count = lens[peer_id]
            if not count:
                starts[peer_id] = 0
                caps[peer_id] = 0
                continue
            start = starts[peer_id]
            if start != cursor:
                # Per-row .copy(): source and destination may overlap
                # after earlier moves, and the row is tiny.
                data[cursor : cursor + count] = data[
                    start : start + count
                ].copy()
            starts[peer_id] = cursor
            caps[peer_id] = count
            cursor += count
        self._own_used = cursor
        self._own_garbage = 0

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def census_counts(self, now: int, category_uppers: np.ndarray) -> np.ndarray:
        """Population count per age category over live normal peers.

        ``category_uppers`` holds the finite upper bounds of every
        category but the last; with half-open contiguous brackets,
        ``searchsorted(uppers, age, side="right")`` is exactly
        ``CategoryScheme.classify`` vectorised.
        """
        count = self.count
        mask = self._census_alive[:count]
        ages = now - self._join_np[:count][mask]
        indices = np.searchsorted(category_uppers, ages, side="right")
        return np.bincount(indices, minlength=len(category_uppers) + 1)
