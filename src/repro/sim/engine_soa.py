"""The ``abstract_soa`` fidelity backend: abstract semantics on columns.

This engine replays :class:`repro.sim.engine.Simulation` (the
``abstract`` backend) **draw for draw** on structure-of-arrays state
(:mod:`repro.sim.soa_state`): same named RNG streams, same calendar
event queue, same handler logic — but peers are parallel columns
instead of ``Peer`` objects and block placements are two ragged
adjacency tables instead of per-peer dict/set pairs.  Every metric a
run emits (``repair_rates``, ``loss_rates``, ``observer_totals``, the
full census series) is identical to the abstract backend's for the same
configuration and seed; ``tests/sim/test_soa_equivalence.py`` pins that
for every registered scenario preset.

Why it is faster (the layout that makes 10^6-peer populations fit in
memory, and sub-second ``paper`` default-scale runs):

* session toggles — the dominant event kind — are not dispatched one
  event at a time: the queue keeps each round's toggles in a dense
  per-round id bucket (:meth:`repro.sim.events.EventQueue.pop_round_batch`)
  and :meth:`_process_toggle_batch` runs the whole round as array
  passes — one CSR gather of every affected owner
  (:meth:`repro.sim.soa_state.StateTables.owners_concat`), one
  scatter-add on the ``visible`` column, one masked threshold compare,
  and one vectorised geometric draw for all reschedules
  (:func:`repro.sim.rng.geometric_from_uniforms`);
* the remaining scalar handlers (checks, deaths, repair bookkeeping)
  touch C-backed list slots instead of attribute-walking three heap
  objects per peer;
* the recruitment loop inlines the :class:`repro.sim.rng.BatchedDraws`
  buffer arithmetic (one bounds check + one index per draw, no method
  calls) while consuming the exact same draw sequence;
* the periodic census is one vectorised mask/searchsorted/bincount over
  the numpy mirror columns instead of a Python loop over every peer;
* per-peer ``SessionProcess``/lifetime/``Event`` objects are replaced
  by per-profile constants and bare ids in the queue's toggle buckets —
  the draws are issued in the same order, from the same streams.

Exact equivalence leans on two driver-level properties: the event queue
canonicalises each round's bucket before shuffling
(:meth:`repro.sim.events.EventQueue._activate`), so execution order
depends only on bucket *content*; and the batched toggle kernel is the
same six fixed passes in both backends
(:meth:`repro.sim.driver.SimulationDriver._process_toggle_batch`), so
the flips, checks and duration draws happen in the identical order.

What this backend does **not** support is the fidelity axis itself —
it is the abstract semantics, only faster.  Protocol-level runs keep
using :mod:`repro.sim.protocol`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.acceptance import (
    AcceptancePolicy,
    UniformAcceptancePolicy,
    acceptance_rule,
)
from ..churn.availability import session_duration_params
from ..core.adaptive import AdaptiveThreshold
from ..core.selection import Candidate, strategy_by_name
from .config import SimulationConfig
from .events import Event, EventKind, EventQueue
from .fidelity import FIDELITY_BACKENDS
from .metrics import MetricsCollector
from .rng import (
    GEOMETRIC_SCALAR_LIMIT,
    RngStreams,
    geometric_from_uniforms,
    geometric_from_uniforms_scalar,
    pool_chunk_size,
)
from .soa_state import StateTables


@FIDELITY_BACKENDS.register("abstract_soa")
class SoaSimulation:
    """Abstract-fidelity semantics executed over state tables."""

    fidelity = "abstract_soa"

    #: population cut-over for the vectorised toggle-kernel branch
    #: (class attribute so tests can force either branch on micro
    #: populations).
    _VECTOR_POPULATION = 50_000

    #: pool-size cut-over between the scalar and vectorised pool fills
    #: (both are draw-identical, so the cut is purely a speed knob).
    #: Measured at default scale: numpy dispatch overhead loses to the
    #: scalar loop for every ordinary pool size, so only swarm-scale
    #: populations (which take the vector kernel anyway) fill with
    #: arrays.
    _SCALAR_POOL_TARGET = 64

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.policy = config.policy()
        self.acceptance = acceptance_rule(config.acceptance_rule, config.age_cap)
        self.strategy = strategy_by_name(config.selection_strategy)
        self.rng = RngStreams(config.seed)
        self.queue = EventQueue(self.rng.ordering)
        self.metrics = MetricsCollector(config.categories, config.warmup_rounds)
        self.round = 0
        self.peers_created = 0
        self.deaths = 0
        self._profile_weights = [p.proportion for p in config.profiles]
        self._needs_oracle = bool(getattr(self.strategy, "needs_oracle", False))
        self._needs_availability = bool(
            getattr(self.strategy, "needs_availability", False)
        )
        self._fast_candidates = not (self._needs_oracle or self._needs_availability)
        if type(self.acceptance) is AcceptancePolicy:
            self._acceptance_kind = "age"
        elif type(self.acceptance) is UniformAcceptancePolicy:
            self._acceptance_kind = "uniform"
        else:
            self._acceptance_kind = "custom"
        self._repair_threshold = self.policy.repair_threshold
        self._n = self.policy.n
        self._k = self.policy.k
        self._selection_draws = self.rng.batched("selection")
        self._acceptance_draws = self.rng.batched("acceptance")
        # Per-profile session/lifetime constants, replacing the per-peer
        # SessionProcess / LifetimeDistribution objects.  The log1p(-p)
        # terms feed the batched duration draw (shared with the driver
        # via session_duration_params — NaN means "mean <= 1 round,
        # duration is 1 without consuming a draw"); ``online_p`` keeps
        # the spawn-time scalar geometric (None for the same clamp).
        self._session_params = []
        for profile in config.profiles:
            always_online, online_log1mp, offline_log1mp = session_duration_params(
                profile.availability, profile.mean_online_session
            )
            mean_online = float(profile.mean_online_session)
            online_p = 1.0 / mean_online if mean_online > 1.0 else None
            if profile.life_expectancy is None:
                lifetime = None
            else:
                low, high = profile.life_expectancy
                lifetime = (float(low), float(high))
            self._session_params.append(
                (always_online, online_p, lifetime, online_log1mp, offline_log1mp)
            )
        # Finite category upper bounds, for the vectorised census.
        categories = config.categories.categories
        self._census_uppers = np.array(
            [category.upper for category in categories[:-1]], dtype=np.int64
        )
        self._category_names = [category.name for category in categories]
        #: per-peer adaptive controllers (A5), or None when disabled.
        self._adaptive: Optional[Dict[int, AdaptiveThreshold]] = (
            {} if config.adaptive_thresholds else None
        )
        # Above this population the toggle kernel runs its vectorised
        # branch (CSR gather + scatter-add over numpy columns); below
        # it, per-round batches are a handful of peers and the scalar
        # branch over list columns is faster.  Both branches execute
        # the identical passes, so the cut is invisible to results.
        self._vector_kernel = config.population >= self._VECTOR_POPULATION
        # The online candidate index: a replica of the driver's
        # ``SampleableSet`` (same swap-pop updates, therefore the
        # identical item layout at every step — sampling must read the
        # same ids for the same draws).  Adaptive like the state
        # columns: a numpy array at swarm scale, where the pool fill
        # gathers whole candidate chunks in one fancy index; a plain
        # list below it, where scalar indexing dominates.
        capacity = config.population + len(config.observers) + 16
        if self._vector_kernel:
            self._online_items = np.zeros(capacity, dtype=np.int64)
        else:
            self._online_items = []
        self._online_size = 0
        self._online_pos: List[int] = []
        #: scratch column for the pool fill's skip-set (all False
        #: between fills; see ``_fill_pool_fast``).
        self._pool_marks = np.zeros(capacity, dtype=bool)
        self.state = StateTables(
            initial_capacity=capacity, vector_columns=self._vector_kernel
        )
        # Hot-path caches.  Events are frozen value objects, so reusing
        # one instance per (kind, peer) is invisible to the queue; the
        # bound methods skip RngStreams.__getattr__ on every draw; the
        # uptime fold only matters when a selection strategy actually
        # reads availability.
        self._geometric = self.rng.sessions.geometric
        self._session_draws = self.rng.batched("sessions")
        self._profile_choice = self.rng.profiles.choice
        self._lifetime_uniform = self.rng.lifetimes.uniform
        self._track_uptime = self._needs_availability
        self._join_event = Event(EventKind.JOIN)
        self._sample_event = Event(EventKind.SAMPLE)
        #: per-peer reusable check events, indexed by peer id (ids are
        #: dense).  Toggles need no Event objects at all: the queue's
        #: dense toggle lane files bare ids.
        self._check_events: List[Event] = []
        self._setup()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _setup(self) -> None:
        config = self.config
        state = self.state
        for _ in range(config.population):
            if config.staggered_join_rounds:
                join_round = int(
                    self.rng.placement.integers(config.staggered_join_rounds)
                )
            else:
                join_round = 0
            self.queue.schedule(join_round, self._join_event)
        for spec in config.observers:
            peer_id = state.add_observer(spec.fixed_age, spec.name)
            self._check_events.append(Event(EventKind.REPAIR_CHECK, peer_id))
            self._online_pos.append(-1)  # observers are never candidates
            if self._adaptive is not None:
                self._adaptive[peer_id] = AdaptiveThreshold(self.policy)
            self._schedule_check(peer_id, 0)
        self.queue.schedule(0, self._sample_event)

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _age(self, peer_id: int, now: int) -> float:
        state = self.state
        if peer_id < state.n_observers:
            return float(state.fixed_age[peer_id])
        return float(max(now - state.join[peer_id], 0))

    def _observer_name(self, peer_id: int) -> Optional[str]:
        state = self.state
        if peer_id < state.n_observers:
            return state.observer_name[peer_id]
        return None

    def _needs_repair(self, peer_id: int, visible: int) -> bool:
        adaptive = self._adaptive
        if adaptive is not None:
            return adaptive[peer_id].needs_repair(visible)
        return visible < self._repair_threshold

    def _online_add(self, peer_id: int) -> None:
        """Mirror of ``SampleableSet.add`` on the adaptive index."""
        if self._online_pos[peer_id] >= 0:
            return
        size = self._online_size
        items = self._online_items
        if self._vector_kernel:
            if size >= len(items):
                bigger = np.zeros(len(items) * 2, dtype=np.int64)
                bigger[:size] = items
                self._online_items = items = bigger
            items[size] = peer_id
        else:
            items.append(peer_id)
        self._online_pos[peer_id] = size
        self._online_size = size + 1

    def _online_discard(self, peer_id: int) -> None:
        """Mirror of ``SampleableSet.discard`` (swap with the tail)."""
        position = self._online_pos[peer_id]
        if position < 0:
            return
        size = self._online_size - 1
        items = self._online_items
        if self._vector_kernel:
            tail = int(items[size])
            if tail != peer_id:
                items[position] = tail
                self._online_pos[tail] = position
        else:
            tail = items.pop()
            if tail != peer_id:
                items[position] = tail
                self._online_pos[tail] = position
        self._online_pos[peer_id] = -1
        self._online_size = size

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def _schedule_check(self, peer_id: int, when: int) -> None:
        state = self.state
        scheduled = state.check_scheduled[peer_id]
        if scheduled is not None:
            if when >= scheduled:
                return
            self.queue.cancel(state.check_handle[peer_id])
        state.check_scheduled[peer_id] = when
        state.check_handle[peer_id] = self.queue.schedule(
            when, self._check_events[peer_id]
        )

    def _schedule_toggle(self, peer_id: int, now: int) -> None:
        """File a fresh peer's first toggle (spawn-time, scalar draw).

        Mirrors ``SimulationDriver._schedule_toggle``: the one scalar
        geometric left on the ``sessions`` generator, interleaving with
        the batched refills identically in both backends.
        """
        params = self._session_params[self.state.profile[peer_id]]
        if params[0]:
            return  # always online: no session process
        p = params[1]
        duration = 1 if p is None else int(self._geometric(p))
        self.queue.schedule_toggle(now + duration, peer_id)

    def _schedule_top_up(self, peer_id: int, now: int) -> None:
        interval = max(int(round(1.0 / self.config.proactive_rate)), 1)
        self.queue.schedule(now + interval, Event(EventKind.TOP_UP, peer_id))

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def _spawn_peer(self, now: int) -> int:
        config = self.config
        index = int(
            self._profile_choice(len(config.profiles), p=self._profile_weights)
        )
        lifetime_bounds = self._session_params[index][2]
        death_round: Optional[int] = None
        if lifetime_bounds is not None:
            lifetime = float(
                self._lifetime_uniform(lifetime_bounds[0], lifetime_bounds[1])
            )
            death_round = now + max(int(lifetime), 1)
        peer_id = self.state.add_peer(index, now, death_round)
        self._check_events.append(Event(EventKind.REPAIR_CHECK, peer_id))
        self._online_pos.append(-1)
        self.peers_created += 1
        self._online_add(peer_id)
        if self._adaptive is not None:
            self._adaptive[peer_id] = AdaptiveThreshold(self.policy)
        if death_round is not None:
            self.queue.schedule(death_round, Event(EventKind.DEATH, peer_id))
        self._schedule_toggle(peer_id, now)
        self._schedule_check(peer_id, now)
        if config.proactive_rate > 0:
            self._schedule_top_up(peer_id, now)
        return peer_id

    def _handle_death(self, now: int, peer_id: int) -> None:
        state = self.state
        if not state.alive[peer_id] or peer_id < state.n_observers:
            return
        self.deaths += 1
        was_online = state.online[peer_id]
        if self._track_uptime:
            if was_online:
                state.online_rounds[peer_id] += (
                    now - state.last_state_change[peer_id]
                )
            state.last_state_change[peer_id] = now
        self._online_discard(peer_id)
        state.mark_dead(peer_id)
        holders = state.holders
        quota_used = state.quota_used

        # The departed peer's own blocks disappear from its partners
        # (the dying peer is never an observer, so its links all counted
        # against their holders' quotas).
        row = holders[peer_id]
        if row:
            state.quota_np[row] -= 1
        for holder_id in row:
            state.owners_remove(holder_id, peer_id)
            quota_used[holder_id] -= 1
        row.clear()

        # Blocks it hosted for others vanish "immediately" (section 4.1):
        # detach every link first, then evaluate loss/threshold once per
        # owner against its final post-death counters.
        visible = state.visible
        affected = state.owners_clear(peer_id)
        if was_online:
            for owner_id in affected:
                holders[owner_id].remove(peer_id)
                visible[owner_id] -= 1
        else:
            for owner_id in affected:
                holders[owner_id].remove(peer_id)
        for owner_id in affected:
            self._after_block_loss(owner_id, now)

        # Immediate replacement by a fresh peer (section 4.1).
        self.queue.schedule(now, self._join_event)

    def _after_block_loss(self, owner_id: int, now: int) -> None:
        state = self.state
        if not state.placed[owner_id]:
            return
        if len(state.holders[owner_id]) < self._k:
            self._record_loss(owner_id, now)
            return
        if self._needs_repair(owner_id, state.visible[owner_id]):
            self._schedule_check(owner_id, now + 1)

    def _record_loss(self, owner_id: int, now: int) -> None:
        state = self.state
        self.metrics.record_loss(
            now, self._age(owner_id, now), self._observer_name(owner_id)
        )
        row = state.holders[owner_id]
        if owner_id < state.n_observers:
            for holder_id in row:
                state.owners_remove(holder_id, owner_id)
        else:
            quota_used = state.quota_used
            if row:
                state.quota_np[row] -= 1
            for holder_id in row:
                state.owners_remove(holder_id, owner_id)
                quota_used[holder_id] -= 1
        row.clear()
        state.visible[owner_id] = 0
        state.placed[owner_id] = 0
        state.fully_placed[owner_id] = 0
        # The user still has local data to back up again: a fresh
        # placement follows (next round at the earliest).
        self._schedule_check(owner_id, now + 1)

    # ------------------------------------------------------------------
    # Session toggles (the most frequent event kind, batched per round)
    # ------------------------------------------------------------------
    def _process_toggle_batch(self, now: int, peer_ids: np.ndarray) -> None:
        """Flip every session toggling this round in one batched pass.

        The same six fixed passes as
        ``SimulationDriver._process_toggle_batch`` — dead filter, state
        flips, visibility fan-out, owner threshold checks on final
        counts, self-service checks, bulk duration draw — but the
        fan-out is one CSR gather + scatter-add and the threshold scan
        one masked compare instead of per-owner Python loops.
        """
        state = self.state
        alive = state.alive
        online = state.online
        track = self._track_uptime
        last_offline = state.last_offline
        params = self._session_params
        profile = state.profile
        went_offline: List[int] = []
        went_online: List[int] = []
        # Duration lists are accumulated during the flip pass (same
        # ascending batch order as the driver's separate pass, so the
        # bulk draw below consumes identical uniforms); the draws
        # themselves still happen only after every flip has landed.
        need_ids: List[int] = []
        need_log: List[float] = []
        ones_ids: List[int] = []
        for peer_id in peer_ids.tolist():
            if not alive[peer_id]:
                continue
            p = params[profile[peer_id]]
            if online[peer_id]:
                if track:
                    state.online_rounds[peer_id] += (
                        now - state.last_state_change[peer_id]
                    )
                    state.last_state_change[peer_id] = now
                online[peer_id] = 0
                self._online_discard(peer_id)
                last_offline[peer_id] = now
                went_offline.append(peer_id)
                log1mp = p[4]
            else:
                if track:
                    state.last_state_change[peer_id] = now
                online[peer_id] = 1
                self._online_add(peer_id)
                went_online.append(peer_id)
                log1mp = p[3]
            if p[0]:
                continue
            if log1mp == log1mp:  # not NaN: a real geometric draw
                need_ids.append(peer_id)
                need_log.append(log1mp)
            else:
                ones_ids.append(peer_id)
        if not (went_offline or went_online):
            return
        # Visibility fan-out and owner threshold checks (against final
        # post-batch counts, ascending owner order).  Two executions of
        # the same pass: typical rounds toggle a handful of peers, where
        # scalar loops over the CSR rows beat array machinery; large
        # batches (million-peer populations) take one gather of every
        # touched owner plus one scatter-add per direction.
        visible = state.visible
        placed = state.placed
        adaptive = self._adaptive
        if not self._vector_kernel:
            owners_of = state.owners_of
            affected = set()
            add = affected.add
            if adaptive is None:
                # Collect only owners observed below threshold mid-pass.
                # Exact: increments run after every decrement, so an
                # owner's post-offline count is its round minimum — any
                # owner finishing below threshold crossed it here.
                threshold = self._repair_threshold
                for holder_id in went_offline:
                    for owner_id in owners_of[holder_id]:
                        count = visible[owner_id] - 1
                        visible[owner_id] = count
                        if count < threshold:
                            add(owner_id)
            else:
                # Adaptive thresholds are per-owner state; no cheap
                # mid-pass filter, so collect every touched owner.
                for holder_id in went_offline:
                    for owner_id in owners_of[holder_id]:
                        visible[owner_id] -= 1
                        add(owner_id)
            for holder_id in went_online:
                for owner_id in owners_of[holder_id]:
                    visible[owner_id] += 1
            if adaptive is None:
                for owner_id in sorted(affected):
                    if visible[owner_id] < threshold and placed[owner_id]:
                        self._schedule_check(owner_id, now + 1)
            else:
                for owner_id in sorted(affected):
                    if placed[owner_id] and adaptive[owner_id].needs_repair(
                        int(visible[owner_id])
                    ):
                        self._schedule_check(owner_id, now + 1)
        else:
            off_owners = state.owners_concat(went_offline)
            if len(off_owners):
                np.subtract.at(visible, off_owners, 1)
            on_owners = state.owners_concat(went_online)
            if len(on_owners):
                np.add.at(visible, on_owners, 1)
            if len(off_owners):
                owners = np.unique(off_owners)
                if adaptive is None:
                    hits = owners[
                        (placed[owners] != 0)
                        & (visible[owners] < self._repair_threshold)
                    ]
                    for owner_id in hits.tolist():
                        self._schedule_check(owner_id, now + 1)
                else:
                    for owner_id in owners.tolist():
                        if placed[owner_id] and adaptive[owner_id].needs_repair(
                            int(visible[owner_id])
                        ):
                            self._schedule_check(owner_id, now + 1)
        pending_check = state.pending_check
        placed = state.placed
        for peer_id in went_online:
            if pending_check[peer_id]:
                pending_check[peer_id] = 0
                self._schedule_check(peer_id, now)
            if placed[peer_id] and self._needs_repair(
                peer_id, int(visible[peer_id])
            ):
                self._schedule_check(peer_id, now)
        # Bulk reschedule: one uniform per non-degenerate duration, in
        # batch (ascending id) order, inverted through the shared
        # geometric kernel.  Means <= 1 round clamp to a single round
        # without consuming a draw, mirroring the scalar path.
        count = len(need_ids)
        if count:
            if count < GEOMETRIC_SCALAR_LIMIT:
                uniforms = self._session_draws.take(count)
                schedule_toggle = self.queue.schedule_toggle
                for peer_id, duration in zip(
                    need_ids, geometric_from_uniforms_scalar(uniforms, need_log)
                ):
                    schedule_toggle(now + duration, peer_id)
            else:
                uniforms = self._session_draws.take_array(count)
                durations = geometric_from_uniforms(uniforms, np.array(need_log))
                if not self._vector_kernel:
                    schedule_toggle = self.queue.schedule_toggle
                    for peer_id, duration in zip(need_ids, durations.tolist()):
                        schedule_toggle(now + duration, peer_id)
                else:
                    self.queue.schedule_toggle_batch(
                        now + durations, np.array(need_ids, dtype=np.int64)
                    )
        for peer_id in ones_ids:
            self.queue.schedule_toggle(now + 1, peer_id)

    # ------------------------------------------------------------------
    # Checks, placements and repairs
    # ------------------------------------------------------------------
    def _handle_check(self, now: int, peer_id: int) -> None:
        state = self.state
        state.check_scheduled[peer_id] = None
        state.check_handle[peer_id] = None
        if not state.alive[peer_id]:
            return
        if not state.online[peer_id]:
            state.pending_check[peer_id] = 1
            return
        if not state.placed[peer_id]:
            self._run_placement(peer_id, now)
            return
        visible = state.visible[peer_id]
        if len(state.holders[peer_id]) < self._k:
            self._record_loss(peer_id, now)
            return
        if not self._needs_repair(peer_id, visible):
            if not state.fully_placed[peer_id]:
                # The initial upload of n blocks has not completed yet
                # (section 3.2: one operation that may span rounds when
                # the network is young or partners are scarce).
                self._run_placement(peer_id, now)
            return
        if visible < self._k:
            # A repair fired but cannot gather k blocks to decode.
            adaptive = self._adaptive
            if adaptive is not None:
                adaptive[peer_id].on_blocked(now)
            self.metrics.record_blocked(
                now, self._age(peer_id, now), self._observer_name(peer_id)
            )
            self._schedule_check(peer_id, now + 1)
            return
        self._run_repair(peer_id, now)

    def _run_placement(self, owner_id: int, now: int) -> None:
        state = self.state
        row = state.holders[owner_id]
        needed = self._n - len(row)
        if needed > 0:
            self._recruit(owner_id, now, needed)
        if len(row) >= self._n:
            state.fully_placed[owner_id] = 1
        if state.visible[owner_id] >= self._repair_threshold and not state.placed[
            owner_id
        ]:
            state.placed[owner_id] = 1
            if owner_id >= state.n_observers:
                self.metrics.record_placement(now, self._age(owner_id, now))
        if not state.placed[owner_id] or not state.fully_placed[owner_id]:
            self._schedule_check(owner_id, now + 1)

    def _run_repair(self, owner_id: int, now: int) -> None:
        state = self.state
        row = state.holders[owner_id]
        grace = self.config.grace_rounds
        online = state.online
        last_offline = state.last_offline
        dropped = [
            holder_id
            for holder_id in row
            if not online[holder_id] and now - last_offline[holder_id] >= grace
        ]
        if dropped:
            quota_free = owner_id < state.n_observers
            quota_used = state.quota_used
            quota_np = state.quota_np
            for holder_id in dropped:
                row.remove(holder_id)
                state.owners_remove(holder_id, owner_id)
                if not quota_free:
                    quota_used[holder_id] -= 1
                    quota_np[holder_id] -= 1
        needed = self._n - len(row)
        recruited = self._recruit(owner_id, now, needed) if needed > 0 else 0
        adaptive = self._adaptive
        if recruited > 0:
            if adaptive is not None:
                adaptive[owner_id].on_repair(now)
            self.metrics.record_repair(
                now,
                self._age(owner_id, now),
                recruited,
                self._observer_name(owner_id),
            )
        else:
            if adaptive is not None:
                adaptive[owner_id].on_starved(now)
            self.metrics.record_starved()
        if len(row) >= self._n:
            state.fully_placed[owner_id] = 1
        if self._needs_repair(owner_id, state.visible[owner_id]):
            self._schedule_check(owner_id, now + 1)

    def _handle_top_up(self, now: int, peer_id: int) -> None:
        state = self.state
        if not state.alive[peer_id]:
            return
        if state.online[peer_id] and state.placed[peer_id]:
            if len(state.holders[peer_id]) < self._n:
                self._recruit(peer_id, now, 1)
        self._schedule_top_up(peer_id, now)

    # ------------------------------------------------------------------
    # Partner recruitment
    # ------------------------------------------------------------------
    def _recruit(self, owner_id: int, now: int, needed: int) -> int:
        chosen = self._select_candidates(owner_id, now, needed)
        state = self.state
        check_quota = owner_id >= state.n_observers
        quota = self.config.quota
        quota_used = state.quota_used
        row = state.holders[owner_id]
        added = 0
        for candidate_id in chosen:
            # Quota could have filled between sampling and selection.
            if check_quota and quota_used[candidate_id] >= quota:
                continue
            row.append(candidate_id)
            state.visible[owner_id] += 1
            state.owners_append(candidate_id, owner_id)
            if check_quota:
                quota_used[candidate_id] += 1
                state.quota_np[candidate_id] += 1
            added += 1
        return added

    def _select_candidates(self, owner_id: int, now: int, needed: int) -> List[int]:
        pool_target = int(math.ceil(self.config.pool_factor * needed))
        max_examined = int(self.config.max_examined_factor * needed) + 16
        if self._fast_candidates and self._acceptance_kind != "custom":
            # Small pools sample a few dozen candidates per chunk, where
            # the vectorised fill's array machinery costs more than
            # scalar evaluation; route them to its draw-identical
            # scalar twin.  Larger pools (hundreds of samples) amortise
            # the array dispatch and stay on the vector fill.
            if pool_target < self._SCALAR_POOL_TARGET and not self._vector_kernel:
                pool = self._fill_pool_small(
                    owner_id, now, pool_target, max_examined
                )
            else:
                pool = self._fill_pool_fast(
                    owner_id, now, pool_target, max_examined
                )
            return self.strategy.select_pairs(pool, needed, self.rng.selection)
        pool = self._fill_pool_generic(owner_id, now, pool_target, max_examined)
        if self._fast_candidates:
            return self.strategy.select_pairs(pool, needed, self.rng.selection)
        return self.strategy.select(pool, needed, self.rng.selection)

    def _fill_pool_fast(
        self, owner_id: int, now: int, target_size: int, max_examined: int
    ):
        """Swarm-scale recruitment: whole chunks as array operations.

        Replays ``SimulationDriver._fill_pool`` draw for draw — same
        chunk sizes from the same ``BatchedDraws`` buffers — but the
        dedup, the eligibility filters and the mutual-acceptance
        comparisons run once per chunk as numpy expressions instead of
        once per candidate as interpreted bytecode.  The acceptance
        expressions keep the driver's exact operation order, so the
        IEEE-754 results (and therefore the accepted set) are
        bit-identical.
        """
        state = self.state
        n_online = self._online_size
        accepted: List = []
        examined = 0
        if n_online:
            selection_take = self._selection_draws.take_array
            acceptance_take = self._acceptance_draws.take_array
            online_items = self._online_items
            if not self._vector_kernel:
                # The adaptive online index is a list at this scale;
                # one bulk conversion per fill keeps the chunk gathers
                # below as fancy indexes.
                online_items = np.array(online_items, dtype=np.int64)
            sample_budget = 8 * n_online + 64
            owner_age = self._age(owner_id, now)
            holder_row = state.holders[owner_id]
            check_quota = owner_id >= state.n_observers
            quota = self.config.quota
            join_np = state._join_np
            quota_np = state.quota_np
            by_age = self._acceptance_kind == "age"
            if by_age:
                cap = self.acceptance.age_cap
                s_owner = owner_age if owner_age < cap else cap
            # One reusable boolean column marks every id this fill must
            # skip — the owner, current holders, and every id already
            # sampled this fill (the driver's `seen` set).  A gather
            # against it replaces per-chunk np.isin sort-merges; the
            # marks are unset before returning so the column stays
            # all-False between fills.
            marks = self._pool_marks
            if len(marks) < state.count:
                grown = np.zeros(
                    max(len(marks) * 2, state.count), dtype=bool
                )
                grown[: len(marks)] = marks
                marks = self._pool_marks = grown
            marks[holder_row] = True
            marks[owner_id] = True
            chunks: List[np.ndarray] = []
            while (
                sample_budget > 0
                and examined < max_examined
                and len(accepted) < target_size
            ):
                needed = target_size - len(accepted)
                chunk_size = pool_chunk_size(needed)
                if chunk_size > sample_budget:
                    chunk_size = sample_budget
                sample_budget -= chunk_size
                uniforms = selection_take(chunk_size)
                indices = (uniforms * n_online).astype(np.intp)
                np.minimum(indices, n_online - 1, out=indices)
                cand = online_items[indices]
                chunks.append(cand)
                # First occurrence within the chunk: stable-sort the
                # ids, flag positions whose sorted neighbour differs,
                # scatter the flags back (np.unique minus its wrapper).
                order = cand.argsort(kind="stable")
                sorted_cand = cand[order]
                first_sorted = np.empty(len(cand), dtype=bool)
                first_sorted[0] = True
                np.not_equal(
                    sorted_cand[1:], sorted_cand[:-1], out=first_sorted[1:]
                )
                keep = np.empty(len(cand), dtype=bool)
                keep[order] = first_sorted
                keep &= ~marks[cand]
                if check_quota:
                    keep &= quota_np[cand] < quota
                marks[cand] = True
                fresh = cand[keep]
                ages = now - join_np[fresh]  # candidates are never observers
                if by_age:
                    # Inlined AcceptancePolicy: accept iff
                    # u < (L - s1 + s2 + 1)/L (min(p, 1) is free, u < 1).
                    # The scalar terms are pre-folded; all-integer
                    # arithmetic, so the driver's evaluation order gives
                    # bit-identical right-hand sides.
                    pairs = acceptance_take(2 * len(fresh))
                    s_cand = np.minimum(ages, cap)
                    ok = (pairs[0::2] * cap < s_cand + (cap - s_owner + 1)) & (
                        pairs[1::2] * cap < (cap + s_owner + 1) - s_cand
                    )
                    # Evaluation stops at the candidate that fills the
                    # pool (the driver breaks out of its scalar loop
                    # there), so `examined` keeps one-at-a-time
                    # semantics although the draws cover the chunk.
                    cum = np.cumsum(ok)
                    if len(cum) and cum[-1] >= needed:
                        cut = int(np.searchsorted(cum, needed)) + 1
                        examined += cut
                        ok = ok[:cut]
                        fresh = fresh[:cut]
                        ages = ages[:cut]
                    else:
                        examined += len(fresh)
                    fresh = fresh[ok]
                    ages = ages[ok]
                else:
                    if len(fresh) > needed:
                        fresh = fresh[:needed]
                        ages = ages[:needed]
                    examined += len(fresh)
                accepted.extend(zip(fresh.tolist(), ages.tolist()))
            marks[holder_row] = False
            marks[owner_id] = False
            for cand in chunks:
                marks[cand] = False
        self.metrics.record_pool(examined, len(accepted))
        return accepted

    def _fill_pool_small(
        self, owner_id: int, now: int, target_size: int, max_examined: int
    ):
        """Scalar twin of ``_fill_pool_fast`` for sub-vector populations.

        Identical draw consumption and acceptance arithmetic — same
        chunk sizes from the same ``BatchedDraws`` buffers, the same
        pre-folded integer acceptance bound — but evaluated candidate
        by candidate: at a few hundred samples per chunk the numpy
        dedup/filter/cumsum pipeline costs more than the loop it
        replaces.  Scalar-kernel mode only (``_online_items`` must be
        the list representation).
        """
        state = self.state
        n_online = self._online_size
        accepted: List = []
        examined = 0
        if n_online:
            selection_take = self._selection_draws.take
            acceptance_take = self._acceptance_draws.take
            online_items = self._online_items
            sample_budget = 8 * n_online + 64
            check_quota = owner_id >= state.n_observers
            quota = self.config.quota
            quota_used = state.quota_used
            join = state.join
            by_age = self._acceptance_kind == "age"
            if by_age:
                cap = self.acceptance.age_cap
                owner_age = self._age(owner_id, now)
                s_owner = owner_age if owner_age < cap else cap
            seen = set(state.holders[owner_id])
            seen.add(owner_id)
            last = n_online - 1
            while (
                sample_budget > 0
                and examined < max_examined
                and len(accepted) < target_size
            ):
                chunk_size = pool_chunk_size(target_size - len(accepted))
                if chunk_size > sample_budget:
                    chunk_size = sample_budget
                sample_budget -= chunk_size
                fresh: List[int] = []
                for u in selection_take(chunk_size):
                    index = int(u * n_online)
                    candidate_id = online_items[index if index < last else last]
                    if candidate_id in seen:
                        continue
                    seen.add(candidate_id)
                    if check_quota and quota_used[candidate_id] >= quota:
                        continue
                    fresh.append(candidate_id)
                if by_age:
                    pairs = acceptance_take(2 * len(fresh))
                    for position, candidate_id in enumerate(fresh):
                        if len(accepted) >= target_size:
                            break
                        examined += 1
                        age = now - join[candidate_id]
                        s_cand = age if age < cap else cap
                        if pairs[2 * position] * cap >= s_cand + (
                            cap - s_owner + 1
                        ):
                            continue
                        if pairs[2 * position + 1] * cap >= (
                            cap + s_owner + 1
                        ) - s_cand:
                            continue
                        accepted.append((candidate_id, age))
                else:
                    for candidate_id in fresh:
                        if len(accepted) >= target_size:
                            break
                        examined += 1
                        accepted.append((candidate_id, now - join[candidate_id]))
        self.metrics.record_pool(examined, len(accepted))
        return accepted

    def _fill_pool_generic(
        self, owner_id: int, now: int, target_size: int, max_examined: int
    ):
        """Cold-path pool fill for custom rules / data-needing strategies.

        A column-level mirror of ``SimulationDriver._fill_pool``: same
        chunk sizes, same draw consumption (two acceptance uniforms per
        examined candidate, unconditionally), scalar evaluation.
        """
        state = self.state
        selection = self._selection_draws
        acceptance = self._acceptance_draws
        seen = set()
        accepted = []
        examined = 0
        if self._online_size:
            sample_budget = 8 * self._online_size + 64
            owner_age = self._age(owner_id, now)
            holder_set = set(state.holders[owner_id])
            check_quota = owner_id >= state.n_observers
            quota = self.config.quota
            quota_used = state.quota_used
            join = state.join
            fast = self._fast_candidates
            rule = self._acceptance_kind
            if rule == "age":
                cap = self.acceptance.age_cap
                s_owner = owner_age if owner_age < cap else cap
            while (
                sample_budget > 0
                and examined < max_examined
                and len(accepted) < target_size
            ):
                chunk_size = pool_chunk_size(target_size - len(accepted))
                if chunk_size > sample_budget:
                    chunk_size = sample_budget
                sample_budget -= chunk_size
                if self._vector_kernel:
                    items = self._online_items[: self._online_size].tolist()
                else:
                    items = self._online_items
                n_items = len(items)
                chunk = []
                for u in selection.take(chunk_size):
                    index = int(u * n_items)
                    chunk.append(items[index if index < n_items else n_items - 1])
                fresh = []
                for candidate_id in chunk:
                    if candidate_id in seen:
                        continue
                    seen.add(candidate_id)
                    if candidate_id == owner_id or candidate_id in holder_set:
                        continue
                    if check_quota and quota_used[candidate_id] >= quota:
                        continue
                    fresh.append(candidate_id)
                pairs = (
                    acceptance.take(2 * len(fresh)) if rule != "uniform" else ()
                )
                for position, candidate_id in enumerate(fresh):
                    if len(accepted) >= target_size:
                        break
                    examined += 1
                    age = now - join[candidate_id]
                    if rule == "age":
                        s_cand = age if age < cap else cap
                        if pairs[2 * position] * cap >= cap - s_owner + s_cand + 1:
                            continue
                        if (
                            pairs[2 * position + 1] * cap
                            >= cap - s_cand + s_owner + 1
                        ):
                            continue
                    elif rule != "uniform":
                        decide = self.acceptance.decide
                        if not decide(owner_age, age, pairs[2 * position]):
                            continue
                        if not decide(age, owner_age, pairs[2 * position + 1]):
                            continue
                    if fast:
                        accepted.append((candidate_id, age))
                    else:
                        accepted.append(self._describe_candidate(candidate_id))
        del accepted[target_size:]
        self.metrics.record_pool(examined, len(accepted))
        return accepted

    def _describe_candidate(self, candidate_id: int) -> Candidate:
        state = self.state
        now = self.round
        availability = None
        remaining = None
        if self._needs_availability:
            span = now - state.join[candidate_id]
            if span > 0:
                online_rounds = state.online_rounds[candidate_id]
                if state.online[candidate_id]:
                    online_rounds += now - state.last_state_change[candidate_id]
                availability = min(online_rounds / span, 1.0)
        if self._needs_oracle:
            death_round = state.death[candidate_id]
            remaining = (
                math.inf
                if death_round is None
                else float(max(death_round - now, 0))
            )
        return Candidate(
            peer_id=candidate_id,
            age=self._age(candidate_id, now),
            availability=availability,
            true_remaining_lifetime=remaining,
        )

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def _handle_sample(self, now: int) -> None:
        counts = self.state.census_counts(now, self._census_uppers)
        population = dict(zip(self._category_names, counts.tolist()))
        self.metrics.sample_counts(now, population, self.config.sample_interval)
        upcoming = now + self.config.sample_interval
        if upcoming <= self.config.rounds:
            self.queue.schedule(upcoming, self._sample_event)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self):
        """Execute the configured number of rounds and return the result."""
        import time

        from .engine import SimulationResult

        started = time.perf_counter()
        queue = self.queue
        last_round = self.config.rounds
        toggle_batch = EventKind.TOGGLE_BATCH
        check = EventKind.REPAIR_CHECK
        join = EventKind.JOIN
        death = EventKind.DEATH
        sample = EventKind.SAMPLE
        top_up = EventKind.TOP_UP
        pop_until = queue.pop_until
        while True:
            item = pop_until(last_round)
            if item is None:
                break
            now, event = item
            self.round = now
            kind = event.kind
            if kind is toggle_batch:
                self._process_toggle_batch(now, queue.pop_round_batch())
            elif kind is check:
                self._handle_check(now, event.peer_id)
            elif kind is join:
                self._spawn_peer(now)
            elif kind is death:
                self._handle_death(now, event.peer_id)
            elif kind is sample:
                self._handle_sample(now)
            elif kind is top_up:
                self._handle_top_up(now, event.peer_id)
            else:  # pragma: no cover - no other kinds are ever scheduled
                raise ValueError(f"unexpected event kind {kind}")
        elapsed = time.perf_counter() - started
        return SimulationResult(
            config=self.config,
            metrics=self.metrics,
            final_round=self.config.rounds,
            wall_clock_seconds=elapsed,
            peers_created=self.peers_created,
            deaths=self.deaths,
        )

    # ------------------------------------------------------------------
    # Consistency audit (mirrors SimulationDriver.audit on the tables)
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Recompute all incremental columns from scratch; return violations."""
        problems: List[str] = []
        state = self.state
        n_observers = state.n_observers
        quota = self.config.quota
        for peer_id in range(state.count):
            if not state.alive[peer_id]:
                if state.holders[peer_id]:
                    problems.append(f"peer {peer_id}: dead but still owns links")
                if len(state.owners_row(peer_id)):
                    problems.append(f"peer {peer_id}: dead but still hosts links")
                continue
            row = state.holders[peer_id]
            if len(set(row)) != len(row):
                problems.append(f"peer {peer_id}: duplicate holders in row")
            visible = 0
            for holder_id in row:
                if not state.alive[holder_id]:
                    problems.append(
                        f"peer {peer_id}: holder {holder_id} is dead"
                    )
                    continue
                if state.online[holder_id]:
                    visible += 1
                if peer_id not in list(state.owners_row(holder_id)):
                    problems.append(
                        f"peer {peer_id}: holder {holder_id} misses back-link"
                    )
            if visible != state.visible[peer_id]:
                problems.append(
                    f"peer {peer_id}: visible counter {state.visible[peer_id]} "
                    f"!= recount {visible}"
                )
            own_row = list(state.owners_row(peer_id))
            if len(set(own_row)) != len(own_row):
                problems.append(f"peer {peer_id}: duplicate owners in row")
            quota_links = 0
            for owner_id in own_row:
                if not state.alive[owner_id]:
                    problems.append(
                        f"peer {peer_id}: hosts for dead owner {owner_id}"
                    )
                    continue
                if peer_id not in state.holders[owner_id]:
                    problems.append(
                        f"peer {peer_id}: hosts for {owner_id} without "
                        "forward link"
                    )
                if owner_id >= n_observers:
                    quota_links += 1
            if quota_links != state.quota_used[peer_id]:
                problems.append(
                    f"peer {peer_id}: quota counter {state.quota_used[peer_id]} "
                    f"!= recount {quota_links}"
                )
            if int(state.quota_np[peer_id]) != state.quota_used[peer_id]:
                problems.append(
                    f"peer {peer_id}: quota mirror {int(state.quota_np[peer_id])} "
                    f"!= column {state.quota_used[peer_id]}"
                )
            if quota_links > quota:
                problems.append(
                    f"peer {peer_id}: quota exceeded ({quota_links} > {quota})"
                )
            online_indexed = self._online_pos[peer_id] >= 0
            should_index = bool(
                state.online[peer_id] and peer_id >= n_observers
            )
            if online_indexed != should_index:
                problems.append(
                    f"peer {peer_id}: online index mismatch "
                    f"(indexed={online_indexed}, online={should_index})"
                )
        return problems
