"""Wire format of the sweep service: JSON payloads -> experiment specs.

The service (:mod:`repro.service`) accepts sweep submissions as plain
JSON documents so any HTTP client can drive it.  This module is the
single point where those documents are validated and turned into the
same :class:`~repro.exec.spec.ExperimentSpec` objects the CLI builds —
which is what makes the service's results byte-identical to a local
``repro-experiments run``: both sides share one construction path.

A payload selects a starting point (exactly one of ``scenario`` — a
registered preset name — or ``config`` — an explicit
``SimulationConfig.to_dict()`` document), then applies the same resize
and override pipeline as the CLI's ``--scenario`` flags::

    {
        "scenario": "paper",
        "scale": "quick",
        "seeds": [0, 1],
        "fidelity": "abstract",
        "overrides": {"quota": 64}
    }

Validation failures raise :class:`SpecValidationError` with an
actionable message (the offending field, the reason, and the accepted
choices where a registry is involved) so API clients can fix their
payload without reading server logs.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..sim.config import SimulationConfig
from .builder import Scenario
from .presets import scenario_by_name

#: Every key a submission may carry, with a one-line meaning (the
#: validation error quotes this table, so unknown-key mistakes are
#: self-documenting on the wire).
ALLOWED_KEYS: Dict[str, str] = {
    "scenario": "registered scenario preset name (exclusive with 'config')",
    "config": "explicit SimulationConfig.to_dict() document "
              "(exclusive with 'scenario')",
    "name": "label for progress display and job listings",
    "seeds": "replication seeds, a non-empty list of integers",
    "scale": "experiment scale preset resizing population/rounds "
             "('quick', 'default' or 'full')",
    "population": "peer population override (positive integer)",
    "rounds": "simulated rounds override (positive integer)",
    "fidelity": "simulation backend (registered fidelity name)",
    "impairment": "netem-style link condition (registered profile name)",
    "link": "access-link profile (registered name)",
    "selection": "partner-selection strategy (registered name)",
    "churn": "churn mix (registered name)",
    "threshold": "repair threshold k' (positive integer)",
    "quota": "per-peer hosting quota (positive integer)",
    "overrides": "escape hatch: arbitrary SimulationConfig field overrides",
}


class SpecValidationError(ValueError):
    """A submission payload that cannot become an experiment spec."""


def _fail(field: str, reason: str) -> "SpecValidationError":
    return SpecValidationError(f"invalid submission field {field!r}: {reason}")


def _positive_int(payload: Dict[str, Any], field: str) -> int:
    value = payload[field]
    # bool is an int subclass; "population": true must not pass.
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise _fail(field, f"expected a positive integer, got {value!r}")
    return value


def _seeds(payload: Dict[str, Any]) -> Tuple[int, ...]:
    value = payload.get("seeds", [0])
    if not isinstance(value, (list, tuple)) or not value:
        raise _fail("seeds", f"expected a non-empty list of integers, got {value!r}")
    for seed in value:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise _fail("seeds", f"expected integers, got {seed!r}")
    return tuple(value)


def _base_scenario(payload: Dict[str, Any]) -> Scenario:
    has_scenario = "scenario" in payload
    has_config = "config" in payload
    if has_scenario == has_config:
        raise SpecValidationError(
            "a submission selects its starting point with exactly one of "
            "'scenario' (a registered preset name) or 'config' (an "
            "explicit configuration document)"
        )
    if has_scenario:
        name = payload["scenario"]
        if not isinstance(name, str):
            raise _fail("scenario", f"expected a preset name, got {name!r}")
        try:
            return scenario_by_name(name)
        except (KeyError, ValueError) as error:
            raise _fail("scenario", str(error)) from None
    document = payload["config"]
    if not isinstance(document, dict):
        raise _fail("config", f"expected a configuration object, got {document!r}")
    try:
        config = SimulationConfig.from_dict(document)
    except (KeyError, TypeError, ValueError) as error:
        raise _fail("config", str(error)) from None
    return Scenario.from_config(config, name="wire")


def _apply_knobs(scenario: Scenario, payload: Dict[str, Any]) -> Scenario:
    """The CLI's resize/override pipeline, field by field.

    Order matches ``repro-experiments run``: the coarse ``scale`` resize
    first, then explicit population/rounds, then component swaps, then
    the ``overrides`` escape hatch — so a payload and the equivalent CLI
    invocation build the exact same configuration (and therefore the
    same cache digests).
    """
    if "scale" in payload:
        from ..experiments.common import scale_by_name

        try:
            scale = scale_by_name(payload["scale"])
        except (TypeError, ValueError) as error:
            raise _fail("scale", str(error)) from None
        scenario = scenario.with_population(scale.population).with_rounds(
            scale.rounds
        )
    if "population" in payload:
        scenario = scenario.with_population(_positive_int(payload, "population"))
    if "rounds" in payload:
        scenario = scenario.with_rounds(_positive_int(payload, "rounds"))
    registry_knobs = (
        ("fidelity", "with_fidelity"),
        ("impairment", "with_impairment"),
        ("link", "with_link"),
        ("selection", "with_selection"),
        ("churn", "with_churn"),
    )
    for field, method in registry_knobs:
        if field not in payload:
            continue
        value = payload[field]
        if not isinstance(value, str):
            raise _fail(field, f"expected a registered name, got {value!r}")
        try:
            scenario = getattr(scenario, method)(value)
        except (KeyError, ValueError) as error:
            raise _fail(field, str(error)) from None
    if "threshold" in payload:
        scenario = scenario.with_threshold(_positive_int(payload, "threshold"))
    if "quota" in payload:
        scenario = scenario.with_quota(_positive_int(payload, "quota"))
    if "overrides" in payload:
        overrides = payload["overrides"]
        if not isinstance(overrides, dict):
            raise _fail("overrides",
                        f"expected an object of config fields, got {overrides!r}")
        try:
            scenario = scenario.override(**overrides)
        except (TypeError, ValueError) as error:
            raise _fail("overrides", str(error)) from None
    return scenario


def spec_from_payload(payload: Any) -> "ExperimentSpec":
    """Validate a submission document and build its experiment spec.

    Raises :class:`SpecValidationError` on anything malformed; the
    message always names the offending field and, for registry-backed
    fields, lists the accepted choices (the registries' own
    did-you-mean messages pass through).
    """
    # Imported lazily, exactly like Scenario.spec(): repro.exec resolves
    # the package version during import, which is only bound after the
    # top-level scenario imports finish.
    from ..exec.spec import ExperimentSpec

    if not isinstance(payload, dict):
        raise SpecValidationError(
            f"a submission is a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(ALLOWED_KEYS))
    if unknown:
        allowed = "\n".join(
            f"  {key}: {meaning}" for key, meaning in ALLOWED_KEYS.items()
        )
        raise SpecValidationError(
            f"unknown submission field(s) {', '.join(map(repr, unknown))}; "
            f"allowed fields:\n{allowed}"
        )
    label = payload.get("name", payload.get("scenario", "custom"))
    if not isinstance(label, str) or not label:
        raise _fail("name", f"expected a non-empty string, got {label!r}")
    seeds = _seeds(payload)
    scenario = _apply_knobs(_base_scenario(payload), payload)
    try:
        config = scenario.build()
        # Force validation now (frozen dataclasses validate in
        # __post_init__, but override() already constructed it; the
        # seed application below re-runs replace()).
        config.with_seed(seeds[0])
    except (TypeError, ValueError) as error:
        raise SpecValidationError(
            f"submission builds an invalid configuration: {error}"
        ) from None
    return ExperimentSpec(
        name=f"service:{label}",
        build=lambda params: config,
        seeds=seeds,
    )


def scenario_payload(scenario: str, **fields: Any) -> Dict[str, Any]:
    """Client-side helper: a well-formed submission document.

    Keyword arguments are payload fields (``scale="quick"``,
    ``seeds=[0, 1]``, ``overrides={...}``); they are validated by the
    same :func:`spec_from_payload` the server runs, so a payload that
    leaves this function is one the server accepts.
    """
    payload: Dict[str, Any] = {"scenario": scenario}
    payload.update(fields)
    spec_from_payload(payload)  # fail client-side, with the same message
    return payload
