"""Scenario composition: the builder facade and the shipped presets.

This package is the public construction API of the simulator: a
chainable :class:`Scenario` builder over the component registries
(selection strategies, acceptance rules, churn mixes, codec backends)
plus a registry of ready-to-run workload presets
(``flash_crowd``, ``diurnal``, ``correlated_outage``,
``heterogeneous_quota``, ``slow_decay``, ``paper``).
"""

from .builder import Scenario
from .presets import (
    PRESET_OBSERVERS,
    SCENARIOS,
    available_scenarios,
    register_scenario,
    scenario_by_name,
)
from .wire import (
    ALLOWED_KEYS,
    SpecValidationError,
    scenario_payload,
    spec_from_payload,
)

__all__ = [
    "ALLOWED_KEYS",
    "PRESET_OBSERVERS",
    "SCENARIOS",
    "Scenario",
    "SpecValidationError",
    "available_scenarios",
    "register_scenario",
    "scenario_by_name",
    "scenario_payload",
    "spec_from_payload",
]
