"""Shipped scenario presets: new workloads beyond the paper's evaluation.

Each preset is a ready-to-run :class:`~repro.scenarios.builder.Scenario`
registered under a stable name, runnable end to end with::

    repro-experiments run --scenario flash_crowd

and composable further (scenarios are immutable, so deriving from a
preset never mutates the registry)::

    from repro.scenarios import scenario_by_name

    config = scenario_by_name("diurnal").with_selection("oracle").build()

The presets run the laptop-scale (k=16, n=32) code over a few thousand
one-hour rounds — large enough for the churn dynamics to show, small
enough to finish in seconds to low minutes.
"""

from __future__ import annotations

from typing import Tuple

from ..registry import Registry
from ..sim.config import ObserverSpec
from .builder import Scenario

#: Registry of shipped (and user-registered) scenario presets.
SCENARIOS: Registry[Scenario] = Registry("scenario")


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register a scenario preset under its own name."""
    return SCENARIOS.register(scenario.name, scenario, replace=replace)


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario preset (immutability makes sharing safe)."""
    return SCENARIOS.get(name)


def available_scenarios() -> Tuple[str, ...]:
    """Names of all registered scenario presets."""
    return tuple(SCENARIOS.names())


#: Small fixed-age observers matched to the presets' few-thousand-round
#: horizon (the paper's 90-day Elder would outlive most runs).
PRESET_OBSERVERS: Tuple[ObserverSpec, ...] = (
    ObserverSpec("Anchor", 1440),
    ObserverSpec("Settler", 240),
    ObserverSpec("Arrival", 1),
)


def _base(population: int = 400, rounds: int = 4000) -> Scenario:
    return Scenario.scaled(population=population, rounds=rounds)


register_scenario(
    _base()
    .named(
        "paper",
        "the paper's workload at laptop scale (figures 1-4 baseline)",
    )
    .with_churn("paper")
)

register_scenario(
    _base(population=500, rounds=3000)
    .named(
        "flash_crowd",
        "a thin durable core swamped by short-lived newcomers arriving at once",
    )
    .with_churn("flash_crowd")
    .with_staggered_join(0)
)

register_scenario(
    _base()
    .named(
        "diurnal",
        "day/night duty cycles: ~12h-on/12h-off majority over an always-on fleet",
    )
    .with_churn("diurnal")
    .observers(PRESET_OBSERVERS)
)

register_scenario(
    _base()
    .named(
        "correlated_outage",
        "multi-day dark periods; a grace period keeps repairs from thrashing",
    )
    .with_churn("correlated_outage")
    .with_grace(24)
)

register_scenario(
    _base(population=500)
    .named(
        "heterogeneous_quota",
        "donor minority carrying consumers under tight per-peer quotas",
    )
    .with_churn("heterogeneous")
    .with_quota(36)  # 1.125 x n instead of the default 1.5 x n
)

register_scenario(
    _base(rounds=6000)
    .named(
        "slow_decay",
        "an old stable population eroding over months (low-churn regime)",
    )
    .with_churn("slow_decay")
    .with_selection("availability")
)

register_scenario(
    _base(population=1_000_000, rounds=240)
    .named(
        "million_peers",
        "10^6 peers on the structure-of-arrays backend: a ten-day "
        "horizon at swarm scale, far beyond what the object-graph "
        "engine fits in memory",
    )
    .with_churn("paper")
    .with_fidelity("abstract_soa")
    .with_staggered_join(120)
)

# ----------------------------------------------------------------------
# Protocol-fidelity presets (PR 5): the same engine surface, but repairs
# execute as real store/fetch exchanges with bandwidth-gated completion.
# ----------------------------------------------------------------------

register_scenario(
    _base(population=300, rounds=3000)
    .named(
        "constrained_uplink",
        "protocol fidelity on the paper's DSL uplink with 512 MB archives: "
        "repairs queue for the link and completion lags detection",
    )
    .with_churn("paper")
    .with_fidelity("protocol")
    .with_link("paper-dsl")
    .with_archive_bytes(512 * 1024 * 1024)
)

register_scenario(
    _base(population=300, rounds=3000)
    .named(
        "unfair_freeriders",
        "protocol fidelity with the fairness caps enforced (pairwise "
        "ledger + global policy): peers that host little get their "
        "repairs refused",
    )
    .with_churn("flash_crowd")
    .with_fidelity("protocol")
    .with_fairness(1.0)
)

# ----------------------------------------------------------------------
# Impaired-network presets (PR 8): the protocol stack on lossy and
# high-latency links, with the timeout/retry/backoff machinery active.
# ----------------------------------------------------------------------

register_scenario(
    _base(population=300, rounds=3000)
    .named(
        "lossy_dsl",
        "protocol fidelity on the paper's DSL link losing 10% of "
        "exchanges: repairs retry with backoff and durability degrades "
        "measurably",
    )
    .with_churn("paper")
    .with_fidelity("protocol")
    .with_link("paper-dsl")
    .with_impairment("loss10")
)

register_scenario(
    _base(population=300, rounds=3000)
    .named(
        "flaky_satellite",
        "geostationary-grade latency with bursty Gilbert-Elliott loss "
        "windows: the retry budget is raised because outage bursts "
        "outlast a single backoff cycle",
    )
    .with_churn("correlated_outage")
    .with_grace(24)
    .with_fidelity("protocol")
    .with_impairment("satellite_burst", retry_budget=5, retry_backoff_cap=16)
)
