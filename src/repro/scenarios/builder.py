"""The ``Scenario`` builder: chainable construction of arbitrary workloads.

A :class:`Scenario` wraps a :class:`~repro.sim.config.SimulationConfig`
and exposes one chainable method per extension point, resolving names
through the component registries::

    from repro.scenarios import Scenario
    from repro.sim.config import PAPER_OBSERVERS

    config = (
        Scenario.paper()
        .with_churn("flash_crowd")
        .with_selection("availability")
        .observers(PAPER_OBSERVERS)
        .build()
    )

Every method returns a **new** scenario (the builder is immutable), so
presets can be shared safely: deriving from a registry preset never
mutates it.  ``build()`` returns a plain ``SimulationConfig`` — scenarios
add no new config fields, which keeps ``to_dict`` serialization and the
sweep executor's cache keys byte-identical with earlier releases.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple, Union

from ..churn.profiles import CHURN_MIXES, Profile, validate_mix
from ..core.acceptance import ACCEPTANCE_RULES
from ..core.policy import scaled_threshold
from ..core.selection import SELECTION_STRATEGIES
from ..net.bandwidth import LINK_PROFILES
from ..net.impairment import IMPAIRMENT_PROFILES
from ..sim.config import ObserverSpec, SimulationConfig

#: Either a registered mix name or an explicit profile tuple.
ChurnMix = Union[str, Sequence[Profile]]


class Scenario:
    """An immutable, chainable builder of simulation workloads."""

    __slots__ = ("name", "description", "_config")

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        name: str = "custom",
        description: str = "",
    ):
        self.name = name
        self.description = description
        self._config = config if config is not None else SimulationConfig()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "Scenario":
        """Start from the paper's exact full-scale setting (section 4.1)."""
        return cls(SimulationConfig.paper(**overrides), name="paper")

    @classmethod
    def scaled(cls, **overrides) -> "Scenario":
        """Start from the laptop-scale setting preserving the paper's ratios."""
        return cls(SimulationConfig.scaled(**overrides), name="scaled")

    @classmethod
    def from_config(cls, config: SimulationConfig, name: str = "custom") -> "Scenario":
        """Wrap an existing configuration."""
        return cls(config, name=name)

    # ------------------------------------------------------------------
    # Chainable construction
    # ------------------------------------------------------------------
    def _derive(self, **changes) -> "Scenario":
        scenario = Scenario(
            replace(self._config, **changes),
            name=self.name,
            description=self.description,
        )
        return scenario

    def named(self, name: str, description: str = "") -> "Scenario":
        """Set the scenario's display name (and optional description)."""
        scenario = Scenario(self._config, name=name,
                            description=description or self.description)
        return scenario

    def with_churn(self, mix: ChurnMix) -> "Scenario":
        """Swap the churn mix: a registered name or an explicit profile tuple."""
        if isinstance(mix, str):
            profiles = CHURN_MIXES.get(mix)
        else:
            profiles = tuple(mix)
            validate_mix(profiles)
        return self._derive(profiles=profiles)

    def with_selection(self, strategy: str) -> "Scenario":
        """Swap the partner-selection strategy (registered name)."""
        SELECTION_STRATEGIES.check(strategy)
        return self._derive(selection_strategy=strategy)

    def with_acceptance(self, rule: str) -> "Scenario":
        """Swap the acceptance rule (registered name)."""
        ACCEPTANCE_RULES.check(rule)
        return self._derive(acceptance_rule=rule)

    def with_code(
        self,
        data_blocks: int,
        parity_blocks: int,
        repair_threshold: Optional[int] = None,
    ) -> "Scenario":
        """Swap the erasure-code width, rescaling the repair threshold.

        When ``repair_threshold`` is omitted, the current threshold's
        slack fraction ``(k' - k)/(n - k)`` is preserved across the new
        ``(k, n)`` — the same mapping the experiment scales use.  A
        parity-free side (source or target) has no slack range, so its
        only consistent threshold is ``k' = k``.
        """
        config = self._config
        if repair_threshold is None:
            if parity_blocks == 0 or config.total_blocks == config.data_blocks:
                repair_threshold = data_blocks
            else:
                repair_threshold = scaled_threshold(
                    config.repair_threshold,
                    paper_k=config.data_blocks,
                    paper_n=config.total_blocks,
                    target_k=data_blocks,
                    target_n=data_blocks + parity_blocks,
                )
        return self._derive(
            data_blocks=data_blocks,
            parity_blocks=parity_blocks,
            repair_threshold=repair_threshold,
        )

    def with_threshold(self, repair_threshold: int) -> "Scenario":
        """Set the repair threshold ``k'``."""
        return self._derive(repair_threshold=repair_threshold)

    def with_population(self, population: int) -> "Scenario":
        """Set the peer population."""
        return self._derive(population=population)

    def with_rounds(self, rounds: int) -> "Scenario":
        """Set the simulated horizon, in rounds."""
        return self._derive(rounds=rounds)

    def with_quota(self, quota: int) -> "Scenario":
        """Set the per-peer hosting quota."""
        return self._derive(quota=quota)

    def with_seed(self, seed: Optional[int]) -> "Scenario":
        """Set the replication seed."""
        return self._derive(seed=seed)

    def with_grace(self, grace_rounds: int) -> "Scenario":
        """Retain invisible holders for ``grace_rounds`` before replacing."""
        return self._derive(grace_rounds=grace_rounds)

    def with_staggered_join(self, staggered_join_rounds: int) -> "Scenario":
        """Spread initial joins over a window (0 = everyone at round 0)."""
        return self._derive(staggered_join_rounds=staggered_join_rounds)

    def with_proactive(self, proactive_rate: float) -> "Scenario":
        """Enable proactive replication at ``proactive_rate`` blocks/round."""
        return self._derive(proactive_rate=proactive_rate)

    def with_adaptive_thresholds(self, enabled: bool = True) -> "Scenario":
        """Toggle per-peer adaptive repair thresholds (ablation A5)."""
        return self._derive(adaptive_thresholds=enabled)

    def with_fidelity(self, fidelity: str) -> "Scenario":
        """Swap the simulation backend (registered fidelity name).

        ``"abstract"`` is the fast counter-flipping engine behind the
        figures; ``"protocol"`` executes repairs as real store/fetch
        exchanges gated by the bandwidth model.  Any scenario runs at
        any fidelity — the churn trajectory is shared.
        """
        from ..sim.fidelity import check_fidelity

        check_fidelity(fidelity)
        return self._derive(fidelity=fidelity)

    def with_link(self, link_profile: str) -> "Scenario":
        """Set the access-link profile gating protocol-mode transfers."""
        LINK_PROFILES.check(link_profile)
        return self._derive(link_profile=link_profile)

    def with_archive_bytes(self, archive_bytes: int) -> "Scenario":
        """Set the per-archive size the protocol cost model prices."""
        return self._derive(archive_bytes=archive_bytes)

    def with_fairness(self, fairness_factor: Optional[float]) -> "Scenario":
        """Enable (or disable, with ``None``) protocol-mode fairness caps."""
        return self._derive(fairness_factor=fairness_factor)

    def with_impairment(
        self,
        impairment_profile: str,
        retry_budget: Optional[int] = None,
        retry_backoff_base: Optional[int] = None,
        retry_backoff_cap: Optional[int] = None,
    ) -> "Scenario":
        """Apply a netem-style link condition to protocol-mode exchanges.

        ``impairment_profile`` is a registered
        :data:`~repro.net.impairment.IMPAIRMENT_PROFILES` name; the
        optional arguments tune how hard the protocol fights the
        impaired link (retry attempts per exchange and the exponential
        backoff window, in rounds).
        """
        IMPAIRMENT_PROFILES.check(impairment_profile)
        changes = {"impairment_profile": impairment_profile}
        if retry_budget is not None:
            changes["retry_budget"] = retry_budget
        if retry_backoff_base is not None:
            changes["retry_backoff_base"] = retry_backoff_base
        if retry_backoff_cap is not None:
            changes["retry_backoff_cap"] = retry_backoff_cap
        return self._derive(**changes)

    def observers(self, specs: Sequence[ObserverSpec]) -> "Scenario":
        """Attach fixed-age observer peers (paper section 4.2.2)."""
        return self._derive(observers=tuple(specs))

    def override(self, **fields) -> "Scenario":
        """Escape hatch: replace arbitrary ``SimulationConfig`` fields."""
        return self._derive(**fields)

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------
    def build(self) -> SimulationConfig:
        """The finished (validated) configuration."""
        return self._config

    def run(self):
        """Build and run the scenario once, returning the simulation result."""
        from ..sim.engine import run_simulation

        return run_simulation(self._config)

    def spec(self, seeds: Tuple[int, ...] = (0,), reduce=None):
        """This scenario as a gridless :class:`~repro.exec.spec.ExperimentSpec`.

        The executor applies ``.with_seed(seed)`` per replication, so
        the scenario runs through the same cached machinery as every
        figure sweep — including any execution backend (``serial``,
        ``process``, or ``distributed`` across hosts sharing a cache
        directory; ``repro-experiments run --scenario NAME --backend
        distributed`` is this method plus a ``SweepExecutor``).
        """
        from ..exec.spec import ExperimentSpec

        config = self._config
        return ExperimentSpec(
            name=f"scenario-{self.name}",
            build=lambda params: config,
            seeds=tuple(seeds),
            reduce=reduce,
        )

    def describe(self) -> str:
        """One human-readable line per headline knob."""
        config = self._config
        mix = "+".join(profile.name for profile in config.profiles)
        lines = [
            f"scenario {self.name}",
            f"  population={config.population} rounds={config.rounds}",
            f"  code k={config.data_blocks} n={config.total_blocks} "
            f"k'={config.repair_threshold} quota={config.quota}",
            f"  selection={config.selection_strategy} "
            f"acceptance={config.acceptance_rule}",
            f"  churn mix: {mix}",
        ]
        if self.description:
            lines.insert(1, f"  {self.description}")
        if config.fidelity != "abstract":
            fairness = (
                f" fairness={config.fairness_factor:g}"
                if config.fairness_factor is not None
                else ""
            )
            impairment = (
                f" impairment={config.impairment_profile}"
                f" retries={config.retry_budget}"
                if config.impairment_profile != "clean"
                else ""
            )
            lines.append(
                f"  fidelity={config.fidelity} link={config.link_profile} "
                f"archive={config.archive_bytes // (1024 * 1024)}MB"
                f"{fairness}{impairment}"
            )
        if config.observers:
            names = ", ".join(spec.name for spec in config.observers)
            lines.append(f"  observers: {names}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Scenario(name={self.name!r}, "
            f"population={self._config.population}, "
            f"rounds={self._config.rounds}, "
            f"selection={self._config.selection_strategy!r})"
        )
