"""The paper's acceptation function (section 3.2).

Peer ``p1`` decides whether to start a partnership with peer ``p2`` with
probability::

    f(p1, p2) = min( (L - (min(s1, L) - min(s2, L)) + 1) / L , 1 )

where ``s1`` and ``s2`` are stability estimates — the number of rounds
since each peer first connected (its *age*) — and ``L`` caps the age that
matters (90 days in the paper).

Properties, all tested in ``tests/core/test_acceptance.py``:

* the result is never zero; its minimum is ``1 / L`` (newcomers always
  retain a small chance);
* the result is exactly one whenever ``p2`` is at least as old as ``p1``;
* the function is asymmetric below the cap (an old peer rarely accepts a
  newcomer, a newcomer always accepts an old peer).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..churn.profiles import ROUNDS_PER_DAY
from ..registry import Registry

#: The paper's stability cap: 90 days, in one-hour rounds.
DEFAULT_AGE_CAP = 90 * ROUNDS_PER_DAY

#: Registry of acceptance rules.  A rule is registered as a factory
#: accepting an ``age_cap`` keyword and returning an object with the
#: :class:`AcceptancePolicy` interface (``probability`` / ``decide`` /
#: ``mutual_probability``); ``SimulationConfig.acceptance_rule`` names
#: are resolved here.
ACCEPTANCE_RULES: Registry[type] = Registry("acceptance rule")


def acceptance_probability(
    own_age: float, candidate_age: float, age_cap: int = DEFAULT_AGE_CAP
) -> float:
    """Probability that a peer of ``own_age`` accepts one of ``candidate_age``.

    Ages are measured in rounds; ``age_cap`` is the paper's ``L``.
    """
    if age_cap <= 0:
        raise ValueError(f"age cap L must be positive, got {age_cap}")
    if own_age < 0 or candidate_age < 0:
        raise ValueError("ages cannot be negative")
    s1 = min(own_age, age_cap)
    s2 = min(candidate_age, age_cap)
    probability = (age_cap - (s1 - s2) + 1) / age_cap
    return min(probability, 1.0)


def minimum_probability(age_cap: int = DEFAULT_AGE_CAP) -> float:
    """The floor of the acceptation function, ``1 / L``."""
    if age_cap <= 0:
        raise ValueError(f"age cap L must be positive, got {age_cap}")
    return 1.0 / age_cap


@ACCEPTANCE_RULES.register("age")
@dataclass(frozen=True)
class AcceptancePolicy:
    """A reusable acceptation rule with a fixed age cap.

    The simulator instantiates one policy per run so the cap ``L`` can be
    swept without touching call sites.
    """

    age_cap: int = DEFAULT_AGE_CAP

    def __post_init__(self) -> None:
        if self.age_cap <= 0:
            raise ValueError(f"age cap L must be positive, got {self.age_cap}")

    def probability(self, own_age: float, candidate_age: float) -> float:
        """``f(p1, p2)`` for this policy's cap."""
        return acceptance_probability(own_age, candidate_age, self.age_cap)

    def decide(self, own_age: float, candidate_age: float, uniform: float) -> bool:
        """Accept/reject given a pre-drawn uniform sample in ``[0, 1)``.

        Taking the random draw as an argument keeps the policy pure and
        the simulation deterministic under a seeded RNG.
        """
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform sample must be in [0, 1), got {uniform}")
        return uniform < self.probability(own_age, candidate_age)

    def mutual_probability(self, age_a: float, age_b: float) -> float:
        """Probability that two *independent* decisions both accept.

        Partnerships require agreement from both sides (section 3.2:
        "both peers must agree on their partnership").
        """
        return self.probability(age_a, age_b) * self.probability(age_b, age_a)


@ACCEPTANCE_RULES.register("uniform")
@dataclass(frozen=True)
class UniformAcceptancePolicy:
    """Age-blind acceptance: every proposal is accepted.

    This is the baseline world without lifetime estimation — what a
    backup system that ignores ages entirely would do.  It shares the
    :class:`AcceptancePolicy` interface so the simulator can swap rules
    via configuration (``SimulationConfig.acceptance_rule``).
    """

    age_cap: int = DEFAULT_AGE_CAP

    def probability(self, own_age: float, candidate_age: float) -> float:
        """Always 1."""
        if own_age < 0 or candidate_age < 0:
            raise ValueError("ages cannot be negative")
        return 1.0

    def decide(self, own_age: float, candidate_age: float, uniform: float) -> bool:
        """Always accept (the uniform draw is validated but unused)."""
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform sample must be in [0, 1), got {uniform}")
        return True

    def mutual_probability(self, age_a: float, age_b: float) -> float:
        """Always 1."""
        return 1.0


def acceptance_rule(name: str, age_cap: int = DEFAULT_AGE_CAP):
    """Instantiate an acceptance rule by its registered name."""
    return ACCEPTANCE_RULES.create(name, age_cap=age_cap)


def available_rules():
    """Names of all registered acceptance rules."""
    return ACCEPTANCE_RULES.names()
