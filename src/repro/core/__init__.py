"""The paper's core contribution: lifetime-aware partner selection.

This package holds everything specific to the paper's optimization — the
acceptation function, the age categories, the lifetime statistics that
justify using age as a stability signal, the selection strategies, the
pool builder and the threshold-repair policy.
"""

from .acceptance import (
    ACCEPTANCE_RULES,
    DEFAULT_AGE_CAP,
    AcceptancePolicy,
    UniformAcceptancePolicy,
    acceptance_probability,
    acceptance_rule,
    available_rules,
    minimum_probability,
)
from .adaptive import AdaptiveConfig, AdaptiveThreshold
from .categories import (
    DEFAULT_SCHEME,
    ELDER,
    NEWCOMER,
    OLD,
    PAPER_CATEGORIES,
    YOUNG,
    Category,
    CategoryScheme,
)
from .lifetime import (
    ParetoFit,
    SurvivalCurve,
    age_is_sufficient_statistic,
    conditional_remaining_curve,
    fit_pareto,
    fit_pareto_scipy,
    kaplan_meier,
    rank_by_expected_remaining,
)
from .policy import POLICY_PRESETS, RepairPolicy, policy_by_name, scaled_threshold
from .pool import PoolResult, build_pool
from .selection import (
    SELECTION_STRATEGIES,
    AgeSelection,
    AvailabilitySelection,
    Candidate,
    OracleSelection,
    RandomSelection,
    SelectionStrategy,
    available_strategies,
    strategy_by_name,
)

__all__ = [
    "ACCEPTANCE_RULES",
    "available_rules",
    "DEFAULT_AGE_CAP",
    "AcceptancePolicy",
    "UniformAcceptancePolicy",
    "acceptance_probability",
    "acceptance_rule",
    "minimum_probability",
    "AdaptiveConfig",
    "AdaptiveThreshold",
    "DEFAULT_SCHEME",
    "ELDER",
    "NEWCOMER",
    "OLD",
    "PAPER_CATEGORIES",
    "YOUNG",
    "Category",
    "CategoryScheme",
    "ParetoFit",
    "SurvivalCurve",
    "age_is_sufficient_statistic",
    "conditional_remaining_curve",
    "fit_pareto",
    "fit_pareto_scipy",
    "kaplan_meier",
    "rank_by_expected_remaining",
    "POLICY_PRESETS",
    "RepairPolicy",
    "policy_by_name",
    "scaled_threshold",
    "PoolResult",
    "build_pool",
    "SELECTION_STRATEGIES",
    "AgeSelection",
    "AvailabilitySelection",
    "Candidate",
    "OracleSelection",
    "RandomSelection",
    "SelectionStrategy",
    "available_strategies",
    "strategy_by_name",
]
