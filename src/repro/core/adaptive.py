"""Adaptive repair thresholds (the paper's future work, section 6).

"As future works, we plan to improve our simulations by allowing
parameters to adapt more dynamically.  For instance, the repair
threshold might be changed depending on the peer context, its
difficulties to find partners, the data that it needs to download."

This module implements that controller.  Each peer carries its own
threshold inside ``[k + 1, n - 1]`` and nudges it on the signals the
paper names:

* a **blocked** repair (fewer than ``k`` blocks visible when the repair
  fired) means the peer waited too long: raise the threshold so the next
  repair triggers earlier;
* a **starved** repair (no recruitable partner found) means the peer is
  repairing more eagerly than the network can absorb: lower the
  threshold and tolerate deeper dips;
* long quiet stretches decay the threshold back toward the configured
  base, so a transient crisis does not pin a peer at the extreme
  forever.

The controller is pure state + integer arithmetic; the simulator wires
it in when ``SimulationConfig.adaptive_thresholds`` is set (ablation A5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .policy import RepairPolicy


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning constants of the adaptive controller."""

    raise_step: int = 1          # threshold increase per blocked repair
    lower_step: int = 1          # threshold decrease per starved repair
    decay_interval: int = 30 * 24  # rounds of quiet before one step of decay

    def __post_init__(self) -> None:
        if self.raise_step < 1 or self.lower_step < 1:
            raise ValueError("adaptation steps must be >= 1")
        if self.decay_interval < 1:
            raise ValueError("decay_interval must be >= 1")


class AdaptiveThreshold:
    """Per-peer repair threshold that reacts to repair outcomes."""

    def __init__(
        self,
        policy: RepairPolicy,
        config: AdaptiveConfig = AdaptiveConfig(),
    ):
        self._policy = policy
        self._config = config
        self._base = policy.repair_threshold
        self._minimum = policy.k + 1
        self._maximum = policy.n - 1
        if not self._minimum <= self._base <= self._maximum:
            # A base threshold at an extreme still adapts inside the
            # legal band; clamp the starting point.
            self._base = min(max(self._base, self._minimum), self._maximum)
        self.value = self._base
        self._last_event_round = 0

    @property
    def base(self) -> int:
        """The configured threshold the controller decays back toward."""
        return self._base

    def needs_repair(self, visible_blocks: int) -> bool:
        """Threshold test against the *current* adapted value."""
        if visible_blocks < 0:
            raise ValueError("visible block count cannot be negative")
        return visible_blocks < self.value

    def on_blocked(self, now: int) -> int:
        """A repair fired too late to decode: raise the threshold."""
        self.value = min(self.value + self._config.raise_step, self._maximum)
        self._last_event_round = now
        return self.value

    def on_starved(self, now: int) -> int:
        """A repair found no partners: lower the threshold."""
        self.value = max(self.value - self._config.lower_step, self._minimum)
        self._last_event_round = now
        return self.value

    def on_repair(self, now: int) -> int:
        """A normal successful repair: apply time decay toward the base."""
        self._maybe_decay(now)
        return self.value

    def _maybe_decay(self, now: int) -> None:
        quiet = now - self._last_event_round
        if quiet < self._config.decay_interval or self.value == self._base:
            return
        steps = quiet // self._config.decay_interval
        if self.value > self._base:
            self.value = max(self.value - steps, self._base)
        else:
            self.value = min(self.value + steps, self._base)
        self._last_event_round = now

    def __repr__(self) -> str:
        return (
            f"AdaptiveThreshold(value={self.value}, base={self._base}, "
            f"band=[{self._minimum}, {self._maximum}])"
        )
