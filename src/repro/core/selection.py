"""Partner-selection strategies.

The paper's strategy ("nodes are selected according to their stability
[...] the protocol uses the ages of the peers to sort them", section 3.2)
is :class:`AgeSelection`.  The baselines used for the ablation benches
(A1 in DESIGN.md) share the same interface:

* :class:`RandomSelection` — age-blind uniform choice (what a system
  without lifetime estimation would do);
* :class:`AvailabilitySelection` — rank by measured availability over the
  monitoring window (an alternative stability signal);
* :class:`OracleSelection` — rank by the peer's *true* remaining lifetime
  (an unattainable upper bound that quantifies how much of the oracle's
  benefit the age heuristic captures).

Every strategy consumes :class:`Candidate` descriptors and returns the
ids to recruit, most preferred first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..registry import Registry


@dataclass(frozen=True)
class Candidate:
    """Everything a selection strategy may know about a candidate partner.

    ``age`` is public knowledge (via the monitoring protocol);
    ``availability`` is the measured uptime fraction over the monitoring
    window; ``true_remaining_lifetime`` exists only in simulation and is
    consumed exclusively by the oracle baseline.
    """

    peer_id: int
    age: float
    availability: Optional[float] = None
    true_remaining_lifetime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.age < 0:
            raise ValueError("candidate age cannot be negative")
        if self.availability is not None and not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")


#: Registry of partner-selection strategies.  Register a class (or any
#: zero-argument factory returning a :class:`SelectionStrategy`) to make
#: a new strategy usable from ``SimulationConfig.selection_strategy``
#: without touching the simulator.
SELECTION_STRATEGIES: Registry[type] = Registry("selection strategy")


class SelectionStrategy(ABC):
    """Orders candidate partners by preference."""

    #: Short machine name used by experiment configs and reports.
    name: str = "abstract"

    #: Data the strategy needs on each :class:`Candidate`.  The engine
    #: only computes measured availability / true remaining lifetime for
    #: strategies that declare the need, so registered third-party
    #: strategies get the same treatment as the built-ins.
    needs_availability: bool = False
    needs_oracle: bool = False

    @abstractmethod
    def rank(
        self, candidates: Sequence[Candidate], rng: np.random.Generator
    ) -> List[int]:
        """Return candidate ids, most preferred first."""

    def select(
        self,
        candidates: Sequence[Candidate],
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Pick the ``count`` most preferred candidates (fewer if scarce)."""
        if count < 0:
            raise ValueError("count cannot be negative")
        return self.rank(candidates, rng)[:count]

    def select_pairs(
        self,
        pairs: Sequence[Tuple[int, float]],
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Fast-path selection over plain ``(peer_id, age)`` pairs.

        The engine uses this when the strategy declares no extra data
        needs (neither availability nor oracle knowledge), skipping
        :class:`Candidate` construction for the hot recruitment loop.
        The default implementation wraps the pairs into Candidates and
        defers to :meth:`select`, so third-party strategies keep working
        unchanged; the built-in age-only strategies override it.
        """
        candidates = [Candidate(peer_id=i, age=a) for i, a in pairs]
        return self.select(candidates, count, rng)


@SELECTION_STRATEGIES.register("age")
class AgeSelection(SelectionStrategy):
    """The paper's strategy: oldest candidates first.

    Ties (equal ages, common at simulation start) are broken randomly so
    no peer id is systematically favoured.
    """

    name = "age"

    def rank(
        self, candidates: Sequence[Candidate], rng: np.random.Generator
    ) -> List[int]:
        jitter = rng.random(len(candidates))
        order = sorted(
            range(len(candidates)),
            key=lambda i: (-candidates[i].age, jitter[i]),
        )
        return [candidates[i].peer_id for i in order]

    def select_pairs(
        self,
        pairs: Sequence[Tuple[int, float]],
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        if count < 0:
            raise ValueError("count cannot be negative")
        # Decorate-sort without a Python key function: tuples compare in
        # C.  The peer id rides along as a last-resort tiebreak; it can
        # only decide when age *and* jitter tie exactly, which the
        # continuous jitter makes a measure-zero event.
        jitter = rng.random(len(pairs)).tolist()
        decorated = sorted(
            (-age, tiebreak, peer_id)
            for (peer_id, age), tiebreak in zip(pairs, jitter)
        )
        return [entry[2] for entry in decorated[:count]]


@SELECTION_STRATEGIES.register("random")
class RandomSelection(SelectionStrategy):
    """Age-blind baseline: a uniformly random permutation."""

    name = "random"

    def rank(
        self, candidates: Sequence[Candidate], rng: np.random.Generator
    ) -> List[int]:
        ids = [candidate.peer_id for candidate in candidates]
        permutation = rng.permutation(len(ids))
        return [ids[i] for i in permutation]

    def select_pairs(
        self,
        pairs: Sequence[Tuple[int, float]],
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        if count < 0:
            raise ValueError("count cannot be negative")
        permutation = rng.permutation(len(pairs))
        return [pairs[i][0] for i in permutation[:count]]


@SELECTION_STRATEGIES.register("availability")
class AvailabilitySelection(SelectionStrategy):
    """Rank by measured availability, falling back to age on ties.

    Candidates without an availability measurement are ranked last (a
    brand-new peer has no history to show).
    """

    name = "availability"
    needs_availability = True

    def rank(
        self, candidates: Sequence[Candidate], rng: np.random.Generator
    ) -> List[int]:
        jitter = rng.random(len(candidates))

        def key(i: int):
            candidate = candidates[i]
            availability = (
                candidate.availability if candidate.availability is not None else -1.0
            )
            return (-availability, -candidate.age, jitter[i])

        order = sorted(range(len(candidates)), key=key)
        return [candidates[i].peer_id for i in order]


@SELECTION_STRATEGIES.register("oracle")
class OracleSelection(SelectionStrategy):
    """Upper-bound baseline: rank by true remaining lifetime.

    Only meaningful inside the simulator, which knows each peer's death
    round.  Candidates with unknown remaining lifetime (durable peers
    report ``inf``; ``None`` means "not provided") sort as infinite.
    """

    name = "oracle"
    needs_oracle = True

    def rank(
        self, candidates: Sequence[Candidate], rng: np.random.Generator
    ) -> List[int]:
        jitter = rng.random(len(candidates))

        def key(i: int):
            remaining = candidates[i].true_remaining_lifetime
            if remaining is None:
                remaining = float("inf")
            return (-remaining, jitter[i])

        order = sorted(range(len(candidates)), key=key)
        return [candidates[i].peer_id for i in order]


def strategy_by_name(name: str) -> SelectionStrategy:
    """Instantiate a selection strategy from its registered name."""
    return SELECTION_STRATEGIES.get(name)()


def available_strategies() -> List[str]:
    """Names of all registered strategies."""
    return SELECTION_STRATEGIES.names()
