"""Age categories of peers (paper section 4.2.1, table T3).

Unlike a peer's *profile* (fixed behaviour class, hidden from other
peers), its *category* is a public function of its current age and
changes as the peer ages: Newcomer -> Young -> Old -> Elder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..churn.profiles import ROUNDS_PER_MONTH


@dataclass(frozen=True)
class Category:
    """A half-open age bracket ``[lower, upper)`` in rounds."""

    name: str
    lower: int
    upper: Optional[int]  # None = unbounded

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ValueError("category lower bound cannot be negative")
        if self.upper is not None and self.upper <= self.lower:
            raise ValueError(
                f"category upper bound must exceed lower, got "
                f"[{self.lower}, {self.upper})"
            )

    def contains(self, age: float) -> bool:
        """Whether an age (in rounds) falls in this bracket."""
        if age < self.lower:
            return False
        return self.upper is None or age < self.upper

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe)."""
        return {"name": self.name, "lower": self.lower, "upper": self.upper}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Category":
        """Rebuild a category from :meth:`to_dict` output."""
        return cls(name=data["name"], lower=data["lower"], upper=data["upper"])


#: The paper's four categories: Newcomers < 3 months, Young 3-6 months,
#: Old 6-18 months, Elder > 18 months.
NEWCOMER = Category("Newcomers", 0, 3 * ROUNDS_PER_MONTH)
YOUNG = Category("Young peers", 3 * ROUNDS_PER_MONTH, 6 * ROUNDS_PER_MONTH)
OLD = Category("Old peers", 6 * ROUNDS_PER_MONTH, 18 * ROUNDS_PER_MONTH)
ELDER = Category("Elder peers", 18 * ROUNDS_PER_MONTH, None)

PAPER_CATEGORIES: Tuple[Category, ...] = (NEWCOMER, YOUNG, OLD, ELDER)


class CategoryScheme:
    """An ordered, contiguous set of age categories.

    The default scheme is the paper's; experiments on scaled-down
    simulations can supply proportionally smaller brackets.
    """

    def __init__(self, categories: Tuple[Category, ...] = PAPER_CATEGORIES):
        if not categories:
            raise ValueError("at least one category is required")
        previous_upper = 0
        for category in categories[:-1]:
            if category.lower != previous_upper:
                raise ValueError("categories must be contiguous from age 0")
            if category.upper is None:
                raise ValueError("only the last category may be unbounded")
            previous_upper = category.upper
        last = categories[-1]
        if last.lower != previous_upper:
            raise ValueError("categories must be contiguous from age 0")
        self.categories = tuple(categories)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoryScheme):
            return NotImplemented
        return self.categories == other.categories

    def __hash__(self) -> int:
        return hash(self.categories)

    def __repr__(self) -> str:
        return f"CategoryScheme({self.categories!r})"

    def classify(self, age: float) -> Category:
        """Return the category an age belongs to."""
        if age < 0:
            raise ValueError("age cannot be negative")
        for category in self.categories:
            if category.contains(age):
                return category
        # Unreachable with a well-formed scheme ending in an unbounded
        # bracket; guard for bounded schemes.
        raise ValueError(f"age {age} exceeds the last category bound")

    def names(self) -> List[str]:
        """Category names in age order."""
        return [category.name for category in self.categories]

    def scaled(self, factor: float) -> "CategoryScheme":
        """A scheme with all bracket bounds multiplied by ``factor``.

        Used when a scaled-down simulation shortens the time axis: the
        categories must shrink with it to keep the population shares
        comparable.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        scaled = []
        for category in self.categories:
            upper = None if category.upper is None else max(
                int(category.upper * factor), int(category.lower * factor) + 1
            )
            scaled.append(
                Category(category.name, int(category.lower * factor), upper)
            )
        return CategoryScheme(tuple(scaled))

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe), for config hashing and transport."""
        return {
            "categories": [category.to_dict() for category in self.categories]
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CategoryScheme":
        """Rebuild a scheme from :meth:`to_dict` output."""
        return cls(
            tuple(Category.from_dict(entry) for entry in data["categories"])
        )

    def table(self) -> Dict[str, str]:
        """The category table (T4.2.1) as ``name -> bracket`` strings."""
        rows = {}
        for category in self.categories:
            if category.upper is None:
                rows[category.name] = f"> {category.lower} rounds"
            else:
                rows[category.name] = f"{category.lower} - {category.upper} rounds"
        return rows


DEFAULT_SCHEME = CategoryScheme()
