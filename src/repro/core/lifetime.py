"""Lifetime estimation: the statistical basis of the age heuristic.

The paper's selection rule rests on one empirical law (section 1, citing
Bustamante & Qiao [5]): peer lifetimes follow a Pareto distribution, so a
peer's expected remaining lifetime *increases* with the time it has
already spent in the system.  This module provides:

* maximum-likelihood Pareto fitting (closed form, cross-checked against
  ``scipy.stats.pareto.fit``),
* conditional remaining-lifetime estimation under the fitted law,
* a Kaplan-Meier-style empirical survival estimator for traces that
  include right-censored observations (peers still alive at the end of a
  measurement window),
* a ranking helper: sorting peers by expected remaining lifetime under a
  Pareto law is exactly sorting them by age, which is what the protocol
  exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ParetoFit:
    """Result of fitting a Pareto law to observed lifetimes."""

    shape: float  # alpha
    scale: float  # x_m
    sample_size: int
    log_likelihood: float

    def survival(self, age: float) -> float:
        """P(lifetime > age) under the fitted law."""
        if age <= self.scale:
            return 1.0
        return (self.scale / age) ** self.shape

    def expected_remaining(self, age: float) -> float:
        """E[remaining | survived to age] under the fitted law.

        Infinite when the fitted tail is too heavy (``alpha <= 1``).
        """
        if age < 0:
            raise ValueError("age cannot be negative")
        if self.shape <= 1.0:
            return float("inf")
        t = max(age, self.scale)
        return self.shape * t / (self.shape - 1.0) - age


def fit_pareto(lifetimes: Sequence[float]) -> ParetoFit:
    """Maximum-likelihood Pareto fit of completed lifetimes.

    For samples ``x_i >= x_m`` the MLE is ``x_m = min(x_i)`` and
    ``alpha = n / sum(log(x_i / x_m))``.
    """
    samples = np.asarray(list(lifetimes), dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two lifetime samples to fit a Pareto law")
    if np.any(samples <= 0):
        raise ValueError("lifetimes must be strictly positive")
    scale = float(samples.min())
    logs = np.log(samples / scale)
    total = float(logs.sum())
    if total <= 0:
        raise ValueError("degenerate sample: all lifetimes identical")
    shape = samples.size / total
    log_likelihood = float(
        samples.size * np.log(shape)
        + samples.size * shape * np.log(scale)
        - (shape + 1) * np.log(samples).sum()
    )
    return ParetoFit(
        shape=shape,
        scale=scale,
        sample_size=int(samples.size),
        log_likelihood=log_likelihood,
    )


def fit_pareto_scipy(lifetimes: Sequence[float]) -> ParetoFit:
    """Pareto fit via ``scipy.stats.pareto`` (floc pinned to 0).

    Kept as an independent cross-check of :func:`fit_pareto`; the two
    agree on clean Pareto samples (tested).
    """
    samples = np.asarray(list(lifetimes), dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two lifetime samples to fit a Pareto law")
    shape, _, scale = stats.pareto.fit(samples, floc=0)
    log_likelihood = float(np.sum(stats.pareto.logpdf(samples, shape, 0, scale)))
    return ParetoFit(
        shape=float(shape),
        scale=float(scale),
        sample_size=int(samples.size),
        log_likelihood=log_likelihood,
    )


@dataclass(frozen=True)
class SurvivalCurve:
    """Empirical survival function S(t) on a grid of times."""

    times: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def at(self, age: float) -> float:
        """S(age) with step interpolation (right-continuous)."""
        if age < 0:
            raise ValueError("age cannot be negative")
        result = 1.0
        for time, prob in zip(self.times, self.probabilities):
            if time <= age:
                result = prob
            else:
                break
        return result


def kaplan_meier(
    durations: Sequence[float], completed: Sequence[bool]
) -> SurvivalCurve:
    """Kaplan-Meier estimator handling right-censored lifetimes.

    Parameters
    ----------
    durations:
        Observed time in system for each peer.
    completed:
        ``True`` when the peer actually departed at that time, ``False``
        when the observation window ended first (censoring).
    """
    if len(durations) != len(completed):
        raise ValueError("durations and completed flags must align")
    if len(durations) == 0:
        raise ValueError("need at least one observation")
    order = np.argsort(durations)
    durations = np.asarray(durations, dtype=float)[order]
    completed = np.asarray(completed, dtype=bool)[order]
    if np.any(durations < 0):
        raise ValueError("durations cannot be negative")

    at_risk = len(durations)
    survival = 1.0
    times: List[float] = []
    probabilities: List[float] = []
    index = 0
    while index < len(durations):
        time = durations[index]
        deaths = 0
        removed = 0
        while index < len(durations) and durations[index] == time:
            deaths += int(completed[index])
            removed += 1
            index += 1
        if deaths and at_risk:
            survival *= 1.0 - deaths / at_risk
            times.append(float(time))
            probabilities.append(survival)
        at_risk -= removed
    if not times:
        times = [float(durations[-1])]
        probabilities = [1.0]
    return SurvivalCurve(tuple(times), tuple(probabilities))


def conditional_remaining_curve(
    fit: ParetoFit, ages: Sequence[float]
) -> List[Tuple[float, float]]:
    """Tabulate E[remaining | age] for a list of ages under a fit.

    This is the curve that justifies the paper's heuristic: it is
    monotonically non-decreasing in age for any Pareto law.
    """
    return [(float(age), fit.expected_remaining(age)) for age in ages]


def rank_by_expected_remaining(
    ages: Sequence[float], fit: ParetoFit
) -> List[int]:
    """Indices of peers sorted by decreasing expected remaining lifetime.

    For ages at or above the fitted scale ``x_m`` this ordering
    coincides with decreasing age (remaining lifetime is ``t/(alpha-1)``,
    strictly increasing in ``t``) — which is why the protocol can skip
    the distribution fit entirely and just sort by age.  Below ``x_m``
    the survival function is flat at 1, so conditioning on age teaches
    nothing yet; ties there are broken toward the older peer.
    """
    remaining = [fit.expected_remaining(age) for age in ages]
    return sorted(range(len(ages)), key=lambda i: (-remaining[i], -ages[i], i))


def age_is_sufficient_statistic(
    ages: Sequence[float], fit: ParetoFit
) -> bool:
    """Check that fitted-model ranking == age ranking, where age can tell.

    Only ages at or above the fitted scale ``x_m`` are compared: below
    it every peer has survival 1 and the model deliberately cannot
    distinguish them (see :func:`rank_by_expected_remaining`).
    """
    informative = [age for age in ages if age >= fit.scale]
    by_model = rank_by_expected_remaining(informative, fit)
    by_age = sorted(
        range(len(informative)), key=lambda i: (-informative[i], i)
    )
    return by_model == by_age
