"""Partner-pool construction (paper section 3.2).

"When a node wants to store blocks on the peer-to-peer network, it
creates a pool of possible partners, i.e. peers that do not yet store
blocks for the same archive.  To enter this pool, both peers must agree
on their partnership, using an acceptation function."

The pool builder is deliberately independent of the simulator: it
consumes any iterable of candidates, applies the *mutual* acceptance
test, and stops once the pool is large enough or the candidate supply or
the attempt budget runs out.

This is the reference implementation of the pool semantics.  The
simulation engine inlines the same loop (sampling, mutual acceptance,
examined/accepted accounting) into ``Simulation._fill_pool`` with
batched RNG draws for speed; behavioural changes must land in both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from .acceptance import AcceptancePolicy
from .selection import Candidate


@dataclass
class PoolResult:
    """Outcome of one pool-building attempt."""

    accepted: List[Candidate] = field(default_factory=list)
    examined: int = 0
    rejected_by_owner: int = 0
    rejected_by_candidate: int = 0

    @property
    def size(self) -> int:
        """Number of mutually accepted candidates."""
        return len(self.accepted)


def build_pool(
    owner_age: float,
    candidates: Iterable[Candidate],
    acceptance: AcceptancePolicy,
    rng: np.random.Generator,
    target_size: int,
    max_examined: int,
) -> PoolResult:
    """Fill a pool of mutually accepted partners.

    Parameters
    ----------
    owner_age:
        Age in rounds of the peer building the pool.
    candidates:
        Candidate partners, typically a random stream of online peers
        with free quota that are not partners yet.
    acceptance:
        The acceptation rule (the paper's ``f`` with its cap ``L``).
    rng:
        Random source for both sides' accept/reject draws.
    target_size:
        Stop once this many candidates have been accepted.
    max_examined:
        Hard budget on examined candidates, so a starved newcomer cannot
        loop forever inside one round.
    """
    if target_size < 0:
        raise ValueError("target_size cannot be negative")
    if max_examined < 0:
        raise ValueError("max_examined cannot be negative")

    result = PoolResult()
    for candidate in candidates:
        if result.size >= target_size or result.examined >= max_examined:
            break
        result.examined += 1
        # Owner's side: f(owner, candidate).
        if not acceptance.decide(owner_age, candidate.age, float(rng.random())):
            result.rejected_by_owner += 1
            continue
        # Candidate's side: f(candidate, owner).
        if not acceptance.decide(candidate.age, owner_age, float(rng.random())):
            result.rejected_by_candidate += 1
            continue
        result.accepted.append(candidate)
    return result
