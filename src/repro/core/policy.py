"""Maintenance policy: when to repair and how much to recruit.

The paper's maintenance rule (sections 2.2.3 and 3.2): each round a peer
monitors its partners; when fewer than the repair threshold ``k'`` blocks
are visible, a repair is triggered.  A repair first needs ``k`` visible
blocks to decode; it then re-encodes and uploads the missing blocks so
that ``n`` blocks are placed again.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..registry import Registry


@dataclass(frozen=True)
class RepairPolicy:
    """Threshold-repair policy for one archive.

    Attributes
    ----------
    data_blocks:
        ``k`` — blocks needed to decode.
    total_blocks:
        ``n`` — blocks placed when fully repaired.
    repair_threshold:
        ``k'`` — the minimal number of blocks that should stay visible;
        dropping below it triggers a repair.  Must satisfy
        ``k <= k' <= n`` (the paper sweeps 132..180 for k=128, n=256).
    """

    data_blocks: int
    total_blocks: int
    repair_threshold: int

    def __post_init__(self) -> None:
        if self.data_blocks < 1:
            raise ValueError(f"k must be >= 1, got {self.data_blocks}")
        if self.total_blocks < self.data_blocks:
            raise ValueError(
                f"n ({self.total_blocks}) must be >= k ({self.data_blocks})"
            )
        if not self.data_blocks <= self.repair_threshold <= self.total_blocks:
            raise ValueError(
                f"repair threshold must lie in [k, n] = "
                f"[{self.data_blocks}, {self.total_blocks}], "
                f"got {self.repair_threshold}"
            )

    @property
    def k(self) -> int:
        """Alias for ``data_blocks`` matching the paper's notation."""
        return self.data_blocks

    @property
    def n(self) -> int:
        """Alias for ``total_blocks`` matching the paper's notation."""
        return self.total_blocks

    @property
    def parity_blocks(self) -> int:
        """``m = n - k``."""
        return self.total_blocks - self.data_blocks

    def needs_repair(self, visible_blocks: int) -> bool:
        """True when fewer than ``k'`` blocks are visible."""
        if visible_blocks < 0:
            raise ValueError("visible block count cannot be negative")
        return visible_blocks < self.repair_threshold

    def can_decode(self, visible_blocks: int) -> bool:
        """True when a repair (or a restore) can gather ``k`` blocks now."""
        if visible_blocks < 0:
            raise ValueError("visible block count cannot be negative")
        return visible_blocks >= self.data_blocks

    def is_lost(self, surviving_blocks: int) -> bool:
        """True when fewer than ``k`` blocks exist on live peers.

        At that point no future repair can ever succeed: the archive is
        permanently lost.
        """
        if surviving_blocks < 0:
            raise ValueError("surviving block count cannot be negative")
        return surviving_blocks < self.data_blocks

    def blocks_to_recruit(self, visible_blocks: int) -> int:
        """Number of new partners a repair should recruit (``d``)."""
        if visible_blocks < 0:
            raise ValueError("visible block count cannot be negative")
        return max(self.total_blocks - visible_blocks, 0)

    def with_threshold(self, repair_threshold: int) -> "RepairPolicy":
        """Copy of the policy with a different threshold (for sweeps)."""
        return RepairPolicy(self.data_blocks, self.total_blocks, repair_threshold)


#: Registry of repair-policy presets: zero-argument factories returning
#: a ready :class:`RepairPolicy`.  ``"paper"`` is the focus setting of
#: figures 3/4; the tight/loose variants bound the figure 1/2 sweep;
#: ``"scaled"`` is the laptop-scale mapping used by the test-suite.
POLICY_PRESETS: Registry = Registry("repair-policy preset")

POLICY_PRESETS.register("paper", lambda: RepairPolicy(128, 256, 148))
POLICY_PRESETS.register("paper-tight", lambda: RepairPolicy(128, 256, 132))
POLICY_PRESETS.register("paper-loose", lambda: RepairPolicy(128, 256, 180))
POLICY_PRESETS.register("scaled", lambda: RepairPolicy(16, 32, 18))


def policy_by_name(name: str) -> RepairPolicy:
    """Instantiate a repair-policy preset from its registered name."""
    return POLICY_PRESETS.create(name)


def scaled_threshold(
    paper_threshold: int,
    paper_k: int = 128,
    paper_n: int = 256,
    target_k: int = 16,
    target_n: int = 32,
) -> int:
    """Map a paper threshold onto scaled-down code parameters.

    The mapping preserves the *slack fraction* ``(k' - k) / (n - k)``:
    the paper's 148 with k=128, n=256 has slack 20/128 = 15.6 %, which
    becomes 18 (slack 2.5/16) for a k=16, n=32 code.
    """
    if not paper_k <= paper_threshold <= paper_n:
        raise ValueError("paper threshold must lie in [paper_k, paper_n]")
    if target_n <= target_k:
        raise ValueError("target n must exceed target k")
    fraction = (paper_threshold - paper_k) / (paper_n - paper_k)
    threshold = target_k + round(fraction * (target_n - target_k))
    # A paper threshold strictly above k must stay strictly above k after
    # scaling: at k' = k a repair can never trigger (visible < k' implies
    # the decode precondition visible >= k already failed).
    floor = target_k + 1 if fraction > 0 else target_k
    return min(max(threshold, floor), target_n)
