"""Erasure-coding substrate: GF(256), Reed-Solomon, and the archive codec.

The paper assumes "erasure codes, such as Reed-Solomon" (section 2.1);
this subpackage implements them from scratch so that the backup layer can
move real bytes, not just logical block counts.  Matrix elimination is
backend-pluggable: the :data:`CODEC_BACKENDS` registry holds a
pure-python implementation and a numpy-vectorised one, the default being
the fastest available.
"""

from .codec import ArchiveCodec, CodedBlock
from .matrix import CODEC_BACKENDS, DEFAULT_BACKEND, MatrixBackend, get_backend
from .reed_solomon import ErasureCodingError, ReedSolomonCode

__all__ = [
    "ArchiveCodec",
    "CODEC_BACKENDS",
    "CodedBlock",
    "DEFAULT_BACKEND",
    "ErasureCodingError",
    "MatrixBackend",
    "ReedSolomonCode",
    "get_backend",
]
