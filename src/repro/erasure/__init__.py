"""Erasure-coding substrate: GF(256), Reed-Solomon, and the archive codec.

The paper assumes "erasure codes, such as Reed-Solomon" (section 2.1);
this subpackage implements them from scratch so that the backup layer can
move real bytes, not just logical block counts.
"""

from .codec import ArchiveCodec, CodedBlock
from .reed_solomon import ErasureCodingError, ReedSolomonCode

__all__ = [
    "ArchiveCodec",
    "CodedBlock",
    "ErasureCodingError",
    "ReedSolomonCode",
]
