"""Dense matrix algebra over GF(2^8).

Reed-Solomon encoding and decoding reduce to matrix-vector products and
matrix inversion over the field; this module provides exactly those
operations on plain list-of-list matrices, which is fast enough for the
block counts used by the paper (k, m <= 128).
"""

from __future__ import annotations

from typing import List, Sequence

from . import gf256

Matrix = List[List[int]]


def zeros(rows: int, cols: int) -> Matrix:
    """Return a ``rows`` x ``cols`` all-zero matrix."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {rows}x{cols}")
    return [[0] * cols for _ in range(rows)]


def identity(size: int) -> Matrix:
    """Return the ``size`` x ``size`` identity matrix."""
    result = zeros(size, size)
    for i in range(size):
        result[i][i] = 1
    return result


def copy(matrix: Matrix) -> Matrix:
    """Return a deep copy of ``matrix``."""
    return [row[:] for row in matrix]


def dimensions(matrix: Matrix) -> tuple:
    """Return ``(rows, cols)`` after validating rectangular shape."""
    if not matrix or not matrix[0]:
        raise ValueError("matrix must be non-empty")
    cols = len(matrix[0])
    for row in matrix:
        if len(row) != cols:
            raise ValueError("matrix rows have inconsistent lengths")
    return len(matrix), cols


def multiply(a: Matrix, b: Matrix) -> Matrix:
    """Matrix product ``a @ b`` over GF(256)."""
    a_rows, a_cols = dimensions(a)
    b_rows, b_cols = dimensions(b)
    if a_cols != b_rows:
        raise ValueError(f"cannot multiply {a_rows}x{a_cols} by {b_rows}x{b_cols}")
    b_columns = [[b[r][c] for r in range(b_rows)] for c in range(b_cols)]
    return [
        [gf256.dot_product(row, column) for column in b_columns]
        for row in a
    ]


def multiply_vector(matrix: Matrix, vector: Sequence[int]) -> List[int]:
    """Matrix-vector product over GF(256)."""
    rows, cols = dimensions(matrix)
    if len(vector) != cols:
        raise ValueError(f"vector length {len(vector)} != matrix cols {cols}")
    return [gf256.dot_product(row, vector) for row in matrix]


def submatrix(matrix: Matrix, row_indices: Sequence[int]) -> Matrix:
    """Return the matrix restricted to the given rows (in the given order)."""
    return [matrix[i][:] for i in row_indices]


def invert(matrix: Matrix) -> Matrix:
    """Invert a square matrix with Gauss-Jordan elimination.

    Raises ``ValueError`` when the matrix is singular.
    """
    rows, cols = dimensions(matrix)
    if rows != cols:
        raise ValueError(f"only square matrices can be inverted, got {rows}x{cols}")
    size = rows
    work = copy(matrix)
    result = identity(size)

    for col in range(size):
        pivot_row = None
        for row in range(col, size):
            if work[row][col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise ValueError("matrix is singular and cannot be inverted")
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            result[col], result[pivot_row] = result[pivot_row], result[col]

        pivot_inverse = gf256.inverse(work[col][col])
        work[col] = gf256.scale_vector(work[col], pivot_inverse)
        result[col] = gf256.scale_vector(result[col], pivot_inverse)

        for row in range(size):
            if row == col or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = gf256.add_vectors(
                work[row], gf256.scale_vector(work[col], factor)
            )
            result[row] = gf256.add_vectors(
                result[row], gf256.scale_vector(result[col], factor)
            )
    return result


def rank(matrix: Matrix) -> int:
    """Return the rank of ``matrix`` over GF(256)."""
    rows, cols = dimensions(matrix)
    work = copy(matrix)
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        candidate = None
        for row in range(pivot_row, rows):
            if work[row][col] != 0:
                candidate = row
                break
        if candidate is None:
            continue
        work[pivot_row], work[candidate] = work[candidate], work[pivot_row]
        inv = gf256.inverse(work[pivot_row][col])
        work[pivot_row] = gf256.scale_vector(work[pivot_row], inv)
        for row in range(rows):
            if row != pivot_row and work[row][col]:
                factor = work[row][col]
                work[row] = gf256.add_vectors(
                    work[row], gf256.scale_vector(work[pivot_row], factor)
                )
        pivot_row += 1
    return pivot_row


def vandermonde(rows: int, cols: int) -> Matrix:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[r][c] = r^c``.

    Any ``cols`` distinct rows of a Vandermonde matrix over a field are
    linearly independent, which is the property erasure codes rely on.
    """
    if rows > gf256.FIELD_SIZE:
        raise ValueError(
            f"at most {gf256.FIELD_SIZE} distinct Vandermonde rows exist in GF(256)"
        )
    return [[gf256.power(r, c) for c in range(cols)] for r in range(rows)]


def cauchy(xs: Sequence[int], ys: Sequence[int]) -> Matrix:
    """Return the Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)`` over GF(256).

    All ``x_i`` and ``y_j`` must be pairwise distinct across the union of
    both sequences; every square submatrix of a Cauchy matrix is then
    invertible, making it ideal for the parity part of a systematic code.
    """
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy coordinates must be distinct within each axis")
    if set(xs) & set(ys):
        raise ValueError("Cauchy x and y coordinates must not overlap")
    return [[gf256.inverse(x ^ y) for y in ys] for x in xs]
