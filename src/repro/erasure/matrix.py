"""Dense matrix algebra over GF(2^8), with pluggable backends.

Reed-Solomon encoding and decoding reduce to matrix-vector products and
matrix inversion over the field; this module provides exactly those
operations on plain list-of-list matrices.

Gaussian elimination (``invert`` / ``rank``) comes in two registered
backends:

* ``"python"`` — the original pure-python loops, always available;
* ``"numpy"`` — row operations vectorised through the shared 256x256
  GF product table (one fancy-indexed lookup plus one XOR per pivot,
  instead of a python loop over every row element), registered only
  when numpy imports.

:data:`DEFAULT_BACKEND` is ``"numpy"`` when available, falling back to
``"python"`` otherwise; callers can force either by name through the
:data:`CODEC_BACKENDS` registry (e.g.
``ArchiveCodec(k, m, backend="python")``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from . import gf256
from ..registry import Registry

Matrix = List[List[int]]

try:  # numpy is optional for the erasure substrate
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the registry gate
    _np = None


def zeros(rows: int, cols: int) -> Matrix:
    """Return a ``rows`` x ``cols`` all-zero matrix."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {rows}x{cols}")
    return [[0] * cols for _ in range(rows)]


def identity(size: int) -> Matrix:
    """Return the ``size`` x ``size`` identity matrix."""
    result = zeros(size, size)
    for i in range(size):
        result[i][i] = 1
    return result


def copy(matrix: Matrix) -> Matrix:
    """Return a deep copy of ``matrix``."""
    return [row[:] for row in matrix]


def dimensions(matrix: Matrix) -> tuple:
    """Return ``(rows, cols)`` after validating rectangular shape."""
    if not matrix or not matrix[0]:
        raise ValueError("matrix must be non-empty")
    cols = len(matrix[0])
    for row in matrix:
        if len(row) != cols:
            raise ValueError("matrix rows have inconsistent lengths")
    return len(matrix), cols


def multiply(a: Matrix, b: Matrix) -> Matrix:
    """Matrix product ``a @ b`` over GF(256)."""
    a_rows, a_cols = dimensions(a)
    b_rows, b_cols = dimensions(b)
    if a_cols != b_rows:
        raise ValueError(f"cannot multiply {a_rows}x{a_cols} by {b_rows}x{b_cols}")
    b_columns = [[b[r][c] for r in range(b_rows)] for c in range(b_cols)]
    return [
        [gf256.dot_product(row, column) for column in b_columns]
        for row in a
    ]


def multiply_vector(matrix: Matrix, vector: Sequence[int]) -> List[int]:
    """Matrix-vector product over GF(256)."""
    rows, cols = dimensions(matrix)
    if len(vector) != cols:
        raise ValueError(f"vector length {len(vector)} != matrix cols {cols}")
    return [gf256.dot_product(row, vector) for row in matrix]


def submatrix(matrix: Matrix, row_indices: Sequence[int]) -> Matrix:
    """Return the matrix restricted to the given rows (in the given order)."""
    return [matrix[i][:] for i in row_indices]


def _invert_python(matrix: Matrix) -> Matrix:
    """Pure-python Gauss-Jordan inversion (the ``"python"`` backend)."""
    rows, cols = dimensions(matrix)
    if rows != cols:
        raise ValueError(f"only square matrices can be inverted, got {rows}x{cols}")
    size = rows
    work = copy(matrix)
    result = identity(size)

    for col in range(size):
        pivot_row = None
        for row in range(col, size):
            if work[row][col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise ValueError("matrix is singular and cannot be inverted")
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            result[col], result[pivot_row] = result[pivot_row], result[col]

        pivot_inverse = gf256.inverse(work[col][col])
        work[col] = gf256.scale_vector(work[col], pivot_inverse)
        result[col] = gf256.scale_vector(result[col], pivot_inverse)

        for row in range(size):
            if row == col or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = gf256.add_vectors(
                work[row], gf256.scale_vector(work[col], factor)
            )
            result[row] = gf256.add_vectors(
                result[row], gf256.scale_vector(result[col], factor)
            )
    return result


def _rank_python(matrix: Matrix) -> int:
    """Pure-python row reduction (the ``"python"`` backend)."""
    rows, cols = dimensions(matrix)
    work = copy(matrix)
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        candidate = None
        for row in range(pivot_row, rows):
            if work[row][col] != 0:
                candidate = row
                break
        if candidate is None:
            continue
        work[pivot_row], work[candidate] = work[candidate], work[pivot_row]
        inv = gf256.inverse(work[pivot_row][col])
        work[pivot_row] = gf256.scale_vector(work[pivot_row], inv)
        for row in range(rows):
            if row != pivot_row and work[row][col]:
                factor = work[row][col]
                work[row] = gf256.add_vectors(
                    work[row], gf256.scale_vector(work[pivot_row], factor)
                )
        pivot_row += 1
    return pivot_row


if _np is not None:
    #: numpy views of the shared GF(256) tables: 256x256 products and
    #: multiplicative inverses (index 0 unused).  Built once here and
    #: reused by :mod:`repro.erasure.reed_solomon` for its block math.
    NP_MUL_TABLE = _np.array(gf256.MUL_TABLE, dtype=_np.uint8)
    NP_INV_TABLE = _np.array(
        [0] + [gf256.inverse(x) for x in range(1, gf256.FIELD_SIZE)],
        dtype=_np.uint8,
    )


def _invert_numpy(matrix: Matrix) -> Matrix:
    """Vectorised Gauss-Jordan inversion (the ``"numpy"`` backend).

    Per pivot column, the whole elimination step is three table
    lookups/XORs over 2-D arrays, so the python-level work drops from
    O(size^3) to O(size) loop iterations.
    """
    rows, cols = dimensions(matrix)
    if rows != cols:
        raise ValueError(f"only square matrices can be inverted, got {rows}x{cols}")
    size = rows
    work = _np.array(matrix, dtype=_np.uint8)
    result = _np.eye(size, dtype=_np.uint8)

    for col in range(size):
        pivot_candidates = _np.nonzero(work[col:, col])[0]
        if pivot_candidates.size == 0:
            raise ValueError("matrix is singular and cannot be inverted")
        pivot_row = col + int(pivot_candidates[0])
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            result[[col, pivot_row]] = result[[pivot_row, col]]

        pivot_inverse = NP_INV_TABLE[work[col, col]]
        work[col] = NP_MUL_TABLE[pivot_inverse, work[col]]
        result[col] = NP_MUL_TABLE[pivot_inverse, result[col]]

        factors = work[:, col].copy()
        factors[col] = 0
        eliminate = _np.nonzero(factors)[0]
        if eliminate.size:
            coefficients = factors[eliminate][:, None]
            work[eliminate] ^= NP_MUL_TABLE[coefficients, work[col][None, :]]
            result[eliminate] ^= NP_MUL_TABLE[coefficients, result[col][None, :]]
    return [[int(value) for value in row] for row in result]


def _rank_numpy(matrix: Matrix) -> int:
    """Vectorised row reduction (the ``"numpy"`` backend)."""
    rows, cols = dimensions(matrix)
    work = _np.array(matrix, dtype=_np.uint8)
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        candidates = _np.nonzero(work[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        candidate = pivot_row + int(candidates[0])
        if candidate != pivot_row:
            work[[pivot_row, candidate]] = work[[candidate, pivot_row]]
        work[pivot_row] = NP_MUL_TABLE[NP_INV_TABLE[work[pivot_row, col]], work[pivot_row]]
        factors = work[:, col].copy()
        factors[pivot_row] = 0
        eliminate = _np.nonzero(factors)[0]
        if eliminate.size:
            work[eliminate] ^= NP_MUL_TABLE[factors[eliminate][:, None],
                                    work[pivot_row][None, :]]
        pivot_row += 1
    return pivot_row


@dataclass(frozen=True)
class MatrixBackend:
    """One registered implementation of GF(256) Gaussian elimination."""

    name: str
    invert: Callable[[Matrix], Matrix]
    rank: Callable[[Matrix], int]


#: Registry of erasure-codec matrix backends.  ``"python"`` is always
#: present; ``"numpy"`` registers when numpy imports and then becomes
#: the default (see :data:`DEFAULT_BACKEND`).
CODEC_BACKENDS: Registry[MatrixBackend] = Registry("codec backend")

CODEC_BACKENDS.register(
    "python", MatrixBackend("python", _invert_python, _rank_python)
)
if _np is not None:
    CODEC_BACKENDS.register(
        "numpy", MatrixBackend("numpy", _invert_numpy, _rank_numpy)
    )

#: The backend used when callers pass ``backend=None``.
DEFAULT_BACKEND: str = "numpy" if _np is not None else "python"


def get_backend(name: Optional[str] = None) -> MatrixBackend:
    """Resolve a backend by name (``None`` means :data:`DEFAULT_BACKEND`)."""
    return CODEC_BACKENDS.get(DEFAULT_BACKEND if name is None else name)


def invert(matrix: Matrix, backend: Optional[str] = None) -> Matrix:
    """Invert a square matrix with Gauss-Jordan elimination.

    Raises ``ValueError`` when the matrix is singular.  ``backend``
    selects a registered implementation; the default is the fastest one
    available (numpy when importable, pure python otherwise).
    """
    return get_backend(backend).invert(matrix)


def rank(matrix: Matrix, backend: Optional[str] = None) -> int:
    """Return the rank of ``matrix`` over GF(256)."""
    return get_backend(backend).rank(matrix)


def vandermonde(rows: int, cols: int) -> Matrix:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[r][c] = r^c``.

    Any ``cols`` distinct rows of a Vandermonde matrix over a field are
    linearly independent, which is the property erasure codes rely on.
    """
    if rows > gf256.FIELD_SIZE:
        raise ValueError(
            f"at most {gf256.FIELD_SIZE} distinct Vandermonde rows exist in GF(256)"
        )
    return [[gf256.power(r, c) for c in range(cols)] for r in range(rows)]


def cauchy(xs: Sequence[int], ys: Sequence[int]) -> Matrix:
    """Return the Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)`` over GF(256).

    All ``x_i`` and ``y_j`` must be pairwise distinct across the union of
    both sequences; every square submatrix of a Cauchy matrix is then
    invertible, making it ideal for the parity part of a systematic code.
    """
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy coordinates must be distinct within each axis")
    if set(xs) & set(ys):
        raise ValueError("Cauchy x and y coordinates must not overlap")
    return [[gf256.inverse(x ^ y) for y in ys] for x in xs]
