"""Systematic Reed-Solomon erasure code over GF(2^8).

The paper (section 2.1) stores every archive as ``n = k + m`` blocks such
that *any* ``k`` of the ``n`` blocks reconstruct the original data, and
notes that with Reed-Solomon "the k first blocks are the original ones".
This module implements exactly that systematic code:

* the generator matrix is ``[I_k ; C]`` where ``C`` is a ``m x k`` Cauchy
  matrix, so every ``k x k`` submatrix of the generator is invertible and
  any ``k`` surviving blocks decode;
* blocks are byte strings; encoding/decoding is applied column-wise
  (byte position by byte position), vectorised with numpy when it is
  available and falling back to the pure-python GF(256) matrix algebra
  otherwise (same bytes, table-lookup speed instead of vectorised).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from . import gf256, matrix

try:  # numpy is optional for the erasure substrate
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the fallback paths
    np = None


class ErasureCodingError(Exception):
    """Raised when encoding or decoding is impossible."""


if np is not None:
    #: The 256x256 product table in numpy form, shared with the matrix
    #: backends (one materialisation per process).
    _MUL_TABLE = matrix.NP_MUL_TABLE


def _gf_matmul(a, b):
    """Multiply matrices of GF(256) elements (uint8) via table lookups."""
    # a: (r, k) coefficients, b: (k, w) data bytes -> (r, w)
    result = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for idx in range(a.shape[1]):
        column = a[:, idx]
        nz = column != 0
        if not nz.any():
            continue
        partial = _MUL_TABLE[column[nz][:, None], b[idx][None, :]]
        result[nz] ^= partial
    return result


def _matmul_python(coefficients: matrix.Matrix, blocks: List[bytes]) -> List[bytes]:
    """Pure-python block math: coefficient rows x byte rows -> byte rows."""
    rows = [list(block) for block in blocks]
    return [bytes(row) for row in matrix.multiply(coefficients, rows)]


class ReedSolomonCode:
    """A systematic ``(n, k)`` Reed-Solomon erasure code.

    Parameters
    ----------
    data_blocks:
        ``k``, the number of original blocks.
    parity_blocks:
        ``m``, the number of redundancy blocks; ``n = k + m``.
    backend:
        Registered matrix-backend name (``"python"`` or ``"numpy"``)
        used for decode-time matrix inversion; ``None`` picks the
        fastest available (see :data:`repro.erasure.matrix.CODEC_BACKENDS`).
    """

    def __init__(self, data_blocks: int, parity_blocks: int, backend=None):
        matrix.get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        if data_blocks < 1:
            raise ValueError(f"k must be >= 1, got {data_blocks}")
        if parity_blocks < 0:
            raise ValueError(f"m must be >= 0, got {parity_blocks}")
        if data_blocks + parity_blocks > gf256.FIELD_SIZE:
            raise ValueError(
                "n = k + m cannot exceed 256 for a GF(256) Cauchy construction, "
                f"got {data_blocks + parity_blocks}"
            )
        self.k = data_blocks
        self.m = parity_blocks
        self.n = data_blocks + parity_blocks
        self._generator = self._build_generator()
        self._generator_np = (
            np.array(self._generator, dtype=np.uint8) if np is not None else None
        )

    def _build_generator(self) -> matrix.Matrix:
        generator = matrix.identity(self.k)
        if self.m:
            xs = list(range(self.k, self.k + self.m))
            ys = list(range(self.k))
            generator.extend(matrix.cauchy(xs, ys))
        return generator

    @property
    def generator_matrix(self) -> matrix.Matrix:
        """The ``n x k`` generator matrix (row ``i`` produces block ``i``)."""
        return matrix.copy(self._generator)

    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length byte blocks into ``n`` blocks.

        The first ``k`` output blocks are the inputs themselves
        (systematic property).
        """
        if len(data_blocks) != self.k:
            raise ErasureCodingError(
                f"expected {self.k} data blocks, got {len(data_blocks)}"
            )
        lengths = {len(block) for block in data_blocks}
        if len(lengths) != 1:
            raise ErasureCodingError("all data blocks must have the same length")
        width = lengths.pop()
        if width == 0:
            return [b"" for _ in range(self.n)]
        blocks = [bytes(data_blocks[i]) for i in range(self.k)]
        if not self.m:
            return blocks
        if np is None:
            blocks.extend(_matmul_python(self._generator[self.k:], blocks))
            return blocks
        data = np.frombuffer(b"".join(data_blocks), dtype=np.uint8)
        data = data.reshape(self.k, width)
        parity = _gf_matmul(self._generator_np[self.k:], data)
        blocks.extend(parity[i].tobytes() for i in range(self.m))
        return blocks

    def decode(self, available: Dict[int, bytes]) -> List[bytes]:
        """Recover the original ``k`` data blocks from any ``k`` coded blocks.

        Parameters
        ----------
        available:
            Mapping from block index (``0 <= index < n``) to block content.
            At least ``k`` entries are required.
        """
        if len(available) < self.k:
            raise ErasureCodingError(
                f"need at least {self.k} blocks to decode, got {len(available)}"
            )
        for index in available:
            if not 0 <= index < self.n:
                raise ErasureCodingError(f"block index {index} out of range 0..{self.n - 1}")
        lengths = {len(block) for block in available.values()}
        if len(lengths) != 1:
            raise ErasureCodingError("all blocks must have the same length")
        width = lengths.pop()

        indices = sorted(available)[: self.k]
        if indices == list(range(self.k)):
            # Fast path: all original blocks survived.
            return [bytes(available[i]) for i in range(self.k)]
        if width == 0:
            return [b"" for _ in range(self.k)]

        coding = matrix.submatrix(self._generator, indices)
        decoder = matrix.invert(coding, backend=self.backend)
        if np is None:
            return _matmul_python(decoder, [available[i] for i in indices])
        stacked = np.frombuffer(
            b"".join(available[i] for i in indices), dtype=np.uint8
        ).reshape(self.k, width)
        recovered = _gf_matmul(np.array(decoder, dtype=np.uint8), stacked)
        return [recovered[i].tobytes() for i in range(self.k)]

    def reconstruct_block(self, available: Dict[int, bytes], index: int) -> bytes:
        """Regenerate one specific block (data or parity) from any ``k`` blocks.

        This is the paper's worst-case repair: decode ``k`` blocks, then
        re-encode the missing one.
        """
        if not 0 <= index < self.n:
            raise ErasureCodingError(f"block index {index} out of range 0..{self.n - 1}")
        if index in available:
            return bytes(available[index])
        data = self.decode(available)
        if index < self.k:
            return data[index]
        width = len(data[0])
        if width == 0:
            return b""
        if np is None:
            return _matmul_python([self._generator[index]], data)[0]
        stacked = np.frombuffer(b"".join(data), dtype=np.uint8).reshape(self.k, width)
        row = self._generator_np[index][None, :]
        return _gf_matmul(row, stacked)[0].tobytes()

    def __repr__(self) -> str:
        return f"ReedSolomonCode(k={self.k}, m={self.m})"
