"""Arithmetic in the Galois field GF(2^8).

Reed-Solomon codes (paper section 2.1) operate over a finite field; the
conventional choice for storage systems is GF(2^8) so that every field
element is one byte.  This module implements the field from first
principles: elements are integers in ``[0, 255]``, addition is XOR, and
multiplication is polynomial multiplication modulo the AES reduction
polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11B).

Log/antilog tables over the generator ``0x03`` accelerate division,
inversion and exponentiation to table lookups; multiplication goes one
step further through a precomputed 256x256 product table
(:data:`MUL_TABLE`), so the inner loops of vector and matrix arithmetic
are single indexed loads with no zero-checks and no index arithmetic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

#: Irreducible reduction polynomial x^8 + x^4 + x^3 + x + 1 (AES polynomial).
REDUCING_POLYNOMIAL = 0x11B

#: Generator of the multiplicative group used to build the log tables.
GENERATOR = 0x03

#: Field order (number of elements).
FIELD_SIZE = 256

#: Order of the multiplicative group.
MULTIPLICATIVE_ORDER = FIELD_SIZE - 1


def _carryless_multiply(a: int, b: int) -> int:
    """Multiply two field elements without tables (schoolbook, for bootstrap)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= REDUCING_POLYNOMIAL
    return result


def _build_tables() -> tuple:
    exp = [0] * (2 * MULTIPLICATIVE_ORDER)
    log = [0] * FIELD_SIZE
    value = 1
    for power in range(MULTIPLICATIVE_ORDER):
        exp[power] = value
        log[value] = power
        value = _carryless_multiply(value, GENERATOR)
    # Duplicate the table so exp[i + j] never needs a modulo for i, j < 255.
    for power in range(MULTIPLICATIVE_ORDER, 2 * MULTIPLICATIVE_ORDER):
        exp[power] = exp[power - MULTIPLICATIVE_ORDER]
    return tuple(exp), tuple(log)


EXP_TABLE, LOG_TABLE = _build_tables()


def _build_mul_table() -> tuple:
    table = [[0] * FIELD_SIZE for _ in range(FIELD_SIZE)]
    for a in range(1, FIELD_SIZE):
        row = table[a]
        log_a = LOG_TABLE[a]
        for b in range(1, FIELD_SIZE):
            row[b] = EXP_TABLE[log_a + LOG_TABLE[b]]
    return tuple(tuple(row) for row in table)


#: Full 256x256 multiplication table: ``MUL_TABLE[a][b] == a * b``.
#: Row 0 and column 0 are zero, so hot loops need no zero special-case;
#: grabbing one row (``MUL_TABLE[scalar]``) turns scalar-vector products
#: into single lookups per element.
MUL_TABLE = _build_mul_table()


def validate_element(value: int) -> int:
    """Return ``value`` if it is a valid field element, else raise ``ValueError``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"GF(256) elements must be ints, got {value!r}")
    if not 0 <= value <= 255:
        raise ValueError(f"GF(256) elements must be in [0, 255], got {value}")
    return value


def add(a: int, b: int) -> int:
    """Field addition (XOR).  Identical to subtraction in GF(2^8)."""
    return a ^ b


def subtract(a: int, b: int) -> int:
    """Field subtraction; in characteristic 2 this equals addition."""
    return a ^ b


def multiply(a: int, b: int) -> int:
    """Field multiplication via the precomputed product table."""
    return MUL_TABLE[a][b]


def divide(a: int, b: int) -> int:
    """Field division ``a / b``; raises ``ZeroDivisionError`` when ``b`` is 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + MULTIPLICATIVE_ORDER]


def inverse(a: int) -> int:
    """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return EXP_TABLE[MULTIPLICATIVE_ORDER - LOG_TABLE[a]]


def power(a: int, exponent: int) -> int:
    """Raise ``a`` to an integer exponent (negative exponents allowed for a != 0)."""
    if exponent == 0:
        return 1
    if a == 0:
        if exponent < 0:
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        return 0
    log_a = LOG_TABLE[a] * exponent % MULTIPLICATIVE_ORDER
    return EXP_TABLE[log_a]


def dot_product(xs: Sequence[int], ys: Sequence[int]) -> int:
    """Inner product of two equal-length vectors over GF(256)."""
    if len(xs) != len(ys):
        raise ValueError(f"vector length mismatch: {len(xs)} != {len(ys)}")
    table = MUL_TABLE
    acc = 0
    for x, y in zip(xs, ys):
        acc ^= table[x][y]
    return acc


def scale_vector(vector: Iterable[int], scalar: int) -> List[int]:
    """Multiply every element of ``vector`` by ``scalar`` (one row lookup)."""
    row = MUL_TABLE[scalar]
    return [row[v] for v in vector]


def add_vectors(xs: Sequence[int], ys: Sequence[int]) -> List[int]:
    """Element-wise sum (XOR) of two equal-length vectors."""
    if len(xs) != len(ys):
        raise ValueError(f"vector length mismatch: {len(xs)} != {len(ys)}")
    return [x ^ y for x, y in zip(xs, ys)]
