"""High-level archive codec: bytes <-> erasure-coded block sets.

The backup layer (paper section 2.2.1) collects user data into fixed-size
archives, splits each archive into ``k`` blocks, pads the last one, and
erasure-codes the ``k`` blocks into ``n``.  This module provides that
byte-level pipeline on top of :class:`~repro.erasure.reed_solomon.ReedSolomonCode`.

Padding uses an explicit length header so that archives whose size is not
a multiple of ``k`` survive a round trip byte-exactly.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List

from .reed_solomon import ErasureCodingError, ReedSolomonCode

#: Header prepended to the archive payload before splitting: payload length.
_LENGTH_HEADER = struct.Struct(">Q")


@dataclass(frozen=True)
class CodedBlock:
    """One erasure-coded block of an archive.

    Attributes
    ----------
    index:
        Position of the block in the code word (``0 <= index < n``).
    payload:
        The block bytes.
    checksum:
        SHA-256 hex digest of the payload, used by restore to detect
        corrupted blocks before attempting a decode.
    """

    index: int
    payload: bytes
    checksum: str

    def verify(self) -> bool:
        """Return ``True`` when the payload matches its checksum."""
        return hashlib.sha256(self.payload).hexdigest() == self.checksum


def _make_block(index: int, payload: bytes) -> CodedBlock:
    return CodedBlock(
        index=index,
        payload=payload,
        checksum=hashlib.sha256(payload).hexdigest(),
    )


class ArchiveCodec:
    """Split archives into ``n`` coded blocks and reassemble them from any ``k``."""

    def __init__(self, data_blocks: int, parity_blocks: int, backend=None):
        self._code = ReedSolomonCode(data_blocks, parity_blocks, backend=backend)

    @property
    def k(self) -> int:
        """Number of blocks required to reassemble an archive."""
        return self._code.k

    @property
    def m(self) -> int:
        """Number of redundancy blocks per archive."""
        return self._code.m

    @property
    def n(self) -> int:
        """Total number of blocks produced per archive."""
        return self._code.n

    def block_size_for(self, archive_size: int) -> int:
        """Size in bytes of each block for an archive of ``archive_size`` bytes."""
        if archive_size < 0:
            raise ValueError("archive size cannot be negative")
        framed = _LENGTH_HEADER.size + archive_size
        return -(-framed // self.k)  # ceiling division

    def split(self, archive: bytes) -> List[CodedBlock]:
        """Encode an archive into its ``n`` coded blocks."""
        framed = _LENGTH_HEADER.pack(len(archive)) + archive
        block_size = self.block_size_for(len(archive))
        padded = framed.ljust(block_size * self.k, b"\x00")
        data_blocks = [
            padded[i * block_size: (i + 1) * block_size] for i in range(self.k)
        ]
        coded = self._code.encode(data_blocks)
        return [_make_block(index, payload) for index, payload in enumerate(coded)]

    def reassemble(self, blocks: Dict[int, CodedBlock]) -> bytes:
        """Rebuild the archive bytes from any ``k`` verified blocks.

        Corrupted blocks (checksum mismatch) are discarded before decoding;
        raises :class:`ErasureCodingError` when fewer than ``k`` intact
        blocks remain.
        """
        intact = {
            index: block.payload
            for index, block in blocks.items()
            if block.verify()
        }
        if len(intact) < self.k:
            raise ErasureCodingError(
                f"only {len(intact)} intact blocks available, need {self.k}"
            )
        data_blocks = self._code.decode(intact)
        framed = b"".join(data_blocks)
        (length,) = _LENGTH_HEADER.unpack_from(framed)
        payload = framed[_LENGTH_HEADER.size: _LENGTH_HEADER.size + length]
        if len(payload) != length:
            raise ErasureCodingError("decoded archive shorter than its declared length")
        return payload

    def repair_block(self, blocks: Dict[int, CodedBlock], index: int) -> CodedBlock:
        """Regenerate a single missing block from any ``k`` intact blocks."""
        intact = {i: b.payload for i, b in blocks.items() if b.verify()}
        payload = self._code.reconstruct_block(intact, index)
        return _make_block(index, payload)

    def __repr__(self) -> str:
        return f"ArchiveCodec(k={self.k}, m={self.m})"
