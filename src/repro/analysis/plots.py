"""ASCII line plots for terminal-friendly figure rendering.

The benchmark harness prints the same series the paper plots; these
helpers render them as monospace charts so "the shape holds" is visible
without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

_MARKERS = "ox+*#@%&"


def _scale(
    value: float, low: float, high: float, size: int, log: bool
) -> int:
    if log:
        value = math.log10(max(value, 1e-12))
        low = math.log10(max(low, 1e-12))
        high = math.log10(max(high, 1e-12))
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(int(position * (size - 1)), size - 1)


def ascii_chart(
    series_by_name: Dict[str, Sequence[Point]],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named series on one shared-canvas ASCII chart."""
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    populated = {
        name: list(points) for name, points in series_by_name.items() if points
    }
    if not populated:
        return f"{title}\n(no data)"

    xs = [p[0] for points in populated.values() for p in points]
    ys = [p[1] for points in populated.values() for p in points]
    if log_y:
        positive = [y for y in ys if y > 0]
        y_low = min(positive) if positive else 1e-3
        y_high = max(positive) if positive else 1.0
    else:
        y_low, y_high = min(ys + [0.0]), max(ys)
    x_low, x_high = min(xs), max(xs)
    if y_high == y_low:
        y_high = y_low + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(sorted(populated.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            if log_y and y <= 0:
                continue
            col = _scale(x, x_low, x_high, width, log=False)
            row = height - 1 - _scale(y, y_low, y_high, height, log=log_y)
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_value = f"{y_high:.3g}"
    bottom_value = f"{y_low:.3g}"
    gutter = max(len(top_value), len(bottom_value), len(y_label)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_value.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_value.rjust(gutter)
        elif row_index == height // 2:
            prefix = y_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|" + "".join(row))
    axis = " " * gutter + "+" + "-" * width
    lines.append(axis)
    x_line = (
        " " * gutter
        + f" {x_low:.3g}".ljust(width // 2)
        + x_label.center(8)
        + f"{x_high:.3g}".rjust(width // 2 - 8)
    )
    lines.append(x_line)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(sorted(populated))
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line trend rendering with block characters."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    step = max(len(values) / width, 1e-9)
    sampled: List[float] = []
    position = 0.0
    while position < len(values) and len(sampled) < width:
        sampled.append(values[int(position)])
        position += step
    low, high = min(sampled), max(sampled)
    if high == low:
        return blocks[0] * len(sampled)
    out = []
    for value in sampled:
        level = int((value - low) / (high - low) * (len(blocks) - 1))
        out.append(blocks[level])
    return "".join(out)
