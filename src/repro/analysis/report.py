"""Textual tables in plain and Markdown layouts.

Every experiment driver renders its result through these helpers, so the
output of ``repro-experiments`` and the rows in EXPERIMENTS.md share one
formatting path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .aggregate import Aggregate


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]], markdown: bool = False
) -> str:
    """Render rows under a header, column-aligned."""
    if any(len(row) != len(header) for row in rows):
        raise ValueError("every row must match the header length")
    cells = [[str(column) for column in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]

    def render_row(row: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        if markdown:
            return "| " + " | ".join(padded) + " |"
        return "  ".join(padded)

    lines = [render_row(list(header))]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_aggregate(aggregate: Aggregate, digits: int = 4) -> str:
    """``mean ± std`` rendering of one aggregate."""
    return f"{aggregate.mean:.{digits}f} ± {aggregate.std:.{digits}f}"


def rates_report(
    rates: Dict[str, Aggregate], metric_name: str, markdown: bool = False
) -> str:
    """Per-category aggregate table for one metric."""
    header = ["category", metric_name, "min", "max", "runs"]
    rows = []
    for category, aggregate in rates.items():
        rows.append(
            [
                category,
                format_aggregate(aggregate),
                f"{aggregate.minimum:.4f}",
                f"{aggregate.maximum:.4f}",
                aggregate.count,
            ]
        )
    return format_table(header, rows, markdown=markdown)


def sweep_report(
    sweep_rates: Dict[int, Dict[str, Aggregate]],
    categories: Sequence[str],
    markdown: bool = False,
) -> str:
    """Figure 1/2 style table: one row per threshold, one column per category."""
    header = ["threshold"] + list(categories)
    rows: List[List[object]] = []
    for threshold in sorted(sweep_rates):
        row: List[object] = [threshold]
        for category in categories:
            aggregate = sweep_rates[threshold].get(category)
            row.append(format_aggregate(aggregate) if aggregate else "-")
        rows.append(row)
    return format_table(header, rows, markdown=markdown)


def dict_report(title: str, values: Dict[str, object], markdown: bool = False) -> str:
    """Key/value table with a title line."""
    table = format_table(
        ["key", "value"],
        [[key, values[key]] for key in values],
        markdown=markdown,
    )
    return f"{title}\n{table}"
