"""Result analysis: aggregation, time-series helpers, ASCII plots, reports."""

from .aggregate import (
    Aggregate,
    aggregate_loss_rates,
    aggregate_metric,
    aggregate_repair_rates,
    axis_rates,
    replication_spec,
    run_replications,
    sweep_rates,
    threshold_sweep,
    threshold_sweep_spec,
)
from .plots import ascii_chart, sparkline
from .report import (
    dict_report,
    format_aggregate,
    format_table,
    rates_report,
    sweep_report,
)
from .series import (
    downsample,
    final_value,
    growth_between,
    is_non_decreasing,
    to_days,
    validate_series,
    value_at,
)
from .stats import (
    ConfidenceInterval,
    bootstrap_mean,
    difference_interval,
    dominates,
    monotone_trend,
    summarize_ratio,
)
from .tuning import ThresholdRecommendation, choose_threshold

__all__ = [
    "Aggregate",
    "aggregate_loss_rates",
    "aggregate_metric",
    "aggregate_repair_rates",
    "axis_rates",
    "replication_spec",
    "run_replications",
    "sweep_rates",
    "threshold_sweep",
    "threshold_sweep_spec",
    "ascii_chart",
    "sparkline",
    "dict_report",
    "format_aggregate",
    "format_table",
    "rates_report",
    "sweep_report",
    "downsample",
    "final_value",
    "growth_between",
    "is_non_decreasing",
    "to_days",
    "validate_series",
    "value_at",
    "ConfidenceInterval",
    "bootstrap_mean",
    "difference_interval",
    "dominates",
    "monotone_trend",
    "summarize_ratio",
    "ThresholdRecommendation",
    "choose_threshold",
]
