"""Aggregation of simulation results across seeds and sweeps.

The paper reports single-run numbers; we replicate each configuration
over several seeds and report means with spread, which makes the shape
claims (ordering of categories, monotonicity in the threshold) testable
statements rather than one-off observations.

Execution goes through :mod:`repro.exec`: the helpers here build
:class:`~repro.exec.ExperimentSpec` objects and consume executor result
sets, so replications and threshold sweeps inherit parallelism and
on-disk result caching from whatever :class:`~repro.exec.SweepExecutor`
the caller supplies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..exec import ExperimentSpec, SweepExecutor, SweepResult
from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult


@dataclass(frozen=True)
class Aggregate:
    """Mean and spread of one scalar across replications."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a non-empty sequence of values."""
        if not values:
            raise ValueError("cannot aggregate zero values")
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        else:
            variance = 0.0
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )


def replication_spec(
    config: SimulationConfig, seeds: Sequence[int]
) -> ExperimentSpec:
    """A gridless spec: one configuration, one cell per seed."""
    if not seeds:
        raise ValueError("at least one seed is required")
    return ExperimentSpec(
        name="replications",
        build=lambda params: config,
        seeds=tuple(seeds),
    )


def run_replications(
    config: SimulationConfig,
    seeds: Sequence[int],
    executor: Optional[SweepExecutor] = None,
) -> List[SimulationResult]:
    """Run one configuration once per seed."""
    executor = executor if executor is not None else SweepExecutor()
    return executor.run(replication_spec(config, seeds)).replications()


def aggregate_metric(
    results: Sequence[SimulationResult],
    extractor: Callable[[SimulationResult], Dict[str, float]],
) -> Dict[str, Aggregate]:
    """Aggregate a per-category metric over replications.

    ``extractor`` maps one result to ``category -> value`` (e.g.
    ``SimulationResult.repair_rates``).
    """
    if not results:
        raise ValueError("no results to aggregate")
    collected: Dict[str, List[float]] = {}
    for result in results:
        for category, value in extractor(result).items():
            collected.setdefault(category, []).append(value)
    return {category: Aggregate.of(values) for category, values in collected.items()}


def aggregate_repair_rates(
    results: Sequence[SimulationResult],
) -> Dict[str, Aggregate]:
    """Figure 1 aggregation: repairs per 1000 peer-rounds per category."""
    return aggregate_metric(results, lambda r: r.repair_rates())


def aggregate_loss_rates(
    results: Sequence[SimulationResult],
) -> Dict[str, Aggregate]:
    """Figure 2 aggregation: losses per 1000 peer-rounds per category."""
    return aggregate_metric(results, lambda r: r.loss_rates())


def threshold_sweep_spec(
    base_config: SimulationConfig,
    thresholds: Sequence[int],
    seeds: Sequence[int],
) -> ExperimentSpec:
    """The figure 1/2 spec: a ``threshold`` axis crossed with seeds."""
    if not thresholds:
        raise ValueError("at least one threshold is required")
    if not seeds:
        raise ValueError("at least one seed is required")
    return ExperimentSpec(
        name="threshold-sweep",
        build=lambda params: base_config.with_threshold(params["threshold"]),
        grid={"threshold": tuple(thresholds)},
        seeds=tuple(seeds),
    )


def threshold_sweep(
    base_config: SimulationConfig,
    thresholds: Sequence[int],
    seeds: Sequence[int],
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, List[SimulationResult]]:
    """Run the figure 1/2 sweep: every threshold x every seed."""
    executor = executor if executor is not None else SweepExecutor()
    sweep = executor.run(threshold_sweep_spec(base_config, thresholds, seeds))
    return sweep.by_axis("threshold")


def sweep_rates(
    sweep: Dict[int, List[SimulationResult]], metric: str
) -> Dict[int, Dict[str, Aggregate]]:
    """Collapse a sweep into ``threshold -> category -> Aggregate``."""
    if metric == "repairs":
        aggregator = aggregate_repair_rates
    elif metric == "losses":
        aggregator = aggregate_loss_rates
    else:
        raise ValueError(f"metric must be 'repairs' or 'losses', got {metric!r}")
    return {
        threshold: aggregator(results) for threshold, results in sweep.items()
    }


def axis_rates(
    sweep: SweepResult, axis: str, metric: str
) -> Dict[object, Dict[str, Aggregate]]:
    """Collapse an executor result set along one grid axis.

    The :class:`~repro.exec.SweepResult` counterpart of
    :func:`sweep_rates`: groups results by ``axis`` value and aggregates
    the chosen metric (``"repairs"`` or ``"losses"``) across seeds.
    """
    return sweep_rates(sweep.by_axis(axis), metric)
