"""Time-series helpers for the cumulative plots (figures 3 and 4)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point = Tuple[float, float]


def validate_series(series: Sequence[Point]) -> None:
    """Check x-monotonicity (sampled series must move forward in time)."""
    for earlier, later in zip(series, series[1:]):
        if later[0] < earlier[0]:
            raise ValueError("series x-values must be non-decreasing")


def is_non_decreasing(series: Sequence[Point]) -> bool:
    """Whether the y-values never decrease (cumulative series must not)."""
    return all(a[1] <= b[1] for a, b in zip(series, series[1:]))


def final_value(series: Sequence[Point]) -> float:
    """Last y-value (0 for an empty series)."""
    return series[-1][1] if series else 0.0


def downsample(series: Sequence[Point], max_points: int) -> List[Point]:
    """Thin a series to at most ``max_points``, keeping first and last."""
    if max_points < 2:
        raise ValueError("max_points must be at least 2")
    if len(series) <= max_points:
        return list(series)
    step = (len(series) - 1) / (max_points - 1)
    indices = {round(i * step) for i in range(max_points)}
    indices.add(len(series) - 1)
    return [series[i] for i in sorted(indices)]


def to_days(series: Sequence[Point], rounds_per_day: int = 24) -> List[Point]:
    """Convert the x-axis from rounds to days (the paper's figure axis)."""
    if rounds_per_day <= 0:
        raise ValueError("rounds_per_day must be positive")
    return [(x / rounds_per_day, y) for x, y in series]


def value_at(series: Sequence[Point], x: float) -> float:
    """Step-interpolated y at ``x`` (0 before the first point)."""
    result = 0.0
    for px, py in series:
        if px <= x:
            result = py
        else:
            break
    return result


def growth_between(series: Sequence[Point], x_start: float, x_end: float) -> float:
    """Increase of the series between two x positions.

    Used to check the paper's figure 4 reading: "between the 1000th and
    the 2000th day [...] the total number of lost archives drop to 2 in
    1000 days".
    """
    if x_end < x_start:
        raise ValueError("x_end must be >= x_start")
    return value_at(series, x_end) - value_at(series, x_start)
