"""The paper's threshold-tuning rule, as an algorithm.

Section 4.2.1: "To decide on a good repair threshold, we have to find a
good compromise between the loss rate and the repair rate.  As the
repair rate is strictly increasing, we can take the smallest value of
threshold with a good loss rate.  148 seems such a good compromise."

:func:`choose_threshold` executes exactly that rule on sweep output
(threshold -> per-category aggregates for both metrics), so the
"very difficult to set otherwise" parameter the related-work section
mentions can be tuned automatically from simulation data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .aggregate import Aggregate


@dataclass(frozen=True)
class ThresholdRecommendation:
    """Outcome of the tuning rule."""

    threshold: int
    loss_rate: float      # total losses /1000 peer-rounds at that threshold
    repair_rate: float    # total repairs /1000 peer-rounds at that threshold
    acceptable_loss: float
    candidates: tuple     # thresholds that met the loss criterion

    def explain(self) -> str:
        """One-paragraph human-readable justification."""
        return (
            f"threshold {self.threshold}: smallest swept value whose loss "
            f"rate ({self.loss_rate:.5f}/1000) is within the acceptable "
            f"level ({self.acceptable_loss:.5f}/1000); repair cost there is "
            f"{self.repair_rate:.4f}/1000. Candidates meeting the loss "
            f"criterion: {list(self.candidates)}."
        )


def _total(rates: Dict[str, Aggregate]) -> float:
    return sum(aggregate.mean for aggregate in rates.values())


def choose_threshold(
    repair_rates: Dict[int, Dict[str, Aggregate]],
    loss_rates: Dict[int, Dict[str, Aggregate]],
    acceptable_loss: float = 0.0,
    tolerance: float = 1e-9,
) -> ThresholdRecommendation:
    """Pick the smallest threshold whose loss rate is acceptable.

    Parameters
    ----------
    repair_rates / loss_rates:
        Sweep outputs (``threshold -> category -> Aggregate``), e.g. from
        :func:`repro.analysis.aggregate.sweep_rates`.
    acceptable_loss:
        The "good loss rate" bound, in losses per 1000 peer-rounds
        (summed over categories).  The paper's implicit choice is
        "flattened out", i.e. indistinguishable from the sweep's floor;
        the default 0.0 with a small tolerance encodes that.
    tolerance:
        Numerical slack added to ``acceptable_loss``.

    Raises ``ValueError`` when the sweeps disagree or are empty; when no
    threshold meets the bound, the one with the lowest loss rate is
    returned (with itself as the only candidate) — the best available
    compromise.
    """
    if set(repair_rates) != set(loss_rates):
        raise ValueError("repair and loss sweeps must cover the same thresholds")
    if not repair_rates:
        raise ValueError("cannot choose from an empty sweep")

    thresholds = sorted(repair_rates)
    floor = min(_total(loss_rates[t]) for t in thresholds)
    bound = max(acceptable_loss, floor) + tolerance

    candidates: List[int] = [
        t for t in thresholds if _total(loss_rates[t]) <= bound
    ]
    if candidates:
        chosen = candidates[0]
    else:  # unreachable with bound >= floor; kept for explicitness
        chosen = min(thresholds, key=lambda t: _total(loss_rates[t]))
        candidates = [chosen]
    return ThresholdRecommendation(
        threshold=chosen,
        loss_rate=_total(loss_rates[chosen]),
        repair_rate=_total(repair_rates[chosen]),
        acceptable_loss=bound,
        candidates=tuple(candidates),
    )
