"""Statistical backing for the shape claims.

The paper reports single simulation runs; this reproduction replicates
over seeds, so its claims ("Newcomers repair more than Elders", "repairs
increase with the threshold") can be tested instead of eyeballed.  This
module provides the two tools the experiment checks use:

* bootstrap confidence intervals on a mean (no normality assumption —
  repair counts at small scales are skewed);
* Mann-Whitney U (via scipy) for "distribution A stochastically
  dominates distribution B" between two groups of per-seed measurements,
  plus Kendall's tau for monotone-trend checks across a threshold sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap interval for a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether a value lies inside the interval."""
        return self.lower <= value <= self.upper

    def excludes_zero(self) -> bool:
        """Whether the interval is strictly one-sided of zero."""
        return self.lower > 0 or self.upper < 0


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean."""
    samples = np.asarray(list(values), dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if resamples < 100:
        raise ValueError("use at least 100 resamples")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    means = samples[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(samples.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def difference_interval(
    group_a: Sequence[float],
    group_b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for ``mean(A) - mean(B)`` (independent groups)."""
    a = np.asarray(list(group_a), dtype=float)
    b = np.asarray(list(group_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both groups need at least one value")
    rng = np.random.default_rng(seed)
    a_means = a[rng.integers(0, a.size, size=(resamples, a.size))].mean(axis=1)
    b_means = b[rng.integers(0, b.size, size=(resamples, b.size))].mean(axis=1)
    diffs = a_means - b_means
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(a.mean() - b.mean()),
        lower=float(np.quantile(diffs, alpha)),
        upper=float(np.quantile(diffs, 1.0 - alpha)),
        confidence=confidence,
    )


def dominates(
    group_a: Sequence[float],
    group_b: Sequence[float],
    significance: float = 0.05,
) -> Tuple[bool, float]:
    """One-sided Mann-Whitney test that A tends to exceed B.

    Returns ``(significant, p_value)``.  With very small groups (the
    usual 2-3 seeds) significance is unattainable; callers should treat
    the p-value as descriptive there.
    """
    a = list(group_a)
    b = list(group_b)
    if not a or not b:
        raise ValueError("both groups need at least one value")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must lie in (0, 1)")
    if len(set(a)) == 1 and set(a) == set(b):
        return False, 1.0  # identical constant groups
    result = stats.mannwhitneyu(a, b, alternative="greater")
    return bool(result.pvalue < significance), float(result.pvalue)


def monotone_trend(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Kendall's tau and p-value for a monotone x-y association.

    Used on threshold sweeps: tau near +1 confirms "repairs increase
    with the repair threshold" without assuming linearity.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if len(xs) < 3:
        raise ValueError("need at least three points for a trend")
    result = stats.kendalltau(list(xs), list(ys))
    return float(result.statistic), float(result.pvalue)


def summarize_ratio(
    numerator: Sequence[float], denominator: Sequence[float]
) -> float:
    """Mean-of-ratios for per-seed paired measurements (e.g. Baby/Elder).

    Pairs with a zero denominator are skipped; an empty result returns
    ``inf`` when any numerator activity exists, else 1.0.
    """
    pairs = [
        (top, bottom)
        for top, bottom in zip(numerator, denominator)
        if bottom > 0
    ]
    if not pairs:
        return float("inf") if any(v > 0 for v in numerator) else 1.0
    return float(np.mean([top / bottom for top, bottom in pairs]))
