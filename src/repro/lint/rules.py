"""The built-in invariant rules (R001–R005).

Each rule is the machine-checked form of one prose invariant from
``docs/ARCHITECTURE.md``; the mapping is documented there ("Invariants
as lint rules").  Rules are deliberately *syntactic*: they inspect the
AST and the import bindings, never runtime types, so a clean run is
fast and a finding always carries an exact ``file:line``.  The price is
a known blind spot — iterating a variable that merely *holds* a set is
invisible to R004 — which the equivalence tests still cover; the rules
exist to catch the write-time mistake, not to replace the tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from .engine import LINT_RULES, Finding, LintRule, Module, ModuleGraph
from .schema import compare_schema, extract_digest_schema, load_manifest

#: Directories whose stochastic/temporal state must flow through
#: ``repro.sim.rng`` (RngStreams / BatchedDraws / the seeded helpers).
R001_DIRS = {"sim", "net", "backup", "churn", "exec", "service"}

#: The one module allowed to construct generator state.
R001_BLESSED_FILE = "rng.py"

#: Wall-clock / entropy calls that make a run irreproducible.
R001_BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
}

#: ``numpy.random`` attributes that seed fresh generator state or draw
#: from the legacy global generator.
R001_NUMPY_STATE = {
    "default_rng",
    "SeedSequence",
    "RandomState",
    "Generator",
    "PCG64",
    "MT19937",
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "integers",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
}


@LINT_RULES.register("R001")
class RngDiscipline(LintRule):
    """All stochastic/temporal state flows through ``repro.sim.rng``."""

    rule_id = "R001"
    name = "rng-discipline"
    title = (
        "no stdlib random, numpy.random seeding, or wall-clock reads in "
        "sim/, net/, backup/, churn/, exec/ outside sim/rng.py"
    )

    def _in_scope(self, module: Module) -> bool:
        if module.advisory:
            # Advisory trees (tests/, benchmarks/) are linted wholesale:
            # a bare `random` in a test helper masks determinism
            # regressions no matter which directory it sits in.
            return True
        if module.filename == R001_BLESSED_FILE and "sim" in module.scope_dirs:
            return False
        return bool(module.scope_dirs & R001_DIRS)

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        advisory = module.advisory
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in ("random", "secrets"):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"import of stdlib '{top}' — all randomness must "
                            "flow through repro.sim.rng (RngStreams / "
                            "BatchedDraws / seeded_generator)",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = module.resolve_import_from(node)
                if target is None:
                    continue
                top = target.split(".")[0]
                if top in ("random", "secrets"):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"import from stdlib '{top}' — all randomness must "
                        "flow through repro.sim.rng",
                    )
                elif target == "numpy.random" and not advisory:
                    banned = [
                        alias.name
                        for alias in node.names
                        if alias.name in R001_NUMPY_STATE
                    ]
                    for name in banned:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"direct import of numpy.random.{name} — construct "
                            "generators via repro.sim.rng.seeded_generator or "
                            "draw from RngStreams",
                        )
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved is None:
                    continue
                reason = R001_BANNED_CALLS.get(resolved)
                if reason is not None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{resolved}() reads {reason}; simulated time is the "
                        "event round — no wall-clock or OS entropy may feed "
                        "simulation state",
                    )
                    continue
                if resolved.startswith("random."):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"stdlib {resolved}() draws from untracked global "
                        "state; use a stream from RngStreams instead",
                    )
                    continue
                if resolved.startswith("numpy.random."):
                    attr = resolved.rpartition(".")[2]
                    if attr not in R001_NUMPY_STATE:
                        continue
                    if advisory and node.args:
                        # In tests, *explicitly seeded* constructors are
                        # deterministic and idiomatic; only the unseeded
                        # form (fresh OS entropy) masks regressions.
                        continue
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{resolved}() constructs fresh generator state; "
                        "route it through repro.sim.rng (RngStreams, "
                        "seeded_generator or seed_sequence)",
                    )


@LINT_RULES.register("R002")
class DigestStability(LintRule):
    """``SimulationConfig`` serialization matches the golden manifest."""

    rule_id = "R002"
    name = "digest-stability"
    title = (
        "SimulationConfig fields and to_dict keys match "
        "docs/digest_schema.json; new fields must be fidelity-gated"
    )

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        if module.advisory or module.filename != "config.py":
            return
        if "sim" not in module.scope_dirs:
            return
        schema = extract_digest_schema(module.tree)
        if schema is None:
            return  # no SimulationConfig here (a fixture's unrelated config.py)
        manifest = load_manifest(graph.digest_schema_path)
        if manifest is None:
            yield self.finding(
                module,
                1,
                f"golden digest manifest {graph.digest_schema_path} is "
                "missing or unreadable; generate it with "
                "'repro-experiments lint --write-schema'",
            )
            return
        for line, message in compare_schema(schema, manifest):
            yield self.finding(module, line, message)


#: Registries whose components may only be *constructed* through
#: ``Registry.get`` outside their defining module.
R003_REGISTRIES = (
    "SELECTION_STRATEGIES",
    "ACCEPTANCE_RULES",
    "LIFETIME_MODELS",
    "CODEC_BACKENDS",
    "EXECUTION_BACKENDS",
    "FIDELITY_BACKENDS",
    "LINT_RULES",
)

_R003_FACT = "r003-registered-components"


def _registered_components(graph: ModuleGraph) -> Dict[str, Tuple[str, str]]:
    """``class name -> (defining module, registry name)`` for the graph.

    Detects both the decorator form (``@REG.register("x")`` on a class)
    and the call form (``REG.register("x", Cls)`` / with an instance
    ``REG.register("x", Cls(...))``).
    """
    cached = graph.facts.get(_R003_FACT)
    if cached is not None:
        return cached
    registered: Dict[str, Tuple[str, str]] = {}

    def registry_of(func: ast.AST) -> Optional[str]:
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "register"
            and isinstance(func.value, ast.Name)
            and func.value.id in R003_REGISTRIES
        ):
            return func.value.id
        return None

    for module in graph:
        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                for decorator in node.decorator_list:
                    if isinstance(decorator, ast.Call):
                        registry = registry_of(decorator.func)
                        if registry is not None:
                            registered[node.name] = (module.name, registry)
            elif isinstance(node, ast.Call):
                registry = registry_of(node.func)
                if registry is None or len(node.args) < 2:
                    continue
                component = node.args[1]
                if isinstance(component, ast.Call) and isinstance(
                    component.func, ast.Name
                ):
                    registered[component.func.id] = (module.name, registry)
                elif isinstance(component, ast.Name):
                    registered[component.id] = (module.name, registry)
    graph.facts[_R003_FACT] = registered
    return registered


@LINT_RULES.register("R003")
class RegistryDiscipline(LintRule):
    """Registered components resolve through ``Registry.get`` only."""

    rule_id = "R003"
    name = "registry-discipline"
    title = (
        "strategies, rules, lifetimes, codecs, execution/fidelity "
        "backends are constructed via Registry.get outside their "
        "defining module"
    )

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        if module.advisory or "tests" in module.scope_dirs:
            return
        registered = _registered_components(graph)
        if not registered:
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                class_name = func.id
            elif isinstance(func, ast.Attribute):
                class_name = func.attr
            else:
                continue
            entry = registered.get(class_name)
            if entry is None:
                continue
            defining_module, registry = entry
            if module.name == defining_module:
                continue
            if isinstance(func, ast.Name):
                if module.defines(class_name):
                    continue  # a local class shadowing the name
                bound = module.bindings.get(class_name)
                if bound is None or not bound.endswith(f".{class_name}"):
                    continue
                origin = bound.rpartition(".")[0]
            else:
                resolved = module.resolve(func)
                if resolved is None or not resolved.endswith(f".{class_name}"):
                    continue
                origin = resolved.rpartition(".")[0]
            origin_module = graph.resolve_module(origin)
            if origin_module is None or origin_module.name != defining_module:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{class_name} is registered in {registry} (defined in "
                f"{defining_module}); outside that module construct it "
                f"through the registry ({registry}.get(name)(...)), so "
                "user-registered components stay first-class",
            )


#: Scope of the ordered-iteration rule: where iteration order feeds RNG
#: draws, event scheduling or lease claiming.
R004_DIRS = {"sim", "net"}
R004_FILES = {"distributed.py"}


def _is_unordered(node: ast.AST) -> bool:
    """Whether an expression syntactically produces an unordered iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "pop",
            "get",
            "setdefault",
        ):
            # dict.get(k, set()) / dict.pop(k, set()): the fallback
            # betrays that the mapping's values are sets.
            return any(_is_unordered(arg) for arg in node.args)
        if isinstance(func, ast.Attribute) and func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@LINT_RULES.register("R004")
class OrderedIteration(LintRule):
    """No iteration over unordered containers in order-sensitive code."""

    rule_id = "R004"
    name = "ordered-iteration"
    title = (
        "no set iteration in sim/, net/ or exec/distributed.py — "
        "iteration order there feeds RNG draws, event scheduling and "
        "lease claiming"
    )

    def _in_scope(self, module: Module) -> bool:
        if module.filename in R004_FILES and "exec" in module.scope_dirs:
            return True
        return bool(module.scope_dirs & R004_DIRS)

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        if not self._in_scope(module):
            return

        def offending(iterable: ast.AST) -> bool:
            return _is_unordered(iterable)

        message = (
            "iterates a set — set order is an implementation detail and "
            "breaks byte-identity across hosts; iterate sorted(...) or "
            "an insertion-ordered structure instead"
        )
        for node in module.walk():
            if isinstance(node, ast.For) and offending(node.iter):
                yield self.finding(module, node.iter.lineno, message)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if offending(generator.iter):
                        yield self.finding(module, generator.iter.lineno, message)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple")
                    and node.args
                    and offending(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        "materialises a set in arbitrary order; wrap it in "
                        "sorted(...) before it can feed anything "
                        "order-sensitive",
                    )


#: Conversions that legitimise float arithmetic feeding an event time.
R005_SANCTIONED_CALLS = ("int", "round_for")


def _float_tainted(node: ast.AST) -> Optional[int]:
    """Line of the first float literal / true division in a subtree.

    Subtrees under ``int(...)`` or ``*.round_for(...)`` are skipped —
    those are the sanctioned float→round conversions.
    """
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in R005_SANCTIONED_CALLS:
            return None
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.lineno
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node.lineno
    for child in ast.iter_child_nodes(node):
        line = _float_tainted(child)
        if line is not None:
            return line
    return None


@LINT_RULES.register("R005")
class EventTimeHygiene(LintRule):
    """Event times are integer rounds; scheduling goes through EventQueue."""

    rule_id = "R005"
    name = "event-time-hygiene"
    title = (
        "no float arithmetic on event times and no heapq outside "
        "sim/events.py — scheduling goes through the EventQueue API"
    )

    def _in_scope(self, module: Module) -> bool:
        if "sim" not in module.scope_dirs:
            return False
        return module.filename != "events.py"

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "heapq":
                        yield self.finding(
                            module,
                            node.lineno,
                            "imports heapq — event scheduling must go "
                            "through the EventQueue API (sim/events.py), "
                            "which owns intra-round ordering",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = module.resolve_import_from(node)
                if target is not None and target.split(".")[0] == "heapq":
                    yield self.finding(
                        module,
                        node.lineno,
                        "imports from heapq — event scheduling must go "
                        "through the EventQueue API (sim/events.py)",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "schedule"
                    and node.args
                ):
                    line = _float_tainted(node.args[0])
                    if line is not None:
                        yield self.finding(
                            module,
                            line,
                            "float arithmetic feeds an event time — rounds "
                            "are integers; convert via int(...) or "
                            "LinkScheduler.round_for(...) before scheduling",
                        )
