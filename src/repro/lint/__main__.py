"""``python -m repro.lint`` — the pre-commit entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
