"""CLI plumbing shared by ``repro-experiments lint`` and ``python -m repro.lint``.

Both surfaces parse the same flags (:func:`add_lint_arguments`) and
dispatch to the same implementation (:func:`run_from_args`), so the CI
lane and a pre-commit hook cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import (
    LINT_RULES,
    default_package_root,
    default_repo_root,
    default_schema_path,
    run_lint,
)
from .schema import write_schema_manifest


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files or directories to lint (default: the installed "
        "src/repro package)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help="run only these rules, by id (R001) or slug "
        "(rng-discipline); default: all registered rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule with its id, slug and "
        "description, then exit",
    )
    parser.add_argument(
        "--include-tests",
        action="store_true",
        help="also lint tests/ and benchmarks/ in advisory mode: their "
        "findings are reported but never affect the exit code",
    )
    parser.add_argument(
        "--write-schema",
        action="store_true",
        help="regenerate the golden digest manifest "
        "(docs/digest_schema.json) from sim/config.py and exit — run "
        "this when a SimulationConfig serialization change is deliberate",
    )
    parser.add_argument(
        "--schema",
        default=None,
        metavar="PATH",
        help="golden digest manifest to check against / write "
        "(default: docs/digest_schema.json next to the repo)",
    )


def _list_rules_text() -> str:
    from . import rules as _builtin  # noqa: F401  (import = registration)

    lines = []
    for rule_id in LINT_RULES.names():
        rule = LINT_RULES.get(rule_id)
        lines.append(f"{rule_id}  {rule.name}")
        lines.append(f"      {rule.title}")
    return "\n".join(lines)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(_list_rules_text())
        return 0

    package_root = default_package_root()
    repo_root = default_repo_root()
    schema_path = Path(args.schema) if args.schema else default_schema_path()

    if args.write_schema:
        config_path = package_root / "sim" / "config.py"
        manifest = write_schema_manifest(config_path, schema_path)
        print(
            f"wrote {schema_path}: "
            f"{len(manifest['dataclass_fields'])} fields, "
            f"{len(manifest['always_serialized'])} always-serialized, "
            f"{len(manifest['conditionally_serialized'])} fidelity-gated keys"
        )
        return 0

    paths = [Path(p) for p in args.paths] if args.paths else [package_root]
    advisory: List[Path] = []
    if args.include_tests:
        for name in ("tests", "benchmarks"):
            candidate = repo_root / name
            if candidate.is_dir():
                advisory.append(candidate)

    report = run_lint(
        paths,
        rules=args.rules,
        advisory_paths=advisory,
        roots={package_root: package_root.parent, repo_root: repo_root},
        repo_root=repo_root,
        schema_path=schema_path,
        graph_paths=[package_root],
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "replint: AST-based enforcement of the repo's determinism, "
            "digest-stability and registry invariants (see "
            "docs/ARCHITECTURE.md, 'Invariants as lint rules')"
        ),
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
