"""The lint engine: module loading, import resolution, rule running.

The engine parses every file it is pointed at with :mod:`ast`, wraps
each in a :class:`Module` (source, tree, import bindings, suppression
comments), links them into a :class:`ModuleGraph` (dotted-name lookup
plus lazy cross-module facts cached by rules), and runs every enabled
rule from :data:`LINT_RULES` over the *target* modules.  Modules can be
enforced (findings fail the run) or *advisory* (findings are reported
but never affect the exit code — how ``--include-tests`` lints the test
suite without gating on it).

Nothing here imports the code under analysis: the whole check is
source-level, which is what keeps a full ``src/repro`` run well under a
second and safe to wire into CI ahead of the test lanes.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..registry import Registry

#: Registry of lint rules, keyed by stable rule id ("R001", ...).
LINT_RULES: Registry[type] = Registry("lint rule")

#: Rule id used for unused-suppression warnings.
UNUSED_SUPPRESSION_ID = "W001"

_SUPPRESSION = re.compile(r"#\s*replint:\s*disable=([A-Za-z0-9_,\s]*)")
_SUPPRESSION_ID = re.compile(r"[A-Za-z]+\d+|all")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule_id: str
    name: str
    path: str
    line: int
    message: str
    advisory: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        tag = " (advisory)" if self.advisory else ""
        return f"{self.location}: {self.rule_id} {self.name}: {self.message}{tag}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "name": self.name,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "advisory": self.advisory,
        }


@dataclass
class _Suppression:
    """A ``# replint: disable=...`` comment and its consumption state."""

    line: int
    rule_ids: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return "all" in self.rule_ids or rule_id in self.rule_ids


class Module:
    """One parsed source file plus the lint-relevant derived facts."""

    def __init__(
        self,
        path: Path,
        name: str,
        source: str,
        tree: ast.Module,
        *,
        relpath: str,
        advisory: bool = False,
        is_package: bool = False,
    ):
        self.path = path
        self.name = name
        self.source = source
        self.tree = tree
        self.relpath = relpath
        self.advisory = advisory
        self.is_package = is_package
        #: Directory-name segments of the relative path (scope checks).
        self.scope_dirs: Set[str] = set(Path(relpath).parts[:-1])
        self.filename = Path(relpath).name
        self.suppressions: Dict[int, _Suppression] = _parse_suppressions(source)
        self.bindings: Dict[str, str] = {}
        self._local_defs: Set[str] = set()
        self._collect_bindings()

    # -- import resolution ---------------------------------------------
    @property
    def package(self) -> str:
        """The package relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    def _collect_bindings(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.bindings[bound] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                self._local_defs.add(node.name)

    def resolve_import_from(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute dotted module an ``ImportFrom`` pulls from."""
        if node.level == 0:
            return node.module
        parts = self.package.split(".") if self.package else []
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def dotted(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted target of a Name/Attribute chain.

        The chain's head is mapped through this module's import
        bindings, so ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``.
        Returns ``None`` for non-chain expressions and for heads that
        are not import-bound (locals, parameters, attributes of self).
        """
        dotted = self.dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.bindings.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def defines(self, name: str) -> bool:
        """Whether the module itself defines class/function ``name``."""
        return name in self._local_defs

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


class ModuleGraph:
    """All loaded modules, addressable by dotted name.

    Rules needing cross-module facts (e.g. which classes are registered
    where) compute them once and cache them on :attr:`facts`.
    """

    def __init__(self, modules: Sequence[Module], digest_schema_path: Optional[Path] = None):
        self.modules: Dict[str, Module] = {m.name: m for m in modules}
        self.digest_schema_path = digest_schema_path
        self.facts: Dict[str, object] = {}

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def resolve_module(self, dotted: str) -> Optional[Module]:
        """The graph module for ``dotted``, exact or by suffix.

        Suffix matching makes absolute imports inside fixture corpora
        (whose computed names carry their directory prefix) resolve.
        """
        module = self.modules.get(dotted)
        if module is not None:
            return module
        suffix = "." + dotted
        candidates = [m for name, m in self.modules.items() if name.endswith(suffix)]
        if len(candidates) == 1:
            return candidates[0]
        return None


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` (stable, ``R``/``W`` + 3 digits),
    :attr:`name` (kebab-case slug) and :attr:`title`, and implement
    :meth:`check_module`.  The engine handles scoping bookkeeping,
    suppressions and advisory demotion.
    """

    rule_id: str = ""
    name: str = ""
    title: str = ""

    def check_module(self, module: Module, graph: ModuleGraph) -> Iterator[Finding]:
        """Yield findings for one module (may consult the whole graph)."""
        return iter(())

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            name=self.name,
            path=module.relpath,
            line=line,
            message=message,
            advisory=module.advisory,
        )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    advisory: List[Finding]
    warnings: List[Finding]
    rules: List[str]
    files: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "rules": self.rules,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "advisory": [f.to_dict() for f in self.advisory],
            "warnings": [f.to_dict() for f in self.warnings],
            "counts": {
                "findings": len(self.findings),
                "advisory": len(self.advisory),
                "warnings": len(self.warnings),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings + self.advisory + self.warnings]
        lines.append(
            f"replint: {len(self.findings)} finding(s), "
            f"{len(self.advisory)} advisory, {len(self.warnings)} warning(s) "
            f"— {len(self.rules)} rule(s) over {self.files} file(s)"
        )
        return "\n".join(lines)


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    """Suppression comments by line, from *actual* comment tokens.

    Tokenizing (rather than regex-scanning raw lines) means the marker
    text can appear in docstrings and string literals — e.g. this
    package's own documentation — without being treated as live.
    """
    suppressions: Dict[int, _Suppression] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            ids = tuple(_SUPPRESSION_ID.findall(match.group(1)))
            suppressions[lineno] = _Suppression(line=lineno, rule_ids=ids)
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse ran first
        pass
    return suppressions


def _iter_files(path: Path) -> List[Path]:
    """Python files under ``path``.

    Directory scans skip ``fixtures/`` subtrees: lint-fixture corpora
    are deliberately-broken snippets (``tests/lint/fixtures/``), linted
    only when pointed at explicitly.
    """
    if path.is_file():
        return [path] if path.suffix == ".py" else []
    return sorted(
        p
        for p in path.rglob("*.py")
        if p.is_file() and "fixtures" not in p.relative_to(path).parts[:-1]
    )


def _module_name(path: Path, root: Path) -> Tuple[str, bool]:
    """Dotted name (relative to ``root``) and whether it is a package."""
    relative = path.resolve().relative_to(root.resolve())
    parts = list(relative.parts)
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) or path.stem, is_package


def load_module(
    path: Path, root: Path, repo_root: Path, advisory: bool = False
) -> Optional[Module]:
    """Parse one file into a :class:`Module` (None on syntax errors)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError, ValueError):
        return None
    name, is_package = _module_name(path, root)
    try:
        relpath = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return Module(
        path=path,
        name=name,
        source=source,
        tree=tree,
        relpath=relpath,
        advisory=advisory,
        is_package=is_package,
    )


def default_package_root() -> Path:
    """The installed ``repro`` package directory (``.../src/repro``)."""
    return Path(__file__).resolve().parent.parent


def default_repo_root() -> Path:
    """The repository root the package runs from (``src``'s parent)."""
    return default_package_root().parent.parent


def default_schema_path() -> Path:
    """Where the golden digest manifest lives (``docs/digest_schema.json``)."""
    return default_repo_root() / "docs" / "digest_schema.json"


def _load_rules(rule_ids: Optional[Sequence[str]]) -> List[LintRule]:
    from . import rules as _builtin  # noqa: F401  (import = registration)

    if rule_ids is None:
        selected = LINT_RULES.names()
    else:
        by_name = {LINT_RULES.get(rid).name: rid for rid in LINT_RULES.names()}
        selected = []
        for requested in rule_ids:
            rid = by_name.get(requested, requested)
            LINT_RULES.check(rid)
            selected.append(rid)
    return [LINT_RULES.get(rid)() for rid in sorted(set(selected))]


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    advisory_paths: Sequence[Path] = (),
    roots: Optional[Dict[Path, Path]] = None,
    repo_root: Optional[Path] = None,
    schema_path: Optional[Path] = None,
    graph_paths: Sequence[Path] = (),
) -> LintReport:
    """Lint ``paths`` (enforced) and ``advisory_paths`` (reported only).

    ``roots`` maps a lint path to the root its module names are computed
    against (defaults to the path's parent, so ``src/repro`` yields
    ``repro.*`` names).  ``graph_paths`` name extra trees to parse into
    the module graph *without* linting them — cross-module rules (R003's
    registration census, R002's config extraction) consult the graph, so
    a subset lint still sees the whole package.
    """
    repo_root = repo_root or default_repo_root()
    roots = dict(roots or {})

    def root_for(path: Path) -> Path:
        for candidate, root in roots.items():
            try:
                path.resolve().relative_to(candidate.resolve())
                return root
            except ValueError:
                continue
        return path if path.is_dir() else path.parent

    loaded: Dict[Path, Module] = {}

    def load_tree(tree_paths: Sequence[Path], advisory: bool, target: bool) -> List[Module]:
        out = []
        for top in tree_paths:
            root = root_for(top)
            for file_path in _iter_files(Path(top)):
                key = file_path.resolve()
                existing = loaded.get(key)
                if existing is not None:
                    if target and existing.advisory and not advisory:
                        existing.advisory = False
                    out.append(existing)
                    continue
                module = load_module(file_path, root, repo_root, advisory=advisory)
                if module is None:
                    continue
                loaded[key] = module
                out.append(module)
        return out

    targets = load_tree(list(paths), advisory=False, target=True)
    targets += load_tree(list(advisory_paths), advisory=True, target=True)
    load_tree(list(graph_paths), advisory=True, target=False)

    graph = ModuleGraph(
        list(loaded.values()),
        digest_schema_path=schema_path or default_schema_path(),
    )
    active_rules = _load_rules(rules)
    enabled_ids = {rule.rule_id for rule in active_rules}

    enforced: List[Finding] = []
    advisory: List[Finding] = []
    warnings: List[Finding] = []
    seen_targets = {module.path.resolve() for module in targets}

    for module in sorted(targets, key=lambda m: m.relpath):
        if module.path.resolve() not in seen_targets:
            continue
        seen_targets.discard(module.path.resolve())
        for rule in active_rules:
            for finding in rule.check_module(module, graph):
                suppression = module.suppressions.get(finding.line)
                if suppression is not None and suppression.covers(finding.rule_id):
                    suppression.used.add(finding.rule_id)
                    continue
                (advisory if finding.advisory else enforced).append(finding)
        for suppression in module.suppressions.values():
            stale = [
                rid
                for rid in suppression.rule_ids
                if (rid in enabled_ids or rid == "all") and rid not in suppression.used
                and not (rid == "all" and suppression.used)
            ]
            for rid in stale:
                warnings.append(
                    Finding(
                        rule_id=UNUSED_SUPPRESSION_ID,
                        name="unused-suppression",
                        path=module.relpath,
                        line=suppression.line,
                        message=(
                            f"suppression for {rid} matches no finding on this "
                            "line; delete the stale comment"
                        ),
                        advisory=True,
                    )
                )

    order = lambda f: (f.path, f.line, f.rule_id)  # noqa: E731
    return LintReport(
        findings=sorted(enforced, key=order),
        advisory=sorted(advisory, key=order),
        warnings=sorted(warnings, key=order),
        rules=sorted(enabled_ids),
        files=len(targets),
    )
