"""Static extraction of the ``SimulationConfig`` digest schema (R002).

The sweep executor's content-addressed cache hashes
``SimulationConfig.to_dict()`` (see ``repro.exec.cache``), so the *set*
of keys that method emits is load-bearing: an unconditionally serialized
new key silently changes every existing digest and orphans every cached
cell.  PR 5 established the conditional-serialization pattern — new
(fidelity-axis) keys are emitted only under
``if self.fidelity != DEFAULT_FIDELITY:`` — and this module extracts
both halves of the contract *from the source text*:

* the dataclass field set of ``SimulationConfig``;
* the keys ``to_dict`` always emits vs. the keys it emits only inside a
  conditional.

R002 diffs that extraction against the committed golden manifest
``docs/digest_schema.json``; ``repro-experiments lint --write-schema``
regenerates the manifest when a change is deliberate, and
``tests/lint/test_schema.py`` cross-checks the static extraction
against the live ``to_dict`` output at both fidelities.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: The class whose serialization the manifest pins.
CONFIG_CLASS = "SimulationConfig"

#: Manifest format version (bump on structural changes).
MANIFEST_VERSION = 1


@dataclass
class DigestSchema:
    """What the source says about the config's serialized shape.

    Values map names to the line they were extracted from, so R002
    findings point at the offending declaration, not at the class.
    """

    class_line: int = 1
    to_dict_line: int = 1
    fields: Dict[str, int] = field(default_factory=dict)
    always: Dict[str, int] = field(default_factory=dict)
    conditional: Dict[str, int] = field(default_factory=dict)

    def to_manifest(self) -> Dict[str, object]:
        """The golden-manifest form of this extraction."""
        return {
            "version": MANIFEST_VERSION,
            "config_class": CONFIG_CLASS,
            "dataclass_fields": sorted(self.fields),
            "always_serialized": sorted(self.always),
            "conditionally_serialized": sorted(self.conditional),
        }


def _string_keys(node: ast.Dict) -> Iterator[Tuple[str, int]]:
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key.value, key.lineno


def _subscript_key(target: ast.AST) -> Optional[Tuple[str, int]]:
    """``("k", line)`` for a ``data["k"] = ...`` assignment target."""
    if not isinstance(target, ast.Subscript):
        return None
    index = target.slice
    if isinstance(index, ast.Index):  # pragma: no cover - py<3.9 form
        index = index.value
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value, target.lineno
    return None


def _walk_to_dict(
    statements: List[ast.stmt], schema: DigestSchema, conditional: bool
) -> None:
    for stmt in statements:
        if isinstance(stmt, ast.If):
            _walk_to_dict(stmt.body, schema, True)
            _walk_to_dict(stmt.orelse, schema, True)
            continue
        if isinstance(stmt, (ast.For, ast.While)):
            _walk_to_dict(stmt.body, schema, True)
            _walk_to_dict(stmt.orelse, schema, True)
            continue
        if isinstance(stmt, ast.With):
            _walk_to_dict(stmt.body, schema, conditional)
            continue
        if isinstance(stmt, ast.Try):
            for body in (stmt.body, stmt.orelse, stmt.finalbody):
                _walk_to_dict(body, schema, conditional)
            for handler in stmt.handlers:
                _walk_to_dict(handler.body, schema, True)
            continue
        bucket = schema.conditional if conditional else schema.always
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                entry = _subscript_key(target)
                if entry is not None:
                    bucket.setdefault(entry[0], entry[1])
            if isinstance(stmt.value, ast.Dict):
                for key, line in _string_keys(stmt.value):
                    bucket.setdefault(key, line)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.value, ast.Dict):
            for key, line in _string_keys(stmt.value):
                bucket.setdefault(key, line)


def extract_digest_schema(tree: ast.Module) -> Optional[DigestSchema]:
    """Extract the digest schema from a parsed config module.

    Returns ``None`` when the module defines no :data:`CONFIG_CLASS`
    (so R002 stays silent on unrelated ``config.py`` files).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            config_class = node
            break
    else:
        return None
    schema = DigestSchema(class_line=config_class.lineno)
    for stmt in config_class.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not (
                isinstance(stmt.annotation, ast.Name)
                and stmt.annotation.id == "ClassVar"
            ) and not (
                isinstance(stmt.annotation, ast.Subscript)
                and isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                schema.fields[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "to_dict":
            schema.to_dict_line = stmt.lineno
            _walk_to_dict(stmt.body, schema, conditional=False)
    return schema


def load_manifest(path: Optional[Path]) -> Optional[Dict[str, object]]:
    """The committed golden manifest, or ``None`` if missing/unreadable."""
    if path is None:
        return None
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def _as_set(manifest: Dict[str, object], key: str) -> frozenset:
    value = manifest.get(key, [])
    if not isinstance(value, (list, tuple)):
        return frozenset()
    return frozenset(str(item) for item in value)


def compare_schema(
    schema: DigestSchema, manifest: Dict[str, object]
) -> List[Tuple[int, str]]:
    """``(line, message)`` pairs for every divergence from the manifest.

    Key order inside ``to_dict`` is deliberately *not* compared: the
    cache serializes with ``sort_keys=True`` (``repro.exec.cache``), so
    only membership and conditionality affect digests.
    """
    manifest_fields = _as_set(manifest, "dataclass_fields")
    manifest_always = _as_set(manifest, "always_serialized")
    manifest_cond = _as_set(manifest, "conditionally_serialized")
    issues: List[Tuple[int, str]] = []

    for key in sorted(schema.always):
        line = schema.always[key]
        if key in manifest_always:
            continue
        if key in manifest_cond:
            issues.append(
                (
                    line,
                    f"to_dict key '{key}' is serialized unconditionally but "
                    "the golden manifest records it as fidelity-gated — "
                    "this changes the cache digest of every existing "
                    "config; restore the 'if self.fidelity != "
                    "DEFAULT_FIDELITY' guard, or regenerate the manifest "
                    "with 'repro-experiments lint --write-schema' if the "
                    "digest break is deliberate",
                )
            )
        else:
            issues.append(
                (
                    line,
                    f"new to_dict key '{key}' is serialized unconditionally, "
                    "which silently changes every cache digest — gate it "
                    "behind the fidelity conditional (the PR 5 pattern) or "
                    "regenerate the manifest with 'repro-experiments lint "
                    "--write-schema' to accept the break",
                )
            )
    for key in sorted(schema.conditional):
        line = schema.conditional[key]
        if key in manifest_cond:
            continue
        if key in manifest_always:
            issues.append(
                (
                    line,
                    f"to_dict key '{key}' became conditionally serialized "
                    "but the manifest records it as unconditional — "
                    "existing digests change; regenerate the manifest with "
                    "--write-schema if this is deliberate",
                )
            )
        else:
            issues.append(
                (
                    line,
                    f"new conditionally serialized to_dict key '{key}' is "
                    "not in the golden manifest; regenerate it with "
                    "'repro-experiments lint --write-schema'",
                )
            )
    emitted = set(schema.always) | set(schema.conditional)
    for key in sorted((manifest_always | manifest_cond) - emitted):
        issues.append(
            (
                schema.to_dict_line,
                f"the golden manifest records to_dict key '{key}' but "
                "to_dict no longer emits it — existing cache digests "
                "change; regenerate the manifest with --write-schema if "
                "the removal is deliberate",
            )
        )
    for name in sorted(set(schema.fields) - manifest_fields):
        issues.append(
            (
                schema.fields[name],
                f"new SimulationConfig field '{name}' is not recorded in "
                "the golden manifest; regenerate it with "
                "'repro-experiments lint --write-schema' (and serialize "
                "the field behind the fidelity guard)",
            )
        )
    for name in sorted(manifest_fields - set(schema.fields)):
        issues.append(
            (
                schema.class_line,
                f"the golden manifest records SimulationConfig field "
                f"'{name}' which no longer exists; regenerate the manifest "
                "with --write-schema",
            )
        )
    issues.sort(key=lambda item: item[0])
    return issues


def extract_from_file(config_path: Path) -> Optional[DigestSchema]:
    """Parse ``config_path`` and extract its digest schema."""
    try:
        tree = ast.parse(Path(config_path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return None
    return extract_digest_schema(tree)


def write_schema_manifest(
    config_path: Path, manifest_path: Path
) -> Dict[str, object]:
    """Regenerate the golden manifest from the config source.

    Returns the written manifest.  Raises ``ValueError`` when the
    source does not define :data:`CONFIG_CLASS`.
    """
    schema = extract_from_file(config_path)
    if schema is None:
        raise ValueError(
            f"{config_path} does not define {CONFIG_CLASS}; cannot write "
            "the digest manifest"
        )
    manifest = schema.to_manifest()
    manifest_path = Path(manifest_path)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return manifest
