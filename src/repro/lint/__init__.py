"""``replint``: AST-based enforcement of the repo's cross-PR invariants.

Every invariant this repository's correctness leans on — same-seed
byte-identity across execution and fidelity backends, config-digest
stability, registry-only component resolution, the RngStreams /
BatchedDraws RNG discipline — is prose in ``docs/ARCHITECTURE.md`` and
is ultimately *checked* by equivalence tests that re-run whole
simulations.  Those tests catch a violation hours after it is written
and say nothing about where it lives.  ``replint`` turns the invariants
into integrity constraints checked against the program text itself (the
deductive-database move: verify the rules against the source, don't
re-derive the model), so a determinism bug localises to a ``file:line``
in well under a second.

Rules are components like everything else in this repo: registered in
:data:`LINT_RULES` (a :class:`repro.registry.Registry`) under their
stable ids, so downstream code can add project-specific rules without
touching this package::

    from repro.lint import LINT_RULES, LintRule

    @LINT_RULES.register("X900")
    class NoPrint(LintRule):
        rule_id = "X900"
        name = "no-print"
        title = "print() is forbidden in library code"
        def check_module(self, module, graph):
            for node in module.walk():
                ...

Surfaces:

* ``repro-experiments lint`` — the CLI subcommand (CI gate);
* ``python -m repro.lint`` — the same entry point for pre-commit hooks;
* :func:`run_lint` — the library API the tests drive.

Suppression: append ``# replint: disable=R001`` (comma-separate ids) to
the offending line.  Suppressions that match no finding are reported as
``W001 unused-suppression`` warnings so they cannot silently outlive
the code they excused.
"""

from __future__ import annotations

from .engine import (
    LINT_RULES,
    Finding,
    LintReport,
    LintRule,
    Module,
    ModuleGraph,
    run_lint,
)
from . import rules as _builtin_rules  # noqa: F401  (import = registration)

__all__ = [
    "LINT_RULES",
    "Finding",
    "LintReport",
    "LintRule",
    "Module",
    "ModuleGraph",
    "run_lint",
]
