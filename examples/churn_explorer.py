#!/usr/bin/env python
"""Churn explorer: why age predicts lifetime (the statistical core).

Generates churn traces from the paper's four behaviour profiles, fits a
Pareto law to the observed lifetimes (the distribution measurement
studies report for deployed P2P systems), and shows the punchline: under
a Pareto law the *expected remaining lifetime grows with age*, so
sorting peers by age is sorting them by expected stability — no
distribution fitting needed at runtime.

Run:  python examples/churn_explorer.py
"""

import numpy as np

from repro.analysis.plots import ascii_chart
from repro.analysis.report import format_table
from repro.churn import ChurnTraceGenerator, PAPER_PROFILES, ROUNDS_PER_DAY
from repro.churn.generator import observed_lifetimes
from repro.core.lifetime import (
    age_is_sufficient_statistic,
    conditional_remaining_curve,
    fit_pareto,
    kaplan_meier,
)


def main() -> None:
    horizon = 300 * ROUNDS_PER_DAY
    generator = ChurnTraceGenerator(
        population=400, horizon=horizon, profiles=PAPER_PROFILES, seed=11
    )
    traces = generator.generate()
    lifetimes = observed_lifetimes(traces, horizon)
    print(f"generated {len(traces)} peer lives over {horizon // ROUNDS_PER_DAY} "
          f"days; {len(lifetimes)} completed lifetimes observed\n")

    # 1. Fit a Pareto law to the completed lifetimes.
    fit = fit_pareto(lifetimes)
    print(f"Pareto MLE: alpha={fit.shape:.3f}, x_m={fit.scale:.0f} rounds "
          f"(n={fit.sample_size})")

    # 2. Kaplan-Meier survival (handles peers still alive at the horizon).
    durations, completed = [], []
    for trace in traces:
        leave = trace.leave_round
        if leave is None or leave > horizon:
            durations.append(horizon - trace.join_round)
            completed.append(False)
        else:
            durations.append(leave - trace.join_round)
            completed.append(True)
    survival = kaplan_meier(durations, completed)
    checkpoints = [7, 30, 90, 180]
    rows = [[f"{d} days", f"{survival.at(d * ROUNDS_PER_DAY):.3f}",
             f"{fit.survival(d * ROUNDS_PER_DAY):.3f}"] for d in checkpoints]
    print("\n" + format_table(
        ["age", "empirical survival", "Pareto-fit survival"], rows))

    # 3. The heuristic's justification: E[remaining | age] grows with age.
    ages = np.linspace(1, 120 * ROUNDS_PER_DAY, 40)
    curve = conditional_remaining_curve(fit, ages)
    curve_days = [(a / ROUNDS_PER_DAY, r / ROUNDS_PER_DAY) for a, r in curve]
    print("\n" + ascii_chart(
        {"E[remaining | age]": curve_days},
        title="expected remaining lifetime (days) vs age (days)",
        x_label="age", y_label="days", height=12,
    ))

    # 4. Ranking by the fitted model == ranking by raw age.
    sample_ages = list(np.linspace(0, 200 * ROUNDS_PER_DAY, 25))
    print("\nranking by fitted remaining lifetime equals ranking by age:",
          age_is_sufficient_statistic(sample_ages, fit))


if __name__ == "__main__":
    main()
