#!/usr/bin/env python
"""Home-backup feasibility: is P2P backup viable on a DSL line?

The scenario the paper's introduction motivates: a home user with a few
gigabytes of photos and documents, an asymmetric DSL line (256 kB/s
down, 32 kB/s up) and no trust in tapes, CD-Rs or storage providers.
This example reruns the paper's section 2.2.4 arithmetic, then checks it
against the simulated repair rates: does the measured maintenance load
fit the link budget?

Run:  python examples/home_backup.py
"""

from repro.analysis.report import format_table
from repro.churn.profiles import ROUNDS_PER_DAY
from repro.experiments.common import QUICK
from repro.net.bandwidth import FTTH, MODERN_DSL, PAPER_DSL, CostModel, MEGABYTE
from repro.sim.engine import run_simulation


def main() -> None:
    backup_gb = 4
    archives = backup_gb * 1024 // 128  # 128 MB archives, like the paper

    print(f"scenario: {backup_gb} GB of personal data = {archives} archives "
          f"of 128 MB (k=128, m=128)\n")

    # 1. The paper's cost arithmetic on three link generations.
    rows = []
    for link in (PAPER_DSL, MODERN_DSL, FTTH):
        model = CostModel(link=link)
        worst = model.repair_cost(regenerated_blocks=128)
        rows.append([
            link.name,
            f"{link.download_bps / 1024:.0f}/{link.upload_bps / 1024:.0f} kB/s",
            f"{worst.total_minutes:.1f} min",
            f"{model.max_repairs_per_day(128):.0f}",
            f"{model.backup_cost_seconds(256) / 3600:.1f} h",
        ])
    print(format_table(
        ["link", "down/up", "worst repair", "max repairs/day", "initial upload"],
        rows,
    ))

    # 2. What the simulation says the repair rate actually is.
    print("\nsimulating the swarm to measure the per-peer repair rate...")
    result = run_simulation(QUICK.config())
    per_1000 = result.repair_rates()
    rows = []
    model = CostModel()
    for category, rate in per_1000.items():
        repairs_per_archive_per_day = rate / 1000 * ROUNDS_PER_DAY
        daily_repairs = repairs_per_archive_per_day * archives
        minutes = daily_repairs * model.repair_cost(64).total_minutes
        rows.append([
            category,
            f"{rate:.3f}",
            f"{repairs_per_archive_per_day:.4f}",
            f"{minutes:.1f} min/day",
        ])
    print(format_table(
        ["category", "repairs/1000 peer-rounds", "repairs/archive/day",
         f"link time for {archives} archives"],
        rows,
    ))

    print("\nreading: established peers stay far below the ~20 repairs/day "
          "ceiling; only newcomers pay a noticeable (and temporary) price — "
          "the paper's viability claim.")


if __name__ == "__main__":
    main()
