#!/usr/bin/env python
"""Quickstart: back up, lose your disk, restore — over a real P2P swarm.

This walks the full byte-level pipeline of the paper's section 2.2 in a
few seconds: a 20-node swarm, one user backing up real files with
Reed-Solomon (k=8, m=8), partners failing, maintenance repairing, and a
from-nothing restore using only the user's id and personal key.

Run:  python examples/quickstart.py
"""

from repro.backup import BackupSwarm, BackupTask, MaintenanceTask, RestoreTask


def main() -> None:
    # 1. A swarm of 20 peers exchanging free disk space.
    swarm = BackupSwarm(
        data_blocks=8,        # k: blocks needed to restore
        parity_blocks=8,      # m: redundancy blocks (n = 16 total)
        quota_blocks=64,      # free space each peer offers
        seed=42,
    )
    nodes = [swarm.add_node() for _ in range(20)]
    swarm.tick(24)  # a day passes; ages start to differ from zero
    owner = nodes[0]

    # 2. Back up some files.
    files = {
        "photos/cat.jpg": b"\x89JPEG-ish bytes " * 300,
        "documents/thesis.tex": b"\\section{Lifetime estimations}" * 120,
        "mail/inbox.mbox": bytes(range(256)) * 40,
    }
    report = BackupTask(owner, archive_size=4096).run(files)
    print(f"backed up {len(files)} files into {len(report.placements)} archives "
          f"(complete={report.complete}, "
          f"master block on {report.master_block_replicas} DHT replicas)")

    # 3. Churn: a third of the partners disappear.
    partners = sorted({p for placement in report.placements
                       for p in placement.partners if p >= 0})
    for victim in partners[: len(partners) // 3]:
        swarm.set_online(victim, False)
    print(f"{len(partners) // 3} of {len(partners)} partners went offline")

    # 4. Maintenance notices and repairs (download k, re-encode, re-upload).
    maintenance = MaintenanceTask(owner).run()
    print(f"maintenance: {maintenance.repairs} archive(s) repaired, "
          f"{sum(len(a.regenerated_blocks) for a in maintenance.archives)} "
          f"block(s) regenerated")

    # 5. Disaster: the owner loses everything but its key.
    owner.local_archives.clear()
    restored = RestoreTask(swarm, owner.peer_id, owner.user_key).run()
    assert restored.files == files, "restore must be byte-exact"
    print(f"restored {len(restored.files)} files byte-exactly "
          f"from {len(restored.restored_archives)} archives. ✓")


if __name__ == "__main__":
    main()
