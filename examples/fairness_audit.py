#!/usr/bin/env python
"""Fairness audit: who contributes, who free-rides?

The paper's backup task notes (§2.2.1) that partners exchange space
directly, or through a global fairness policy.  This example runs a
small swarm where every node backs up its own files, then audits both
accountings: the pairwise exchange ledgers (Samsara-style debt) and the
global contributed/consumed ratios, including a deliberately greedy node
that backs up three times more than anyone else.

Run:  python examples/fairness_audit.py
"""

from repro.analysis.report import format_table
from repro.backup import BackupSwarm, BackupTask, GlobalFairness


def main() -> None:
    swarm = BackupSwarm(
        data_blocks=4,
        parity_blocks=4,
        quota_blocks=80,
        seed=21,
        fairness_factor=2.0,   # a partner may use up to 2x what it provides
    )
    nodes = [swarm.add_node() for _ in range(14)]
    swarm.tick(24)

    # Everyone backs up something; node 0 is greedy.
    fairness = GlobalFairness()
    for node in nodes:
        copies = 3 if node.peer_id == 0 else 1
        files = {
            f"user{node.peer_id}/file{i}": bytes([node.peer_id + i]) * 700
            for i in range(copies)
        }
        report = BackupTask(node, archive_size=2048).run(files)
        for placement in report.placements:
            placed = sum(1 for p in placement.partners if p >= 0)
            fairness.record_placement(node.peer_id, placed)
            for partner in placement.partners:
                if partner >= 0:
                    fairness.record_hosting(partner, 1)
        swarm.tick(2)

    # 1. Global view: contribution ratios.
    rows = []
    for node in nodes:
        rows.append([
            node.peer_id,
            fairness.consumed.get(node.peer_id, 0),
            fairness.contributed.get(node.peer_id, 0),
            f"{min(fairness.ratio(node.peer_id), 99.0):.2f}",
        ])
    print(format_table(["peer", "blocks placed", "blocks hosted", "ratio"], rows))
    print(f"\nfree riders (ratio < 0.5): {fairness.free_riders(0.5)}")
    print(f"contribution inequality (Gini): {fairness.gini_coefficient():.3f}")

    # 2. Pairwise view: the greedy node's debts as its partners see them.
    greedy = nodes[0]
    debt_rows = []
    for node in nodes[1:]:
        balance = node.ledger.balance_with(greedy.peer_id)
        if balance.stored_for_partner or balance.stored_by_partner:
            debt_rows.append([
                node.peer_id,
                balance.stored_for_partner,
                balance.stored_by_partner,
                balance.debt,
            ])
    print("\npartners' ledgers against the greedy node 0:")
    print(format_table(
        ["partner", "holds for 0", "0 holds for them", "node 0's debt"],
        debt_rows,
    ))
    print("\nwith fairness_factor=2.0 the swarm refuses further blocks from "
          "a partner whose debt exceeds 2x its reciprocity plus the "
          "bootstrap grace — the enforcement the §2.2.1 exchange mechanism "
          "implies.")


if __name__ == "__main__":
    main()
