#!/usr/bin/env python
"""Scenario lab: compose, register and sweep custom workloads.

Demonstrates the registry + `Scenario` builder API introduced by the
composition redesign: build a workload by chaining named components,
register your own churn mix and selection strategy without touching any
core module, and sweep several scenarios as one cached experiment axis.

Run:  PYTHONPATH=src python examples/scenario_lab.py
"""

from repro.churn.profiles import Profile, register_mix
from repro.core.selection import SELECTION_STRATEGIES, SelectionStrategy
from repro.exec import ExperimentSpec, SweepExecutor
from repro.scenarios import Scenario, register_scenario, scenario_by_name


@SELECTION_STRATEGIES.register("middle_aged")
class MiddleAgedSelection(SelectionStrategy):
    """A deliberately contrarian strategy: prefer the median ages.

    Old peers are already heavily loaded under age selection; this
    strategy spreads blocks over the middle of the stability spectrum.
    """

    name = "middle_aged"

    def rank(self, candidates, rng):
        jitter = rng.random(len(candidates))
        ages = sorted(candidate.age for candidate in candidates)
        median = ages[len(ages) // 2] if ages else 0.0
        order = sorted(
            range(len(candidates)),
            key=lambda i: (abs(candidates[i].age - median), jitter[i]),
        )
        return [candidates[i].peer_id for i in order]


def main() -> None:
    # 1. A custom churn mix, registered under a stable name.
    register_mix("lab_bimodal", (
        Profile("Rock", 0.25, None, 0.92, mean_online_session=240.0),
        Profile("Flit", 0.75, (48, 480), 0.45, mean_online_session=8.0),
    ))

    # 2. A scenario composed from registered parts — and registered
    #    itself, so `repro-experiments run --scenario lab` would work too.
    lab = (
        Scenario.scaled(population=300, rounds=2500)
        .named("lab", "bimodal churn under middle-aged selection")
        .with_churn("lab_bimodal")
        .with_selection("middle_aged")
        .with_seed(7)
    )
    register_scenario(lab)

    print(lab.describe())
    result = lab.run()
    print(f"-> repairs={result.metrics.total_repairs} "
          f"losses={result.metrics.total_losses} deaths={result.deaths}\n")

    # 3. Sweep shipped presets against it through the cached executor.
    names = ["flash_crowd", "slow_decay", "lab"]
    shrunk = []
    for name in names:
        scenario = (
            scenario_by_name(name)
            .with_population(200)
            .with_rounds(1500)
            .named(f"lab-sweep-{name}")
        )
        register_scenario(scenario)
        shrunk.append(scenario.name)

    spec = ExperimentSpec.from_scenarios(shrunk, seeds=(0, 1), name="lab-sweep")
    sweep = SweepExecutor(workers=1).run(spec)
    print("scenario sweep (means over 2 seeds):")
    for name, results in sweep.by_axis("scenario").items():
        repairs = sum(r.metrics.total_repairs for r in results) / len(results)
        losses = sum(r.metrics.total_losses for r in results) / len(results)
        print(f"  {name:>24}: repairs={repairs:8.1f} losses={losses:6.2f}")


if __name__ == "__main__":
    main()
