#!/usr/bin/env python
"""Observer study: how much does being old save you? (figure 3).

Plants the paper's five fixed-age observers (Baby = 1 hour ... Elder =
the 90-day cap) into a churning swarm and counts their repairs.  The
Baby pays dearly for partnering with whoever will have it; the Elder
barely repairs at all — the heart of the paper's result.

Run:  python examples/observer_study.py  [--scale quick|default]
"""

import argparse

from repro.experiments.common import scale_by_name
from repro.experiments.fig3_observer_repairs import check_shape, run_figure3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick",
                        help="experiment scale (quick/default/full)")
    args = parser.parse_args()
    scale = scale_by_name(args.scale)

    result = run_figure3(scale=scale)
    print(result.render())

    totals = result.totals()
    baby, elder = totals.get("Baby", 0.0), totals.get("Elder", 1.0)
    print(f"\nBaby repaired {baby:.0f} times; Elder {elder:.0f} times "
          f"({baby / max(elder, 1):.1f}x).")
    print("paper (full scale, 2000 days): Baby ~900, Teenager <100, "
          "Adult <20, Senior/Elder <10.")
    problems = check_shape(result)
    print("shape:", "OK" if not problems else problems)


if __name__ == "__main__":
    main()
