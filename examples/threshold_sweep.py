#!/usr/bin/env python
"""Threshold sweep: the repair-rate / loss-rate trade-off (figures 1 & 2).

Reproduces the paper's central tuning question at laptop scale: sweep
the repair threshold k' and watch repairs grow while losses shrink —
then pick the compromise (the paper chooses 148 for k=128, n=256).

Run:  python examples/threshold_sweep.py  [--scale quick|default]
"""

import argparse

from repro.analysis.tuning import choose_threshold
from repro.experiments.common import scale_by_name
from repro.experiments.fig1_repairs_by_threshold import check_shape as check_fig1
from repro.experiments.fig1_repairs_by_threshold import run_figure1
from repro.experiments.fig2_losses_by_threshold import run_figure2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick",
                        help="experiment scale (quick/default/full)")
    args = parser.parse_args()
    scale = scale_by_name(args.scale)

    print(f"sweeping thresholds at scale={scale.name} "
          f"(k={scale.data_blocks}, n={scale.total_blocks}, "
          f"population={scale.population}, rounds={scale.rounds})\n")

    fig1 = run_figure1(scale=scale)
    print(fig1.render())
    problems = check_fig1(fig1)
    print("\nfigure 1 shape:", "OK" if not problems else problems)

    print()
    fig2 = run_figure2(scale=scale)
    print(fig2.render())

    # The paper's conclusion, executed on our data: pick the smallest
    # threshold whose loss rate has flattened out.
    recommendation = choose_threshold(fig1.rates, fig2.rates)
    print("\npaper's tuning rule, applied:")
    print("  " + recommendation.explain())


if __name__ == "__main__":
    main()
