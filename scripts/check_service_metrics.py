#!/usr/bin/env python
"""The service-smoke gate: boot a real server, assert the ops schema.

CI's ``service-smoke`` lane runs this after the roundtrip tests.  It
boots ``SweepService`` behind the real HTTP layer on an ephemeral
port, submits one tiny sweep, waits for it, then scrapes ``/metrics``
and ``/queue`` and validates the structured-JSON event schema those
endpoints promise (docs/ARCHITECTURE.md, "The sweep service") —
every key an operator's dashboard would graph must be present with
the right shape.  Exit status is non-zero on any mismatch, so the ops
surface cannot drift from its documentation silently.

Usage::

    PYTHONPATH=src python scripts/check_service_metrics.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
from typing import List

#: One sub-second sweep: enough to light up every counter.
PAYLOAD = {
    "scenario": "paper",
    "scale": "quick",
    "population": 60,
    "rounds": 300,
    "seeds": [0],
}

#: /metrics: top-level key -> required sub-keys (None = scalar/list).
METRICS_SCHEMA = {
    "event": None,
    "ts": None,
    "queue": ("queued", "leased", "published", "done", "failed"),
    "queue_depth": None,
    "jobs": ("submitted", "duplicate", "completed", "failed", "stolen"),
    "requests": ("total", "throttled", "per_second", "window_seconds"),
    "cells": ("simulated", "from_cache", "cache_hit_ratio"),
    "cache": ("entries", "size_bytes"),
    "leases": ("jobs", "cells"),
    "quotas": None,
}

#: /queue: required keys of the document and of each job row.
QUEUE_KEYS = ("event", "ts", "depth", "jobs")
QUEUE_JOB_KEYS = (
    "job_id", "state", "client", "spec", "cells", "worker",
    "age_seconds", "error",
)


def check_schema(document: dict, schema: dict, label: str) -> List[str]:
    problems = []
    for key, subkeys in schema.items():
        if key not in document:
            problems.append(f"{label}: missing key {key!r}")
            continue
        if subkeys is None:
            continue
        value = document[key]
        if not isinstance(value, dict):
            problems.append(f"{label}.{key}: expected an object")
            continue
        for subkey in subkeys:
            if subkey not in value:
                problems.append(f"{label}.{key}: missing key {subkey!r}")
    return problems


def main() -> int:
    from repro.exec import ResultCache
    from repro.service.client import ServiceClient
    from repro.service.server import SweepService, make_server

    problems: List[str] = []
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as scratch:
        service = SweepService(
            ResultCache(scratch), workers=1, poll_interval=0.02
        )
        service.start()
        server = make_server(service)
        host, port = server.server_address[:2]
        threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.02},
            daemon=True,
        ).start()
        try:
            client = ServiceClient(
                f"http://{host}:{port}", client_id="service-smoke"
            )
            record = client.submit_and_wait(PAYLOAD, timeout=300)
            if record["state"] != "done":
                problems.append(f"job ended {record['state']!r}, not done")
            if not client.raw_result(record["job_id"]):
                problems.append("finished job returned an empty result body")

            metrics = client.metrics()
            problems += check_schema(metrics, METRICS_SCHEMA, "/metrics")
            if metrics.get("event") != "service_metrics":
                problems.append(
                    f"/metrics.event is {metrics.get('event')!r}, "
                    "expected 'service_metrics'"
                )
            jobs = metrics.get("jobs", {})
            if isinstance(jobs, dict) and not jobs.get("submitted"):
                problems.append("/metrics.jobs.submitted never incremented")
            requests = metrics.get("requests", {})
            if isinstance(requests, dict) and not requests.get("total"):
                problems.append("/metrics.requests.total never incremented")

            queue = client.queue()
            for key in QUEUE_KEYS:
                if key not in queue:
                    problems.append(f"/queue: missing key {key!r}")
            if queue.get("event") != "service_queue":
                problems.append(
                    f"/queue.event is {queue.get('event')!r}, "
                    "expected 'service_queue'"
                )
            for row in queue.get("jobs", []):
                for key in QUEUE_JOB_KEYS:
                    if key not in row:
                        problems.append(f"/queue job row: missing {key!r}")
                break  # one row carries the schema
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    for problem in problems:
        print(f"FAIL {problem}")
    print(
        f"check_service_metrics: {len(problems)} problem(s) "
        "(submit -> wait -> /metrics + /queue schema)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
