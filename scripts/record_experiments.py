#!/usr/bin/env python
"""Run the recorded experiment suite and dump raw results for EXPERIMENTS.md.

One process, default scale, every figure and ablation; figures 1 and 2
share a single threshold sweep.  Output is plain text on stdout.
"""

import time

from repro.analysis.aggregate import sweep_rates, threshold_sweep
from repro.analysis.report import sweep_report
from repro.experiments.ablation_grace import run_ablation_grace
from repro.experiments.ablation_proactive import run_ablation_proactive
from repro.experiments.ablation_quota import run_ablation_quota
from repro.experiments.ablation_selection import (
    check_shape as check_a1,
    run_ablation_selection,
)
from repro.experiments.common import DEFAULT, PAPER_THRESHOLDS
from repro.experiments.fig1_repairs_by_threshold import (
    Figure1Result,
    check_shape as check_fig1,
)
from repro.experiments.fig2_losses_by_threshold import (
    Figure2Result,
    check_shape as check_fig2,
)
from repro.experiments.fig3_observer_repairs import (
    check_shape as check_fig3,
    run_figure3,
)
from repro.experiments.fig4_cumulative_losses import (
    check_shape as check_fig4,
    run_figure4,
)


def banner(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def main():
    started = time.time()
    scale = DEFAULT

    banner("F1 + F2 — threshold sweep (shared runs)")
    base = scale.config()
    thresholds = scale.thresholds(PAPER_THRESHOLDS)
    print(f"mapped thresholds: {thresholds} (from paper {PAPER_THRESHOLDS})")
    sweep = threshold_sweep(base, thresholds, scale.seeds)
    categories = base.categories.names()

    fig1 = Figure1Result(
        scale_name=scale.name,
        thresholds=list(thresholds),
        paper_thresholds=list(PAPER_THRESHOLDS),
        rates=sweep_rates(sweep, "repairs"),
        categories=categories,
    )
    print(fig1.render())
    print("fig1 shape:", check_fig1(fig1) or "OK", flush=True)

    fig2 = Figure2Result(
        scale_name=scale.name,
        thresholds=list(thresholds),
        rates=sweep_rates(sweep, "losses"),
        categories=categories,
    )
    print(fig2.render())
    print("fig2 shape:", check_fig2(fig2) or "OK", flush=True)

    banner("F3 — observers")
    fig3 = run_figure3(scale=scale)
    print(fig3.render())
    print("fig3 shape:", check_fig3(fig3) or "OK", flush=True)

    banner("F4 — cumulative losses")
    fig4 = run_figure4(scale=scale)
    print(fig4.render())
    print("fig4 shape:", check_fig4(fig4) or "OK", flush=True)

    banner("A1 — selection strategies")
    a1 = run_ablation_selection(scale=scale, seeds=(0,))
    print(a1.render())
    print("a1 shape:", check_a1(a1) or "OK", flush=True)

    banner("A2 — quota")
    print(run_ablation_quota(scale=scale, seeds=(0,)).render(), flush=True)

    banner("A3 — grace")
    print(run_ablation_grace(scale=scale, seeds=(0,)).render(), flush=True)

    banner("A4 — proactive")
    print(run_ablation_proactive(scale=scale, seeds=(0,)).render(), flush=True)

    print(f"\ntotal wall clock: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
