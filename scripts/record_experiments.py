#!/usr/bin/env python
"""Run the recorded experiment suite and dump raw results for EXPERIMENTS.md.

Default scale, every figure and ablation, all through one
:class:`~repro.exec.SweepExecutor`: ``--workers N`` fans simulation
cells over a process pool, figures 1 and 2 (identical threshold sweeps)
cost one set of simulations through the executor's cell memo, and the
on-disk result cache means re-running the script only simulates what
changed.  Output is plain text on stdout.
"""

import argparse
import time

from repro.exec import ResultCache, SweepExecutor
from repro.experiments.runner import _positive_int
from repro.experiments.ablation_adaptive import (
    check_shape as check_a5,
    run_ablation_adaptive,
)
from repro.experiments.ablation_grace import run_ablation_grace
from repro.experiments.ablation_proactive import run_ablation_proactive
from repro.experiments.ablation_quota import run_ablation_quota
from repro.experiments.ablation_selection import (
    check_shape as check_a1,
    run_ablation_selection,
)
from repro.experiments.common import DEFAULT
from repro.experiments.fig1_repairs_by_threshold import (
    check_shape as check_fig1,
    run_figure1,
)
from repro.experiments.fig2_losses_by_threshold import (
    check_shape as check_fig2,
    run_figure2,
)
from repro.experiments.fig3_observer_repairs import (
    check_shape as check_fig3,
    run_figure3,
)
from repro.experiments.fig4_cumulative_losses import (
    check_shape as check_fig4,
    run_figure4,
)


def banner(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="concurrent simulation cells (process pool)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="on-disk result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    args = parser.parse_args()

    started = time.time()
    scale = DEFAULT
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    executor = SweepExecutor(workers=args.workers, cache=cache)

    banner("F1 — threshold sweep, repairs")
    fig1 = run_figure1(scale=scale, executor=executor)
    print(fig1.render())
    print("fig1 shape:", check_fig1(fig1) or "OK", flush=True)

    # Identical sweep cells: the executor's memo means F2 simulates
    # nothing new, cache or no cache.
    banner("F2 — threshold sweep, losses")
    fig2 = run_figure2(scale=scale, executor=executor)
    print(fig2.render())
    print("fig2 shape:", check_fig2(fig2) or "OK", flush=True)

    banner("F3 — observers")
    fig3 = run_figure3(scale=scale, executor=executor)
    print(fig3.render())
    print("fig3 shape:", check_fig3(fig3) or "OK", flush=True)

    banner("F4 — cumulative losses")
    fig4 = run_figure4(scale=scale, executor=executor)
    print(fig4.render())
    print("fig4 shape:", check_fig4(fig4) or "OK", flush=True)

    banner("A1 — selection strategies")
    a1 = run_ablation_selection(scale=scale, seeds=(0,), executor=executor)
    print(a1.render())
    print("a1 shape:", check_a1(a1) or "OK", flush=True)

    banner("A2 — quota")
    print(run_ablation_quota(scale=scale, seeds=(0,),
                             executor=executor).render(), flush=True)

    banner("A3 — grace")
    print(run_ablation_grace(scale=scale, seeds=(0,),
                             executor=executor).render(), flush=True)

    banner("A4 — proactive")
    print(run_ablation_proactive(scale=scale, seeds=(0,),
                                 executor=executor).render(), flush=True)

    banner("A5 — adaptive thresholds")
    a5 = run_ablation_adaptive(scale=scale, seeds=(0,), executor=executor)
    print(a5.render())
    print("a5 shape:", check_a5(a5) or "OK", flush=True)

    stats = executor.stats
    print(f"\n[executor] {stats.cells} cells: {stats.simulated} simulated, "
          f"{stats.cache_hits} from cache ({args.workers} worker(s))")
    print(f"total wall clock: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
