#!/usr/bin/env python
"""Gate engine benchmarks against the committed perf trajectory.

The CI ``bench-smoke`` lane runs ``benchmarks/bench_engine.py`` at quick
scale with ``--bench-json`` pointed at a *fresh* file, then calls this
script to compare the fresh means against the latest committed baseline
in ``BENCH_engine.json``.  A scenario whose fresh mean exceeds
``tolerance`` x its baseline mean fails the lane — the structure-of-
arrays backend (ISSUE 6) must not quietly give back its speedup.

Both files use the trajectory record format ``benchmarks/conftest.py``
writes: a JSON list of ``{bench, scenario, mean_s, stdev_s, commit}``
objects, newest last.  The *last* record per scenario wins on both
sides.  A scenario with no committed baseline passes with a notice
(there is nothing to regress against on the commit that introduces it).

Usage::

    python scripts/check_bench_regression.py --fresh /tmp/bench-fresh.json
    python scripts/check_bench_regression.py \
        --fresh /tmp/bench-fresh.json --scenario paper-soa-quick \
        --tolerance 1.2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The scenarios the bench-smoke lane gates by default: the quick-scale
#: structure-of-arrays bench plus the default-scale soa workload the
#: ISSUE 10 toggle-kernel work optimised (a few seconds per repeat, so
#: it fits the lane).  Gating every legacy bench against means committed
#: from different hardware would make the lane flaky; the gate exists to
#: keep the ISSUE 6/10 speedups from quietly eroding.
DEFAULT_SCENARIOS = ("paper-soa-quick", "paper-soa-default-scale")

DEFAULT_TOLERANCE = 1.2


def latest_means(path: Path) -> Dict[str, float]:
    """The last recorded mean per scenario label in a trajectory file."""
    records = json.loads(path.read_text() or "[]")
    means: Dict[str, float] = {}
    for record in records:
        scenario = record.get("scenario")
        if scenario:
            means[scenario] = float(record["mean_s"])
    return means


def check(
    fresh: Path,
    baseline: Path,
    scenarios,
    tolerance: float,
) -> int:
    fresh_means = latest_means(fresh)
    baseline_means = latest_means(baseline) if baseline.exists() else {}
    failures = 0
    for scenario in scenarios:
        measured: Optional[float] = fresh_means.get(scenario)
        committed: Optional[float] = baseline_means.get(scenario)
        if measured is None:
            print(f"FAIL  {scenario}: no fresh measurement in {fresh}")
            failures += 1
            continue
        if committed is None:
            print(
                f"pass  {scenario}: {measured:.3f}s "
                "(no committed baseline; nothing to regress against)"
            )
            continue
        limit = committed * tolerance
        ratio = measured / committed if committed else float("inf")
        verdict = "pass" if measured <= limit else "FAIL"
        print(
            f"{verdict}  {scenario}: {measured:.3f}s vs baseline "
            f"{committed:.3f}s ({ratio:.2f}x, limit {tolerance:.2f}x)"
        )
        if verdict == "FAIL":
            failures += 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="trajectory file the just-finished bench run wrote",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="committed trajectory to gate against (default: %(default)s)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario label to gate (repeatable; default: "
        + ", ".join(DEFAULT_SCENARIOS)
        + ")",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fail when fresh mean exceeds tolerance x baseline mean "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    scenarios = tuple(args.scenarios) if args.scenarios else DEFAULT_SCENARIOS
    return check(args.fresh, args.baseline, scenarios, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
