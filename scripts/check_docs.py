#!/usr/bin/env python
"""Keep the documentation honest: link-check + smoke-execute snippets.

Two passes over the repo's markdown:

1. **Link check** (always): every relative link target in every
   markdown file must exist on disk.  ``http(s)``/``mailto`` links are
   validated for shape only — CI must not depend on the network.
2. **Snippet execution** (``--execute``): fenced code blocks in
   README.md and EXPERIMENTS.md actually run, rewritten to smoke scale:

   * ``console`` blocks: each ``$ `` command (with backslash
     continuations) is parsed; ``repro-experiments ...`` and
     ``python -m repro.experiments.runner ...`` invocations run via the
     current interpreter with ``PYTHONPATH=src``, with ``--scale``
     forced to ``quick``, ``--workers`` capped at 2, ``--cache-dir``
     redirected to a temp dir, population/rounds capped, and
     placeholders like ``<cores>`` substituted.  ``pytest``/``pip``
     commands and anything unrecognised are skipped (reported).
   * ``python`` blocks are concatenated per file, in order, and run as
     one script under ``PYTHONPATH=src`` — they model a reader
     following the document top to bottom, so a later block may use
     names an earlier one registered.

   A ``<!-- check-docs: skip-exec -->`` HTML comment on the line
   before a fence skips execution of that block (it is still
   link-checked); use it for illustrative fragments that cannot run.

Exit status is non-zero on any broken link, failed snippet, or
skipped-because-unparseable console command in an executed file, so CI
fails when the docs rot.

Usage::

    python scripts/check_docs.py                 # link check only
    python scripts/check_docs.py --execute       # CI docs lane
    python scripts/check_docs.py README.md       # subset
"""

from __future__ import annotations

import argparse
import os
import re
import shlex
import socket
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlparse

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose snippets run under --execute (the operational docs).
EXECUTED_FILES = ("README.md", "EXPERIMENTS.md")

#: Marker skipping execution of the next fenced block.
SKIP_MARKER = "<!-- check-docs: skip-exec -->"

#: Placeholder -> concrete smoke value for console commands.
PLACEHOLDERS = {
    "<cores>": "2",
    "<n>": "2",
    "<shared>": "{cache}",
    "$(hostname)": "docs-smoke",
    "$(nproc)": "2",
}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")

#: Smoke caps applied to value-taking flags of runner commands.
_VALUE_CAPS = {
    "--population": 120,
    "--rounds": 400,
    "--workers": 2,
    "--service-workers": 2,
}


def _free_port() -> int:
    """An OS-granted TCP port for the documented serve/submit pair."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _docs_port(state: Dict[str, int]) -> int:
    """One port per executed file, shared by ``serve`` and ``submit``."""
    return state.setdefault("port", _free_port())


def split_background(command: str) -> Tuple[str, bool]:
    """Strip a trailing ``&``: documented background commands (serve)."""
    stripped = command.rstrip()
    if stripped.endswith("&"):
        return stripped[:-1].rstrip(), True
    return stripped, False


def default_files() -> List[Path]:
    """Every tracked-looking markdown file: repo root + docs/."""
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        REPO_ROOT.glob("docs/*.md")
    )
    return [path for path in files if path.is_file()]


# ----------------------------------------------------------------------
# Pass 1: links
# ----------------------------------------------------------------------
def check_links(path: Path) -> List[str]:
    """Problems with the link targets of one markdown file."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        for target in _LINK.findall(line):
            problem = _check_target(path, target)
            if problem:
                problems.append(f"{path.name}:{number}: {problem}")
    return problems


def _check_target(path: Path, target: str) -> Optional[str]:
    parsed = urlparse(target)
    if parsed.scheme in ("http", "https"):
        if not parsed.netloc:
            return f"malformed URL {target!r}"
        return None
    if parsed.scheme == "mailto":
        return None
    if parsed.scheme:
        return f"unsupported link scheme {target!r}"
    local = target.split("#", 1)[0]
    if not local:  # pure in-page anchor
        return None
    resolved = (path.parent / local).resolve()
    if not resolved.exists():
        return f"broken relative link {target!r}"
    return None


# ----------------------------------------------------------------------
# Pass 2: snippets
# ----------------------------------------------------------------------
def extract_blocks(text: str) -> Iterator[Tuple[str, int, str, bool]]:
    """Yield ``(language, first_line_no, body, skip_exec)`` per fence."""
    lines = text.splitlines()
    index = 0
    skip_next = False
    while index < len(lines):
        line = lines[index]
        if line.strip() == SKIP_MARKER:
            skip_next = True
            index += 1
            continue
        match = _FENCE.match(line)
        if not match:
            if line.strip():
                skip_next = False
            index += 1
            continue
        language = match.group(1)
        body: List[str] = []
        start = index + 1
        index += 1
        while index < len(lines) and not lines[index].startswith("```"):
            body.append(lines[index])
            index += 1
        index += 1  # closing fence
        yield language, start, "\n".join(body), skip_next
        skip_next = False


def console_commands(body: str) -> List[str]:
    """The ``$ ``-prefixed commands of a console block, continuations joined."""
    commands: List[str] = []
    current: Optional[str] = None
    for line in body.splitlines():
        stripped = line.strip()
        if current is not None:
            current += " " + stripped.rstrip("\\").strip()
            if not stripped.endswith("\\"):
                commands.append(current)
                current = None
            continue
        if stripped.startswith("$ "):
            text = stripped[2:].strip()
            if text.endswith("\\"):
                current = text.rstrip("\\").strip()
            else:
                commands.append(text)
    if current:
        commands.append(current)
    return commands


def rewrite_command(
    command: str, cache_dir: str, state: Optional[Dict[str, int]] = None
) -> Optional[List[str]]:
    """A smoke-scale argv for one documented command, or None to skip.

    ``state`` threads per-file execution context between commands: the
    ``serve``/``submit`` pair shares one ephemeral port through it, so
    the documented ``--port 8765`` / ``--url http://...:8765`` rewrite
    to the same free port.

    Raises :class:`ValueError` on a command that cannot even be
    tokenised — that is doc rot, not a deliberate skip, and the caller
    reports it as a failure.
    """
    if state is None:
        state = {}
    for placeholder, value in PLACEHOLDERS.items():
        command = command.replace(
            placeholder, value.format(cache=cache_dir)
        )
    words = shlex.split(command, comments=True)  # ValueError = doc rot
    while words and "=" in words[0] and not words[0].startswith("-"):
        words.pop(0)  # leading env assignments (PYTHONPATH=src ...)
    # Normalise --flag=value so every cap/redirection below applies to
    # both spellings (an unmatched --scale=full must not slip through).
    expanded: List[str] = []
    for word in words:
        if word.startswith("--") and "=" in word:
            flag, _, value = word.partition("=")
            expanded += [flag, value]
        else:
            expanded.append(word)
    words = expanded
    if not words:
        return None
    if words[0] == "repro-experiments":
        args = words[1:]
    elif words[0].endswith("python") and words[1:3] == [
        "-m",
        "repro.experiments.runner",
    ]:
        args = words[3:]
    else:
        return None  # pip/pytest/shell commands are not smoke-executed

    rewritten: List[str] = []
    index = 0
    has_cache_dir = False
    while index < len(args):
        word = args[index]
        if word == "--scale":
            rewritten += ["--scale", "quick"]
            index += 2
            continue
        if word in _VALUE_CAPS and index + 1 < len(args):
            try:
                value = int(args[index + 1])
            except ValueError:
                value = _VALUE_CAPS[word]
            rewritten += [word, str(min(value, _VALUE_CAPS[word]))]
            index += 2
            continue
        if word == "--cache-dir" and index + 1 < len(args):
            rewritten += ["--cache-dir", cache_dir]
            has_cache_dir = True
            index += 2
            continue
        if word == "--port" and index + 1 < len(args) and args[0] == "serve":
            rewritten += ["--port", str(_docs_port(state))]
            index += 2
            continue
        if word == "--url" and index + 1 < len(args) and args[0] == "submit":
            rewritten += ["--url", f"http://127.0.0.1:{_docs_port(state)}"]
            index += 2
            continue
        if word == "--csv-dir" and index + 1 < len(args):
            # Redirect artifact output next to the scratch cache so
            # executing the docs never writes into the repository.
            rewritten += ["--csv-dir", cache_dir + "-csv"]
            index += 2
            continue
        rewritten.append(word)
        index += 1

    cache_capable = rewritten and (
        rewritten[0] in ("all", "run", "worker", "serve")
        or rewritten[0].startswith(("fig", "ablation-"))
    )
    if cache_capable and not has_cache_dir:
        rewritten += ["--cache-dir", cache_dir]
    if rewritten and rewritten[0] == "worker" and "--experiments" not in rewritten:
        rewritten += ["--experiments", "fig4"]  # bound the drain
    if rewritten and rewritten[0] == "serve" and "--port" not in rewritten:
        rewritten += ["--port", str(_docs_port(state))]
    if rewritten and rewritten[0] == "submit" and "--url" not in rewritten:
        rewritten += ["--url", f"http://127.0.0.1:{_docs_port(state)}"]
    if rewritten and rewritten[0] == "run" and "--population" not in rewritten:
        rewritten += ["--population", "120", "--rounds", "400"]
    if rewritten and rewritten[0] == "profile" and "--population" not in rewritten:
        rewritten += ["--population", "120", "--rounds", "400"]
    return [sys.executable, "-m", "repro.experiments.runner"] + rewritten


def execute_snippets(path: Path, verbose: bool = True) -> List[str]:
    """Run one file's snippets at smoke scale; return failures."""
    problems: List[str] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    seen: Dict[str, bool] = {}
    python_blocks: List[str] = []
    state: Dict[str, int] = {}
    background: List[Tuple] = []
    with tempfile.TemporaryDirectory(prefix="check-docs-") as scratch:
        cache_dir = str(Path(scratch) / "cache")
        try:
            for language, line, body, skip in extract_blocks(
                path.read_text(encoding="utf-8")
            ):
                if skip:
                    continue
                if language == "python":
                    python_blocks.append(body)
                elif language == "console":
                    for raw in console_commands(body):
                        command, in_background = split_background(raw)
                        label = f"{path.name}:{line}: $ {raw}"
                        try:
                            argv = rewrite_command(command, cache_dir, state)
                        except ValueError as error:
                            problems.append(f"{label} is unparseable: {error}")
                            continue
                        if argv is None:
                            if verbose:
                                print(f"SKIP {label}")
                            continue
                        key = " ".join(argv)
                        if key in seen:
                            continue
                        seen[key] = True
                        if in_background:
                            if verbose:
                                print(f"RUN  {label} (background)")
                            background.append(
                                (label, *_spawn(argv, env, scratch))
                            )
                            continue
                        problems += _run(argv, label, env, verbose)
            if python_blocks:
                problems += _run(
                    [sys.executable, "-c", "\n\n".join(python_blocks)],
                    f"{path.name}: {len(python_blocks)} python block(s)",
                    env,
                    verbose,
                )
        finally:
            problems += _reap_background(background)
    return problems


def _spawn(argv, env, scratch):
    """Launch a documented background command (``... &``)."""
    log = open(  # noqa: SIM115 — lifetime tied to the Popen, closed in reap
        Path(scratch) / f"bg-{len(os.listdir(scratch))}.log", "w+"
    )
    process = subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return process, log


def _reap_background(background) -> List[str]:
    """Stop background commands; a premature death is a docs failure."""
    problems: List[str] = []
    for label, process, log in background:
        died_early = process.poll() is not None and process.returncode != 0
        process.terminate()
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=15)
        log.flush()
        log.seek(0)
        tail = "\n  ".join(log.read().strip().splitlines()[-8:])
        log.close()
        if died_early:
            problems.append(f"{label} exited {process.returncode}:\n  {tail}")
    return problems


def _run(argv, label, env, verbose) -> List[str]:
    if verbose:
        print(f"RUN  {label}")
    try:
        completed = subprocess.run(
            argv,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=1800,
        )
    except subprocess.TimeoutExpired:
        return [f"{label} hung (killed after 1800s)"]
    if completed.returncode == 0:
        return []
    tail = (completed.stdout + completed.stderr).strip().splitlines()[-8:]
    return [f"{label} exited {completed.returncode}:\n  " + "\n  ".join(tail)]


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="link-check the docs and smoke-execute their snippets"
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: *.md and docs/*.md)",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="also execute README.md/EXPERIMENTS.md snippets at smoke scale",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print problems"
    )
    args = parser.parse_args(argv)

    files = [path.resolve() for path in args.files] or default_files()
    problems: List[str] = []
    for path in files:
        problems += check_links(path)
    if args.execute:
        for path in files:
            if path.name in EXECUTED_FILES:
                problems += execute_snippets(path, verbose=not args.quiet)

    for problem in problems:
        print(f"FAIL {problem}")
    if not args.quiet:
        checked = ", ".join(path.name for path in files)
        print(
            f"check_docs: {len(files)} files ({checked}): "
            f"{len(problems)} problem(s)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
