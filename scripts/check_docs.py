#!/usr/bin/env python
"""Keep the documentation honest: link-check + smoke-execute snippets.

Two passes over the repo's markdown:

1. **Link check** (always): every relative link target in every
   markdown file must exist on disk.  ``http(s)``/``mailto`` links are
   validated for shape only — CI must not depend on the network.
2. **Snippet execution** (``--execute``): fenced code blocks in
   README.md and EXPERIMENTS.md actually run, rewritten to smoke scale:

   * ``console`` blocks: each ``$ `` command (with backslash
     continuations) is parsed; ``repro-experiments ...`` and
     ``python -m repro.experiments.runner ...`` invocations run via the
     current interpreter with ``PYTHONPATH=src``, with ``--scale``
     forced to ``quick``, ``--workers`` capped at 2, ``--cache-dir``
     redirected to a temp dir, population/rounds capped, and
     placeholders like ``<cores>`` substituted.  ``pytest``/``pip``
     commands and anything unrecognised are skipped (reported).
   * ``python`` blocks are concatenated per file, in order, and run as
     one script under ``PYTHONPATH=src`` — they model a reader
     following the document top to bottom, so a later block may use
     names an earlier one registered.

   A ``<!-- check-docs: skip-exec -->`` HTML comment on the line
   before a fence skips execution of that block (it is still
   link-checked); use it for illustrative fragments that cannot run.

Exit status is non-zero on any broken link, failed snippet, or
skipped-because-unparseable console command in an executed file, so CI
fails when the docs rot.

Usage::

    python scripts/check_docs.py                 # link check only
    python scripts/check_docs.py --execute       # CI docs lane
    python scripts/check_docs.py README.md       # subset
"""

from __future__ import annotations

import argparse
import os
import re
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlparse

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose snippets run under --execute (the operational docs).
EXECUTED_FILES = ("README.md", "EXPERIMENTS.md")

#: Marker skipping execution of the next fenced block.
SKIP_MARKER = "<!-- check-docs: skip-exec -->"

#: Placeholder -> concrete smoke value for console commands.
PLACEHOLDERS = {
    "<cores>": "2",
    "<n>": "2",
    "<shared>": "{cache}",
    "$(hostname)": "docs-smoke",
    "$(nproc)": "2",
}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")

#: Smoke caps applied to value-taking flags of runner commands.
_VALUE_CAPS = {"--population": 120, "--rounds": 400, "--workers": 2}


def default_files() -> List[Path]:
    """Every tracked-looking markdown file: repo root + docs/."""
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        REPO_ROOT.glob("docs/*.md")
    )
    return [path for path in files if path.is_file()]


# ----------------------------------------------------------------------
# Pass 1: links
# ----------------------------------------------------------------------
def check_links(path: Path) -> List[str]:
    """Problems with the link targets of one markdown file."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        for target in _LINK.findall(line):
            problem = _check_target(path, target)
            if problem:
                problems.append(f"{path.name}:{number}: {problem}")
    return problems


def _check_target(path: Path, target: str) -> Optional[str]:
    parsed = urlparse(target)
    if parsed.scheme in ("http", "https"):
        if not parsed.netloc:
            return f"malformed URL {target!r}"
        return None
    if parsed.scheme == "mailto":
        return None
    if parsed.scheme:
        return f"unsupported link scheme {target!r}"
    local = target.split("#", 1)[0]
    if not local:  # pure in-page anchor
        return None
    resolved = (path.parent / local).resolve()
    if not resolved.exists():
        return f"broken relative link {target!r}"
    return None


# ----------------------------------------------------------------------
# Pass 2: snippets
# ----------------------------------------------------------------------
def extract_blocks(text: str) -> Iterator[Tuple[str, int, str, bool]]:
    """Yield ``(language, first_line_no, body, skip_exec)`` per fence."""
    lines = text.splitlines()
    index = 0
    skip_next = False
    while index < len(lines):
        line = lines[index]
        if line.strip() == SKIP_MARKER:
            skip_next = True
            index += 1
            continue
        match = _FENCE.match(line)
        if not match:
            if line.strip():
                skip_next = False
            index += 1
            continue
        language = match.group(1)
        body: List[str] = []
        start = index + 1
        index += 1
        while index < len(lines) and not lines[index].startswith("```"):
            body.append(lines[index])
            index += 1
        index += 1  # closing fence
        yield language, start, "\n".join(body), skip_next
        skip_next = False


def console_commands(body: str) -> List[str]:
    """The ``$ ``-prefixed commands of a console block, continuations joined."""
    commands: List[str] = []
    current: Optional[str] = None
    for line in body.splitlines():
        stripped = line.strip()
        if current is not None:
            current += " " + stripped.rstrip("\\").strip()
            if not stripped.endswith("\\"):
                commands.append(current)
                current = None
            continue
        if stripped.startswith("$ "):
            text = stripped[2:].strip()
            if text.endswith("\\"):
                current = text.rstrip("\\").strip()
            else:
                commands.append(text)
    if current:
        commands.append(current)
    return commands


def rewrite_command(
    command: str, cache_dir: str
) -> Optional[List[str]]:
    """A smoke-scale argv for one documented command, or None to skip.

    Raises :class:`ValueError` on a command that cannot even be
    tokenised — that is doc rot, not a deliberate skip, and the caller
    reports it as a failure.
    """
    for placeholder, value in PLACEHOLDERS.items():
        command = command.replace(
            placeholder, value.format(cache=cache_dir)
        )
    words = shlex.split(command, comments=True)  # ValueError = doc rot
    while words and "=" in words[0] and not words[0].startswith("-"):
        words.pop(0)  # leading env assignments (PYTHONPATH=src ...)
    # Normalise --flag=value so every cap/redirection below applies to
    # both spellings (an unmatched --scale=full must not slip through).
    expanded: List[str] = []
    for word in words:
        if word.startswith("--") and "=" in word:
            flag, _, value = word.partition("=")
            expanded += [flag, value]
        else:
            expanded.append(word)
    words = expanded
    if not words:
        return None
    if words[0] == "repro-experiments":
        args = words[1:]
    elif words[0].endswith("python") and words[1:3] == [
        "-m",
        "repro.experiments.runner",
    ]:
        args = words[3:]
    else:
        return None  # pip/pytest/shell commands are not smoke-executed

    rewritten: List[str] = []
    index = 0
    has_cache_dir = False
    while index < len(args):
        word = args[index]
        if word == "--scale":
            rewritten += ["--scale", "quick"]
            index += 2
            continue
        if word in _VALUE_CAPS and index + 1 < len(args):
            try:
                value = int(args[index + 1])
            except ValueError:
                value = _VALUE_CAPS[word]
            rewritten += [word, str(min(value, _VALUE_CAPS[word]))]
            index += 2
            continue
        if word == "--cache-dir" and index + 1 < len(args):
            rewritten += ["--cache-dir", cache_dir]
            has_cache_dir = True
            index += 2
            continue
        if word == "--csv-dir" and index + 1 < len(args):
            # Redirect artifact output next to the scratch cache so
            # executing the docs never writes into the repository.
            rewritten += ["--csv-dir", cache_dir + "-csv"]
            index += 2
            continue
        rewritten.append(word)
        index += 1

    cache_capable = rewritten and (
        rewritten[0] in ("all", "run", "worker")
        or rewritten[0].startswith(("fig", "ablation-"))
    )
    if cache_capable and not has_cache_dir:
        rewritten += ["--cache-dir", cache_dir]
    if rewritten and rewritten[0] == "worker" and "--experiments" not in rewritten:
        rewritten += ["--experiments", "fig4"]  # bound the drain
    if rewritten and rewritten[0] == "run" and "--population" not in rewritten:
        rewritten += ["--population", "120", "--rounds", "400"]
    if rewritten and rewritten[0] == "profile" and "--population" not in rewritten:
        rewritten += ["--population", "120", "--rounds", "400"]
    return [sys.executable, "-m", "repro.experiments.runner"] + rewritten


def execute_snippets(path: Path, verbose: bool = True) -> List[str]:
    """Run one file's snippets at smoke scale; return failures."""
    problems: List[str] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    seen: Dict[str, bool] = {}
    python_blocks: List[str] = []
    with tempfile.TemporaryDirectory(prefix="check-docs-") as scratch:
        cache_dir = str(Path(scratch) / "cache")
        for language, line, body, skip in extract_blocks(
            path.read_text(encoding="utf-8")
        ):
            if skip:
                continue
            if language == "python":
                python_blocks.append(body)
            elif language == "console":
                for command in console_commands(body):
                    label = f"{path.name}:{line}: $ {command}"
                    try:
                        argv = rewrite_command(command, cache_dir)
                    except ValueError as error:
                        problems.append(f"{label} is unparseable: {error}")
                        continue
                    if argv is None:
                        if verbose:
                            print(f"SKIP {label}")
                        continue
                    key = " ".join(argv)
                    if key in seen:
                        continue
                    seen[key] = True
                    problems += _run(argv, label, env, verbose)
        if python_blocks:
            problems += _run(
                [sys.executable, "-c", "\n\n".join(python_blocks)],
                f"{path.name}: {len(python_blocks)} python block(s)",
                env,
                verbose,
            )
    return problems


def _run(argv, label, env, verbose) -> List[str]:
    if verbose:
        print(f"RUN  {label}")
    try:
        completed = subprocess.run(
            argv,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=1800,
        )
    except subprocess.TimeoutExpired:
        return [f"{label} hung (killed after 1800s)"]
    if completed.returncode == 0:
        return []
    tail = (completed.stdout + completed.stderr).strip().splitlines()[-8:]
    return [f"{label} exited {completed.returncode}:\n  " + "\n  ".join(tail)]


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="link-check the docs and smoke-execute their snippets"
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: *.md and docs/*.md)",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="also execute README.md/EXPERIMENTS.md snippets at smoke scale",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print problems"
    )
    args = parser.parse_args(argv)

    files = [path.resolve() for path in args.files] or default_files()
    problems: List[str] = []
    for path in files:
        problems += check_links(path)
    if args.execute:
        for path in files:
            if path.name in EXECUTED_FILES:
                problems += execute_snippets(path, verbose=not args.quiet)

    for problem in problems:
        print(f"FAIL {problem}")
    if not args.quiet:
        checked = ", ".join(path.name for path in files)
        print(
            f"check_docs: {len(files)} files ({checked}): "
            f"{len(problems)} problem(s)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
