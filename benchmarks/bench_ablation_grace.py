"""Benchmark A3 — grace period before abandoning an invisible partner.

The paper's stated future work ("delaying the repair to allow peers to
come back").  Expected shape: longer graces regenerate fewer blocks
(offline-but-alive partners get to return) at the cost of riding closer
to the loss boundary.
"""

from repro.churn.profiles import ROUNDS_PER_DAY
from repro.experiments.ablation_grace import run_ablation_grace
from repro.experiments.common import QUICK


def test_ablation_grace(run_once):
    result = run_once(
        run_ablation_grace,
        scale=QUICK,
        graces=(0, ROUNDS_PER_DAY, 3 * ROUNDS_PER_DAY),
        seeds=(0,),
    )
    print()
    print(result.render())
    rows = result.rows()
    regenerated = [row[2] for row in rows]  # ordered by growing grace
    assert regenerated[-1] <= regenerated[0]
