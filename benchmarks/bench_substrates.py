"""Micro-benchmarks of the substrates the reproduction is built on.

Not paper artifacts, but the numbers that bound what the harness can
simulate: Reed-Solomon encode/decode throughput at the paper's code
dimensions, simulator event throughput, and the end-to-end byte-level
backup/restore pipeline.
"""

import numpy as np

from repro.backup import BackupSwarm, BackupTask, RestoreTask
from repro.erasure import ArchiveCodec, ReedSolomonCode, gf256, matrix
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_simulation


def test_gf256_dot_product(benchmark):
    """Pure-python inner-product throughput (the matrix-algebra hot path).

    Exercises the 256x256 product-table lookups that replaced the
    log/antilog arithmetic in ``gf256`` inner loops.
    """
    rng = np.random.default_rng(2)
    xs = [int(v) for v in rng.integers(0, 256, 4096)]
    ys = [int(v) for v in rng.integers(0, 256, 4096)]

    def many():
        total = 0
        for _ in range(50):
            total ^= gf256.dot_product(xs, ys)
        return total

    benchmark(many)


def test_gf256_matrix_invert_python(benchmark):
    """Gauss-Jordan inversion of a 64x64 Cauchy matrix, pure python.

    The ``python`` backend spends its time in ``scale_vector`` row
    lookups; this was the decoder's dominant term at paper-scale k
    before the vectorised backend landed.
    """
    cauchy = matrix.cauchy(list(range(64, 128)), list(range(64)))
    inverted = benchmark(matrix.invert, cauchy, backend="python")
    product = matrix.multiply(cauchy, inverted)
    assert product == matrix.identity(64)


def test_gf256_matrix_invert_numpy(benchmark):
    """Same inversion through the ``numpy`` codec backend (the default).

    Row elimination collapses to fancy-indexed product-table lookups
    plus XORs — roughly an order of magnitude over the python loops.
    """
    cauchy = matrix.cauchy(list(range(64, 128)), list(range(64)))
    inverted = benchmark(matrix.invert, cauchy, backend="numpy")
    product = matrix.multiply(cauchy, inverted)
    assert product == matrix.identity(64)


def test_reed_solomon_encode_paper_dimensions(benchmark):
    """Encode throughput at the paper's (k=128, m=128) geometry."""
    code = ReedSolomonCode(128, 128)
    rng = np.random.default_rng(0)
    width = 2048  # bytes per block: 256 KiB archive equivalent
    data = [rng.integers(0, 256, width, dtype=np.uint8).tobytes()
            for _ in range(128)]
    blocks = benchmark(code.encode, data)
    assert len(blocks) == 256


def test_reed_solomon_decode_from_parity(benchmark):
    """Worst-case decode: all k originals lost, recover from parity."""
    code = ReedSolomonCode(32, 32)
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
            for _ in range(32)]
    coded = code.encode(data)
    available = {i: coded[i] for i in range(32, 64)}
    recovered = benchmark(code.decode, available)
    assert recovered == data


def test_archive_codec_roundtrip(benchmark):
    """Split + reassemble a 64 KiB archive through the (16, 16) codec."""
    codec = ArchiveCodec(16, 16)
    payload = np.random.default_rng(1).integers(
        0, 256, 64 * 1024, dtype=np.uint8
    ).tobytes()

    def roundtrip():
        blocks = codec.split(payload)
        subset = {b.index: b for b in blocks[codec.k:]}
        return codec.reassemble(subset)

    assert benchmark(roundtrip) == payload


def test_simulator_round_throughput(benchmark):
    """Rounds per second of the event-driven engine on a small network."""
    config = SimulationConfig(
        population=200,
        rounds=2000,
        data_blocks=16,
        parity_blocks=16,
        repair_threshold=18,
        quota=48,
        seed=0,
    )
    result = benchmark.pedantic(
        run_simulation, args=(config,), iterations=1, rounds=1
    )
    assert result.final_round == 2000


def test_backup_restore_pipeline(benchmark):
    """Full byte-level cycle: swarm, backup, partner loss, restore."""

    def pipeline():
        swarm = BackupSwarm(
            data_blocks=8, parity_blocks=8, quota_blocks=64, seed=11
        )
        for _ in range(20):
            swarm.add_node()
        swarm.tick(24)
        owner = swarm.nodes[0]
        files = {f"file-{i}": bytes([i]) * 900 for i in range(6)}
        BackupTask(owner, archive_size=4096).run(files)
        report = RestoreTask(swarm, owner.peer_id, owner.user_key).run()
        return report.files == files

    assert benchmark.pedantic(pipeline, iterations=1, rounds=3)
