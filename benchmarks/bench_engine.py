"""Engine hot-loop benchmark: the paper workload, end to end.

This is the perf-trajectory anchor for the simulation engine itself
(event queue, recruitment loop, visibility flips) — the figure and
ablation benches above it measure whole experiments, which mixes in
executor and analysis cost.  Two sizes of the ``paper`` scenario preset:

* ``quick`` — seconds; safe for routine runs alongside the other benches;
* ``default-scale`` — the ISSUE-3 acceptance workload (the ``paper``
  preset at the ``default`` experiment scale: 800 peers, 14 000 rounds),
  the configuration whose wall clock ``BENCH_engine.json`` tracks
  commit over commit;
* ``protocol-quick`` — the same ``quick`` workload at the ``protocol``
  fidelity (PR 5): every repair is a real store/fetch exchange gated by
  the bandwidth model, so this tracks the message-level overhead
  relative to the abstract fast path;
* ``soa-quick`` / ``soa-default-scale`` — the same two workloads on the
  structure-of-arrays ``abstract_soa`` backend (ISSUE 6), tracking the
  vectorized kernel against the object-graph engine on identical
  trajectories.  The quick variant is the CI ``bench-smoke`` regression
  gate (``scripts/check_bench_regression.py``);
* ``protocol-impaired-quick`` — the protocol quick workload under the
  worst netem preset (30% loss, 50 ms ± 5 ms), so the impairment
  sampler, drop handling and retry/backoff machinery (PR 8) have their
  own trajectory line: the delta against ``protocol-quick`` is the
  price of fault injection.

Run with ``--bench-json BENCH_engine.json`` to append trajectory
records (see ``conftest.py`` for the format).
"""

from __future__ import annotations

import pytest

from repro.scenarios import scenario_by_name
from repro.sim.engine import run_simulation


@pytest.mark.scenario("paper")
def test_engine_paper_quick(run_once):
    config = scenario_by_name("paper").with_population(250).with_rounds(3000).build()
    result = run_once(run_simulation, config)
    assert result.final_round == 3000
    assert result.metrics.total_placements > 0


@pytest.mark.scenario("paper-protocol-quick")
def test_engine_paper_protocol_quick(run_once):
    config = (
        scenario_by_name("paper")
        .with_population(250)
        .with_rounds(3000)
        .with_fidelity("protocol")
        .build()
    )
    result = run_once(run_simulation, config)
    assert result.final_round == 3000
    assert result.metrics.protocol["transfers_completed"] > 0
    assert result.metrics.total_repairs > 0


@pytest.mark.scenario("paper-protocol-impaired-quick")
def test_engine_paper_protocol_impaired_quick(run_once):
    config = (
        scenario_by_name("paper")
        .with_population(250)
        .with_rounds(3000)
        .with_fidelity("protocol")
        .with_impairment("loss30_delay50ms_jitter5ms")
        .build()
    )
    result = run_once(run_simulation, config)
    assert result.final_round == 3000
    assert result.metrics.protocol["drops"] > 0
    assert result.metrics.protocol["retries"] > 0
    assert result.metrics.total_repairs > 0


@pytest.mark.scenario("paper-soa-quick")
def test_engine_paper_soa_quick(run_once):
    config = (
        scenario_by_name("paper")
        .with_population(250)
        .with_rounds(3000)
        .with_fidelity("abstract_soa")
        .build()
    )
    result = run_once(run_simulation, config)
    assert result.final_round == 3000
    assert result.metrics.total_placements > 0


@pytest.mark.scenario("paper-soa-default-scale")
def test_engine_paper_soa_default_scale(run_once):
    config = (
        scenario_by_name("paper")
        .with_population(800)
        .with_rounds(14000)
        .with_fidelity("abstract_soa")
        .build()
    )
    result = run_once(run_simulation, config)
    assert result.final_round == 14000
    assert result.metrics.total_repairs > 0
    assert result.deaths > 0


@pytest.mark.scenario("paper-default-scale")
def test_engine_paper_default_scale(run_once):
    config = scenario_by_name("paper").with_population(800).with_rounds(14000).build()
    result = run_once(run_simulation, config)
    assert result.final_round == 14000
    assert result.metrics.total_repairs > 0
    # Same-seed determinism is the invariant the hot-path work must
    # never break; a full second run here would double the bench time,
    # so the engine tests own that assertion — this just pins the
    # workload's coarse shape.
    assert result.deaths > 0


@pytest.mark.scenario("paper-protocol-default-scale")
def test_engine_paper_protocol_default_scale(run_once):
    config = (
        scenario_by_name("paper")
        .with_population(800)
        .with_rounds(14000)
        .with_fidelity("protocol")
        .build()
    )
    result = run_once(run_simulation, config)
    assert result.final_round == 14000
    assert result.metrics.protocol["transfers_completed"] > 0
