"""Benchmark T1-T4 — regenerate the paper's parameter tables.

Deterministic artifacts: the system-parameter table (section 2.2.4),
the profile table (4.1.1), the age-category table (4.2.1) and the
observer table (4.2.2).  The assertions pin the published values; the
benchmark time is just the render cost.
"""

from repro.experiments import tables


def test_tables_render(run_once):
    text = run_once(tables.render_all)
    print()
    print(text)

    t1 = tables.t1_system_parameters()
    assert t1["k (initial blocks)"] == 128 and t1["m (added blocks)"] == 128

    t2 = tables.t2_profiles()
    assert t2["Erratic"]["proportion"] == 0.35
    assert t2["Durable"]["availability"] == 0.95

    t3 = tables.t3_categories()
    assert t3["Elder peers"] == "> 12960 rounds"

    t4 = tables.t4_observers()
    assert t4["Baby"] == "1 hour(s)"
