"""Benchmark F1 — regenerate Figure 1 (repair rate vs threshold).

Paper series: average repairs per 1000 peers against the repair
threshold (132-180), one curve per age category, log y.  Expected shape:
monotone increase with the threshold, Newcomers far above Elder peers.
"""

from repro.experiments.common import QUICK
from repro.experiments.fig1_repairs_by_threshold import check_shape, run_figure1

#: A three-point slice of the paper's sweep keeps the benchmark under a
#: minute; the full sweep is `repro-experiments fig1 --scale default`.
BENCH_THRESHOLDS = (132, 148, 180)


def test_fig1_repairs_by_threshold(run_once):
    result = run_once(
        run_figure1,
        scale=QUICK,
        paper_thresholds=BENCH_THRESHOLDS,
        seeds=(0,),
    )
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
