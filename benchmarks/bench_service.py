"""Benchmark the sweep service: hot-cache submit/result throughput.

Not a paper artifact — this measures the service subsystem itself: the
sustained HTTP request rate a single `serve` process answers once the
cache is warm, i.e. the simulation-as-a-service steady state where
every submission is a digest hit and the server's job is validation,
dedup and cache streaming.  The acceptance bar (ISSUE 9) is >= 100
sustained requests/s with a hot cache; the measured figure is recorded
in EXPERIMENTS.md and, via ``--bench-json``, in BENCH_engine.json.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exec import ResultCache
from repro.service.client import ServiceClient
from repro.service.server import SweepService, make_server

#: The submitted spec: one sub-second cell, so the warm-up is cheap.
PAYLOAD = {
    "scenario": "paper",
    "scale": "quick",
    "population": 60,
    "rounds": 300,
    "seeds": [0],
}

#: submit+result pairs per benchmark round (2 HTTP requests each).
ROUNDTRIPS = 100

#: The service-grade bar from the issue: sustained hot-cache req/s.
REQUIRED_REQUESTS_PER_SECOND = 100.0


def _boot(cache_dir):
    """A live service over ``cache_dir``: (service, server, url)."""
    service = SweepService(
        ResultCache(cache_dir),
        workers=1,
        poll_interval=0.02,
        quota_capacity=1e9,
        quota_refill=1e9,
    )
    service.start()
    server = make_server(service)
    host, port = server.server_address[:2]
    threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.02},
        daemon=True,
    ).start()
    return service, server, f"http://{host}:{port}"


@pytest.mark.scenario("service-hot-cache")
def test_service_hot_cache_roundtrips(run_once, tmp_path):
    """Hammer a warm server; assert the sustained-rate bar holds."""
    service, server, url = _boot(tmp_path / "cache")
    try:
        client = ServiceClient(url, client_id="bench")
        record = client.submit_and_wait(PAYLOAD, timeout=300)
        assert record["state"] == "done"
        job_id = record["job_id"]
        expected = client.raw_result(job_id)

        def hammer() -> float:
            start = time.perf_counter()
            for _ in range(ROUNDTRIPS):
                submitted = client.submit(PAYLOAD)
                assert submitted["state"] == "done"  # hot cache: instant
                body = client.raw_result(job_id)
            elapsed = time.perf_counter() - start
            assert body == expected
            return (ROUNDTRIPS * 2) / elapsed  # 2 HTTP requests per pair

        rate = run_once(hammer)
        print(
            f"\nservice hot-cache: {rate:.0f} requests/s sustained "
            f"({ROUNDTRIPS} submit+result pairs, "
            f"bar {REQUIRED_REQUESTS_PER_SECOND:.0f}/s)"
        )
        assert rate >= REQUIRED_REQUESTS_PER_SECOND
        # The server's own sliding-window figure agrees it was busy.
        window = client.metrics()["requests"]["per_second"]
        assert window > 0
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
