"""Benchmark F4 — regenerate Figure 4 (cumulative lost archives).

Paper series (threshold 148): cumulative lost archives per peer for the
four age categories over 2000 days.  Expected shape: Newcomers dominate;
older categories stay near zero.
"""

from repro.experiments.common import QUICK
from repro.experiments.fig4_cumulative_losses import check_shape, run_figure4


def test_fig4_cumulative_losses(run_once):
    result = run_once(run_figure4, scale=QUICK)
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
