"""Benchmark A4 — reactive threshold repair vs proactive replication.

Related-work comparison ([10], Duminuco et al.): add proactive top-ups
at the analytically estimated churn rate on top of the reactive
protocol.  Expected shape: proactive regeneration absorbs part of the
reactive repair load.
"""

from repro.experiments.ablation_proactive import run_ablation_proactive
from repro.experiments.common import QUICK


def test_ablation_proactive(run_once):
    result = run_once(
        run_ablation_proactive,
        scale=QUICK,
        safety_factors=(0.0, 1.0, 2.0),
        seeds=(0,),
    )
    print()
    print(result.render())
    rows = result.rows()
    reactive_repairs = [row[2] for row in rows]  # by growing proactive rate
    assert reactive_repairs[-1] <= reactive_repairs[0]
    assert result.estimated_rate > 0
