"""Benchmark F3 — regenerate Figure 3 (observer cumulative repairs).

Paper series (threshold 148, 2000 days, log y): cumulative repairs of
the five fixed-age observers.  Expected shape: Baby >> Teenager >>
Adult/Senior/Elder, roughly two orders of magnitude end to end at full
scale.
"""

from repro.experiments.common import QUICK
from repro.experiments.fig3_observer_repairs import check_shape, run_figure3


def test_fig3_observer_repairs(run_once):
    result = run_once(run_figure3, scale=QUICK)
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
