"""Shared benchmark machinery.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md
section 2) at the QUICK experiment scale, prints the same rows/series
the paper reports, and asserts the qualitative shape where one is
defined.  ``pedantic`` mode with a single round keeps pytest-benchmark
from re-running multi-second simulations dozens of times.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return runner
