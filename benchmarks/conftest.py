"""Shared benchmark machinery.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md
section 2) at the QUICK experiment scale, prints the same rows/series
the paper reports, and asserts the qualitative shape where one is
defined.  ``pedantic`` mode with a handful of rounds (``--bench-repeats``,
default 3) keeps pytest-benchmark from re-running multi-second
simulations dozens of times while still measuring a real spread.

Perf trajectory: passing ``--bench-json PATH`` makes every bench run
append one record per benchmark to the given JSON file (the repo tracks
``BENCH_engine.json``), so engine speedups and regressions are visible
commit over commit::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py \
        --bench-json BENCH_engine.json

Record format (one JSON object per entry, newest last)::

    {"bench": <test name>, "scenario": <scenario marker or "">,
     "mean_s": <mean seconds>, "stdev_s": <stdev, 0.0 for single runs>,
     "commit": <short git hash or "unknown">}
"""

from __future__ import annotations

import json
import pathlib
import subprocess

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="append {bench, scenario, mean_s, stdev_s, commit} records "
        "for every benchmark to this JSON file (perf trajectory)",
    )
    parser.addoption(
        "--bench-repeats",
        action="store",
        type=int,
        default=3,
        metavar="N",
        help="rounds per benchmark (pedantic, one iteration each); "
        "N >= 2 yields a real stdev_s in the trajectory records",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "scenario(name): label a benchmark with the scenario preset it "
        "exercises (recorded in the --bench-json trajectory)",
    )


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _append_record(request, benchmark) -> None:
    """Write one trajectory record if --bench-json was given."""
    path = request.config.getoption("--bench-json")
    if not path or benchmark.stats is None:
        return
    marker = request.node.get_closest_marker("scenario")
    stats = benchmark.stats.stats
    record = {
        "bench": request.node.name,
        "scenario": marker.args[0] if marker and marker.args else "",
        "mean_s": stats.mean,
        "stdev_s": stats.stddev,
        "commit": _current_commit(),
    }
    target = pathlib.Path(path)
    records = []
    if target.exists():
        records = json.loads(target.read_text() or "[]")
    records.append(record)
    target.write_text(json.dumps(records, indent=2) + "\n")


@pytest.fixture
def run_once(benchmark, request):
    """Benchmark a callable (one iteration per round) and return its result.

    The historical name survives: each *round* still runs the callable
    exactly once, but ``--bench-repeats N`` (default 3) repeats that
    round N times so the recorded ``stdev_s`` is a real spread instead
    of the 0.0 a single observation degenerates to.
    """
    repeats = max(1, request.config.getoption("--bench-repeats"))

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=repeats
        )
        _append_record(request, benchmark)
        return result

    return runner
