"""Benchmark C1 — regenerate the section 2.2.4 repair-cost analysis.

Paper numbers on the 256/32 kB/s DSL reference link: >512 s download of
k blocks, 32 s upload per regenerated block, 69 + 8 = 77 minute
worst-case repair, at most ~20 repairs per day, and the worked example
that 32 archives must stay below roughly one repair per month each.
"""

import pytest

from repro.analysis.report import format_table
from repro.experiments.tables import c1_feasibility_rows
from repro.net.bandwidth import CostModel, paper_cost_table


def test_cost_model(run_once):
    table = run_once(paper_cost_table)
    print()
    rows = [[key, round(value, 2) if isinstance(value, float) else value]
            for key, value in table.items()]
    print(format_table(["quantity", "value"], rows))
    print()
    print(format_table(
        ["archives", "MB", "repairs/archive/day", "days between repairs"],
        c1_feasibility_rows(),
    ))

    assert table["download_seconds"] == pytest.approx(512.0)
    assert table["worst_case_total_minutes"] == pytest.approx(76.8, abs=0.5)
    assert table["max_repairs_per_day"] == 18

    # The paper's d-sweep: upload dominates for d beyond ~16 blocks.
    model = CostModel()
    sweep = [(d, model.repair_cost(d).total_minutes) for d in (1, 16, 64, 128)]
    print()
    print(format_table(["d (blocks)", "repair minutes"],
                       [[d, round(m, 1)] for d, m in sweep]))
    minutes = [m for _, m in sweep]
    assert minutes == sorted(minutes)
