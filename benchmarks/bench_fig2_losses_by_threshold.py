"""Benchmark F2 — regenerate Figure 2 (data-loss rate vs threshold).

Paper series: average archives lost per 1000 peers against the repair
threshold, one curve per age category.  Expected shape: losses highest
near the decode limit (threshold close to k), dominated by Newcomers.
"""

from repro.experiments.common import QUICK
from repro.experiments.fig2_losses_by_threshold import check_shape, run_figure2

BENCH_THRESHOLDS = (132, 148, 180)


def test_fig2_losses_by_threshold(run_once):
    result = run_once(
        run_figure2,
        scale=QUICK,
        paper_thresholds=BENCH_THRESHOLDS,
        seeds=(0,),
    )
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
