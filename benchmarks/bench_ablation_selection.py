"""Benchmark A1 — selection-strategy ablation.

Compares the paper's age mechanism against the age-blind random
baseline, availability-history ranking and the remaining-lifetime
oracle.  Expected shape: the age mechanism shifts maintenance load onto
newcomers (higher newcomer/elder rate ratio than random), and the
oracle never repairs more than random.
"""

from repro.experiments.ablation_selection import (
    check_shape,
    run_ablation_selection,
)
from repro.experiments.common import QUICK


def test_ablation_selection(run_once):
    result = run_once(
        run_ablation_selection,
        scale=QUICK,
        strategies=("age", "random", "availability", "oracle"),
        seeds=(0,),
    )
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
