"""Benchmark A2 — quota sensitivity (the paper's future-work knob).

Sweeps the per-peer storage quota as a multiple of n (the paper fixes it
at 1.5 x n).  Expected shape: tighter quotas starve more repairs; looser
quotas cannot increase starvation.
"""

from repro.experiments.ablation_quota import run_ablation_quota
from repro.experiments.common import QUICK


def test_ablation_quota(run_once):
    result = run_once(
        run_ablation_quota,
        scale=QUICK,
        quota_factors=(1.0, 1.5, 2.0),
        seeds=(0,),
    )
    print()
    print(result.render())
    rows = result.rows()
    starved = [row[4] for row in rows]  # ordered by growing quota
    assert starved[0] >= starved[-1]
