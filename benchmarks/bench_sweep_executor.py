"""Benchmark the sweep executor: serial, process-pool and distributed.

Not a paper artifact — this measures the execution subsystem itself:
the parallel speedup the process-pool and distributed backends buy on
a multi-core host, and that they buy it without changing a single byte
of the results.  The workload is a small threshold sweep (4 cells) of
the event-driven simulator, the same cell shape every figure runs.
"""

import multiprocessing

from repro.exec import (
    ExperimentSpec,
    ResultCache,
    SweepExecutor,
    canonical_json,
)
from repro.sim.config import SimulationConfig

#: Enough cells to keep two workers busy, small enough for CI.
CELL_SEEDS = (0, 1)
CELL_THRESHOLDS = (18, 20)


def _bench_spec() -> ExperimentSpec:
    base = SimulationConfig.scaled(
        population=250, rounds=2500, data_blocks=16, parity_blocks=16
    )
    return ExperimentSpec(
        name="bench-sweep",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": CELL_THRESHOLDS},
        seeds=CELL_SEEDS,
    )


def test_sweep_executor_serial(run_once):
    """Baseline: all cells in-process, one after the other."""
    sweep = run_once(SweepExecutor(workers=1).run, _bench_spec())
    assert len(sweep) == 4
    assert sweep.stats.simulated == 4


def test_sweep_executor_two_workers(run_once):
    """Process-pool backend; compare wall clock against the serial run."""
    sweep = run_once(SweepExecutor(workers=2).run, _bench_spec())
    assert len(sweep) == 4
    assert sweep.stats.simulated == 4


def _drain_bench_cells(cache_dir: str) -> None:
    """Helper-process entry point for the distributed benchmark."""
    SweepExecutor(
        cache=ResultCache(cache_dir),
        backend="distributed",
        worker_id="bench-helper",
        poll_interval=0.05,
    ).run(_bench_spec())


def test_sweep_executor_distributed_two_workers(run_once, tmp_path):
    """Distributed backend: this process plus one worker process
    sharing a cache directory — the multi-host topology in miniature."""
    cache_dir = str(tmp_path / "cache")
    helper = multiprocessing.Process(
        target=_drain_bench_cells, args=(cache_dir,)
    )

    def sharded_sweep():
        helper.start()
        try:
            return SweepExecutor(
                cache=ResultCache(cache_dir),
                backend="distributed",
                worker_id="bench-main",
                poll_interval=0.05,
            ).run(_bench_spec())
        finally:
            helper.join(timeout=300)

    sweep = run_once(sharded_sweep)
    assert len(sweep) == 4
    assert sweep.stats.simulated + sweep.stats.cache_hits == 4


def test_sweep_executor_backends_agree(tmp_path):
    """The speedup is free: serialized results are byte-identical."""
    serial = SweepExecutor(workers=1).run(_bench_spec())
    pooled = SweepExecutor(workers=2).run(_bench_spec())
    distributed = SweepExecutor(
        cache=ResultCache(tmp_path / "cache"),
        backend="distributed",
        poll_interval=0.05,
    ).run(_bench_spec())
    serial_bytes = [canonical_json(r.to_dict()) for r in serial.results]
    pooled_bytes = [canonical_json(r.to_dict()) for r in pooled.results]
    shard_bytes = [canonical_json(r.to_dict()) for r in distributed.results]
    assert serial_bytes == pooled_bytes
    assert serial_bytes == shard_bytes
