"""Benchmark the sweep executor: serial vs process-pool backends.

Not a paper artifact — this measures the execution subsystem itself:
the parallel speedup the process-pool backend buys on a multi-core
host, and that it buys it without changing a single byte of the
results.  The workload is a small threshold sweep (4 cells) of the
event-driven simulator, the same cell shape every figure runs.
"""

from repro.exec import ExperimentSpec, SweepExecutor, canonical_json
from repro.sim.config import SimulationConfig

#: Enough cells to keep two workers busy, small enough for CI.
CELL_SEEDS = (0, 1)
CELL_THRESHOLDS = (18, 20)


def _bench_spec() -> ExperimentSpec:
    base = SimulationConfig.scaled(
        population=250, rounds=2500, data_blocks=16, parity_blocks=16
    )
    return ExperimentSpec(
        name="bench-sweep",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": CELL_THRESHOLDS},
        seeds=CELL_SEEDS,
    )


def test_sweep_executor_serial(run_once):
    """Baseline: all cells in-process, one after the other."""
    sweep = run_once(SweepExecutor(workers=1).run, _bench_spec())
    assert len(sweep) == 4
    assert sweep.stats.simulated == 4


def test_sweep_executor_two_workers(run_once):
    """Process-pool backend; compare wall clock against the serial run."""
    sweep = run_once(SweepExecutor(workers=2).run, _bench_spec())
    assert len(sweep) == 4
    assert sweep.stats.simulated == 4


def test_sweep_executor_backends_agree():
    """The speedup is free: serialized results are byte-identical."""
    serial = SweepExecutor(workers=1).run(_bench_spec())
    pooled = SweepExecutor(workers=2).run(_bench_spec())
    serial_bytes = [canonical_json(r.to_dict()) for r in serial.results]
    pooled_bytes = [canonical_json(r.to_dict()) for r in pooled.results]
    assert serial_bytes == pooled_bytes
