"""Benchmark A5 — static vs adaptive repair thresholds.

The paper's future work (section 6) made executable: each peer raises
its threshold after a blocked repair and lowers it when recruitment
starves.  Expected shape: the adaptive controller never loses more
archives than the static threshold it starts from.
"""

from repro.experiments.ablation_adaptive import (
    check_shape,
    run_ablation_adaptive,
)
from repro.experiments.common import QUICK


def test_ablation_adaptive(run_once):
    result = run_once(run_ablation_adaptive, scale=QUICK, seeds=(0,))
    print()
    print(result.render())
    problems = check_shape(result)
    assert not problems, problems
