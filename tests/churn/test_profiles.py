"""Tests for behaviour profiles (paper table T2)."""

import math

import pytest

from repro.churn import profiles


class TestPaperValues:
    """Pin the published profile table exactly."""

    def test_four_profiles(self):
        assert len(profiles.PAPER_PROFILES) == 4

    def test_proportions(self):
        expected = {"Durable": 0.10, "Stable": 0.25, "Unstable": 0.30, "Erratic": 0.35}
        for profile in profiles.PAPER_PROFILES:
            assert profile.proportion == expected[profile.name]

    def test_availabilities(self):
        expected = {"Durable": 0.95, "Stable": 0.87, "Unstable": 0.75, "Erratic": 0.33}
        for profile in profiles.PAPER_PROFILES:
            assert profile.availability == expected[profile.name]

    def test_durable_is_unlimited(self):
        assert profiles.DURABLE.is_durable
        assert profiles.DURABLE.life_expectancy is None
        assert math.isinf(profiles.DURABLE.mean_lifetime())

    def test_stable_lifetime_is_1_5_to_3_5_years(self):
        low, high = profiles.STABLE.life_expectancy
        assert low == int(1.5 * profiles.ROUNDS_PER_YEAR)
        assert high == int(3.5 * profiles.ROUNDS_PER_YEAR)

    def test_unstable_lifetime_is_3_to_18_months(self):
        low, high = profiles.UNSTABLE.life_expectancy
        assert low == 3 * profiles.ROUNDS_PER_MONTH
        assert high == 18 * profiles.ROUNDS_PER_MONTH

    def test_erratic_lifetime_is_1_to_3_months(self):
        low, high = profiles.ERRATIC.life_expectancy
        assert low == 1 * profiles.ROUNDS_PER_MONTH
        assert high == 3 * profiles.ROUNDS_PER_MONTH

    def test_proportions_sum_to_one(self):
        profiles.validate_mix(profiles.PAPER_PROFILES)

    def test_round_constants(self):
        assert profiles.ROUNDS_PER_DAY == 24
        assert profiles.ROUNDS_PER_MONTH == 720
        assert profiles.ROUNDS_PER_YEAR == 8760


class TestProfileValidation:
    def test_bad_proportion(self):
        with pytest.raises(ValueError):
            profiles.Profile("X", 1.5, None, 0.5)

    def test_bad_availability(self):
        with pytest.raises(ValueError):
            profiles.Profile("X", 0.5, None, 0.0)

    def test_bad_lifetime_bounds(self):
        with pytest.raises(ValueError):
            profiles.Profile("X", 0.5, (100, 50), 0.5)

    def test_zero_lifetime_rejected(self):
        with pytest.raises(ValueError):
            profiles.Profile("X", 0.5, (0, 50), 0.5)

    def test_bad_session_length(self):
        with pytest.raises(ValueError):
            profiles.Profile("X", 0.5, None, 0.5, mean_online_session=0)


class TestDerivedQuantities:
    def test_mean_offline_session_duty_cycle(self):
        profile = profiles.Profile("X", 1.0, None, 0.25, mean_online_session=10)
        # availability = u / (u + d)  =>  d = 30 for u=10, a=0.25.
        assert profile.mean_offline_session == pytest.approx(30.0)

    def test_full_availability_has_no_offline(self):
        profile = profiles.Profile("X", 1.0, None, 1.0, mean_online_session=10)
        assert profile.mean_offline_session == 0.0

    def test_mean_lifetime_is_midpoint(self):
        profile = profiles.Profile("X", 1.0, (100, 300), 0.5)
        assert profile.mean_lifetime() == 200.0


class TestMixValidation:
    def test_empty_mix(self):
        with pytest.raises(ValueError):
            profiles.validate_mix([])

    def test_non_unit_sum(self):
        bad = [profiles.Profile("A", 0.5, None, 0.5)]
        with pytest.raises(ValueError):
            profiles.validate_mix(bad)

    def test_duplicate_names(self):
        half = profiles.Profile("A", 0.5, None, 0.5)
        with pytest.raises(ValueError):
            profiles.validate_mix([half, half])


class TestProfileTable:
    def test_table_contents(self):
        table = profiles.profile_table()
        assert table["Durable"]["life_expectancy"] == "unlimited"
        assert table["Erratic"]["proportion"] == 0.35
        assert set(table) == {"Durable", "Stable", "Unstable", "Erratic"}
