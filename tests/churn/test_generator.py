"""Tests for the standalone churn-trace generator."""

import math

import numpy as np
import pytest

from repro.churn.generator import (
    ChurnEvent,
    ChurnTraceGenerator,
    draw_profile,
    observed_lifetimes,
)
from repro.churn.profiles import PAPER_PROFILES, Profile


class TestChurnEvent:
    def test_valid_kinds(self):
        for kind in ("join", "leave", "online", "offline"):
            assert ChurnEvent(1, 2, kind).kind == kind

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ChurnEvent(1, 2, "vanish")


class TestDrawProfile:
    def test_respects_proportions(self):
        rng = np.random.default_rng(0)
        counts = {p.name: 0 for p in PAPER_PROFILES}
        for _ in range(8000):
            counts[draw_profile(rng, PAPER_PROFILES).name] += 1
        for profile in PAPER_PROFILES:
            assert counts[profile.name] / 8000 == pytest.approx(
                profile.proportion, abs=0.03
            )


class TestGenerator:
    def make(self, **kwargs):
        defaults = dict(population=50, horizon=5000, seed=3)
        defaults.update(kwargs)
        return ChurnTraceGenerator(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnTraceGenerator(population=0, horizon=10)
        with pytest.raises(ValueError):
            ChurnTraceGenerator(population=10, horizon=0)

    def test_population_is_maintained(self):
        generator = self.make()
        traces = generator.generate()
        # Departed peers are replaced, so trace count >= population.
        assert len(traces) >= 50
        initial = [t for t in traces if t.join_round == 0]
        assert len(initial) == 50

    def test_replacements_join_when_predecessor_leaves(self):
        traces = self.make().generate()
        join_rounds = sorted(t.join_round for t in traces if t.join_round > 0)
        leave_rounds = sorted(
            t.leave_round for t in traces
            if t.leave_round is not None and t.leave_round < 5000
        )
        assert join_rounds == leave_rounds

    def test_events_are_chronological_per_peer(self):
        for trace in self.make().generate():
            rounds = [event.round for event in trace.events]
            assert rounds == sorted(rounds)

    def test_first_event_is_join(self):
        for trace in self.make().generate():
            if trace.events:
                assert trace.events[0].kind == "join"
                assert trace.events[0].round == trace.join_round

    def test_leave_event_matches_lifetime(self):
        for trace in self.make().generate():
            leaves = [e for e in trace.events if e.kind == "leave"]
            if leaves:
                assert leaves[0].round == trace.leave_round

    def test_determinism(self):
        a = self.make(seed=11).generate()
        b = self.make(seed=11).generate()
        assert [(t.peer_id, t.join_round, t.lifetime) for t in a] == [
            (t.peer_id, t.join_round, t.lifetime) for t in b
        ]

    def test_different_seeds_differ(self):
        a = self.make(seed=1).generate()
        b = self.make(seed=2).generate()
        assert [t.lifetime for t in a] != [t.lifetime for t in b]


class TestObservedLifetimes:
    def test_excludes_censored(self):
        durable_only = (
            Profile("OnlyDurable", 1.0, None, 0.9),
        )
        generator = ChurnTraceGenerator(
            population=10, horizon=100, profiles=durable_only, seed=0
        )
        traces = generator.generate()
        assert observed_lifetimes(traces, 100).size == 0

    def test_includes_completed(self):
        short = (Profile("Short", 1.0, (5, 10), 0.9),)
        generator = ChurnTraceGenerator(
            population=20, horizon=1000, profiles=short, seed=0
        )
        traces = generator.generate()
        lifetimes = observed_lifetimes(traces, 1000)
        assert lifetimes.size > 0
        assert np.all(lifetimes >= 5)
        assert np.all(lifetimes <= 10)
        assert not np.any(np.isinf(lifetimes))
