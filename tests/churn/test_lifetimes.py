"""Tests for lifetime distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn import lifetimes
from repro.churn.profiles import DURABLE, ERRATIC, PAPER_PROFILES, STABLE


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestUniformLifetime:
    def test_samples_stay_in_range(self, rng):
        dist = lifetimes.UniformLifetime(10, 20)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(10 <= s <= 20 for s in samples)

    def test_mean(self):
        assert lifetimes.UniformLifetime(10, 30).mean() == 20

    def test_survival_boundaries(self):
        dist = lifetimes.UniformLifetime(10, 20)
        assert dist.survival(5) == 1.0
        assert dist.survival(20) == 0.0
        assert dist.survival(15) == pytest.approx(0.5)

    def test_expected_remaining_decreases_with_age(self):
        dist = lifetimes.UniformLifetime(100, 200)
        values = [dist.expected_remaining(age) for age in (0, 50, 120, 180)]
        assert values == sorted(values, reverse=True)

    def test_expected_remaining_past_high_is_zero(self):
        assert lifetimes.UniformLifetime(5, 10).expected_remaining(11) == 0.0

    def test_expected_remaining_at_zero_equals_mean(self):
        dist = lifetimes.UniformLifetime(100, 200)
        assert dist.expected_remaining(0) == pytest.approx(dist.mean())

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            lifetimes.UniformLifetime(10, 5)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            lifetimes.UniformLifetime(1, 2).expected_remaining(-1)


class TestImmortalLifetime:
    def test_everything_is_infinite(self, rng):
        dist = lifetimes.ImmortalLifetime()
        assert math.isinf(dist.sample(rng))
        assert math.isinf(dist.mean())
        assert math.isinf(dist.expected_remaining(1000))
        assert dist.survival(1e12) == 1.0


class TestParetoLifetime:
    def test_samples_above_scale(self, rng):
        dist = lifetimes.ParetoLifetime(shape=2.0, scale=50.0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(s >= 50.0 for s in samples)

    def test_mean_formula(self):
        dist = lifetimes.ParetoLifetime(shape=3.0, scale=10.0)
        assert dist.mean() == pytest.approx(15.0)

    def test_heavy_tail_mean_infinite(self):
        assert math.isinf(lifetimes.ParetoLifetime(shape=0.9).mean())

    def test_survival_formula(self):
        dist = lifetimes.ParetoLifetime(shape=2.0, scale=10.0)
        assert dist.survival(20.0) == pytest.approx(0.25)
        assert dist.survival(5.0) == 1.0

    def test_expected_remaining_grows_with_age(self):
        """The paper's key property: older => longer expected remaining."""
        dist = lifetimes.ParetoLifetime(shape=1.5, scale=10.0)
        ages = [10, 50, 100, 500, 1000]
        values = [dist.expected_remaining(a) for a in ages]
        assert values == sorted(values)

    def test_expected_remaining_closed_form(self):
        dist = lifetimes.ParetoLifetime(shape=2.0, scale=10.0)
        # E[T | T>t] = alpha t / (alpha - 1) = 2t  =>  remaining = t.
        assert dist.expected_remaining(40.0) == pytest.approx(40.0)

    def test_heavy_tail_remaining_infinite(self):
        dist = lifetimes.ParetoLifetime(shape=1.0, scale=1.0)
        assert math.isinf(dist.expected_remaining(5.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lifetimes.ParetoLifetime(shape=0)
        with pytest.raises(ValueError):
            lifetimes.ParetoLifetime(shape=1, scale=0)

    def test_empirical_mean_matches(self, rng):
        dist = lifetimes.ParetoLifetime(shape=3.0, scale=10.0)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.floats(min_value=1.1, max_value=5.0),
        scale=st.floats(min_value=0.1, max_value=100.0),
        age_factor=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_monotone_remaining_property(self, shape, scale, age_factor):
        dist = lifetimes.ParetoLifetime(shape=shape, scale=scale)
        younger = scale * age_factor
        older = younger * 2
        assert dist.expected_remaining(older) >= dist.expected_remaining(younger)


class TestFromProfile:
    def test_durable_maps_to_immortal(self):
        assert isinstance(lifetimes.from_profile(DURABLE), lifetimes.ImmortalLifetime)

    def test_bounded_maps_to_uniform(self):
        dist = lifetimes.from_profile(STABLE)
        assert isinstance(dist, lifetimes.UniformLifetime)
        assert (dist.low, dist.high) == STABLE.life_expectancy

    def test_erratic_mean(self):
        dist = lifetimes.from_profile(ERRATIC)
        assert dist.mean() == pytest.approx(ERRATIC.mean_lifetime())


class TestMixtureSurvival:
    def test_at_zero_everyone_survives(self):
        assert lifetimes.mixture_survival(PAPER_PROFILES, 0) == pytest.approx(1.0)

    def test_long_run_only_durable_remains(self):
        far = 100 * 8760
        assert lifetimes.mixture_survival(PAPER_PROFILES, far) == pytest.approx(0.10)

    def test_monotone_decreasing(self):
        ages = [0, 720, 2160, 8760, 17520, 30660]
        values = [lifetimes.mixture_survival(PAPER_PROFILES, a) for a in ages]
        assert values == sorted(values, reverse=True)
